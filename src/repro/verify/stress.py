"""Whole-machine multiprogrammed stress runs.

The model checker (:mod:`repro.verify.model_check`) proves properties
over short streams; this harness complements it by running *many* DMA
initiations from several processes on the full machine — real CPU, MMU,
write buffer, preemptive scheduler with seeded random preemption — and
auditing every transfer the engine actually started.

This is the experiment behind the paper's motivation table: run SHRIMP-2
or FLASH **with** their kernel hooks and nothing corrupts; run them on an
unmodified kernel and argument mixing appears at a rate that grows with
the preemption probability.  The paper's own methods never corrupt either
way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.api import DmaChannel
from ..core.machine import MachineConfig, Workstation
from ..hw.dma.status import is_rejection
from ..hw.isa import Addr, Halt, Instruction, Store, assemble
from ..os.scheduler import RandomPreemptionPolicy
from ..sim.rng import make_rng


@dataclass
class StressReport:
    """Audit of one stress run.

    Attributes:
        method: initiation method exercised.
        hooks_installed: whether the required kernel hook ran.
        attempts: initiations attempted across all processes.
        started: transfers the engine actually started.
        reported_ok: per-initiation statuses that signalled success.
        corrupted: started transfers whose (source, destination) pair was
            *not* one its issuing process ever intended — arguments from
            two processes were mixed.
        misreported: initiations whose reported status disagrees with
            whether their transfer started.
        context_switches: scheduler switches during the run.
        data_errors: destination buffers whose bytes do not match their
            source after all transfers drained (only audited for
            processes with fully successful runs).
    """

    method: str
    hooks_installed: bool
    attempts: int = 0
    started: int = 0
    reported_ok: int = 0
    corrupted: int = 0
    misreported: int = 0
    context_switches: int = 0
    data_errors: int = 0
    corrupt_pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No corruption, no misreporting, no data errors."""
        return (self.corrupted == 0 and self.misreported == 0
                and self.data_errors == 0)


def run_stress(method: str, n_processes: int = 3, dmas_each: int = 12,
               preempt_p: float = 0.25, seed: int = 7,
               with_hooks: bool = True, with_retry: bool = False,
               chunk: int = 64,
               max_instructions: int = 3_000_000) -> StressReport:
    """Run a multiprogrammed DMA stress workload and audit the engine.

    Args:
        method: any user-level initiation method.
        n_processes: concurrent processes (context methods support up to
            the engine's context count).
        dmas_each: initiations per process.
        preempt_p: per-instruction preemption probability.
        seed: drives preemption and nothing else.
        with_hooks: install the kernel hook the method requires (ablate
            with False to model the unmodified kernel).
        with_retry: build Fig. 7 retry loops into the sequences.
        chunk: bytes per transfer.
    """
    ws = Workstation(MachineConfig(method=method, seed=seed))
    rng = make_rng(seed, "stress-sched")
    scheduler = ws.make_scheduler(RandomPreemptionPolicy(preempt_p, rng),
                                  with_required_hooks=with_hooks)

    intents: Dict[int, Set[Tuple[int, int, int]]] = {}
    result_areas: List[Tuple[int, int, int]] = []  # (pid, res_paddr, n)
    buffers = []
    for index in range(n_processes):
        proc = ws.kernel.spawn(f"stress{index}")
        ws.kernel.enable_user_dma(proc)
        src = ws.kernel.alloc_buffer(proc, dmas_each * chunk)
        dst = ws.kernel.alloc_buffer(proc, dmas_each * chunk)
        res = ws.kernel.alloc_buffer(proc, max(dmas_each * 8, 8),
                                     shadow=False)
        pattern = bytes((index * 37 + i) % 256
                        for i in range(dmas_each * chunk))
        ws.ram.write(src.paddr, pattern)
        chan = DmaChannel(ws, proc)
        instructions: List[Instruction] = []
        proc_intents: Set[Tuple[int, int, int]] = set()
        for i in range(dmas_each):
            vsrc = src.vaddr + i * chunk
            vdst = dst.vaddr + i * chunk
            instructions.extend(
                _unique_labels(chan.sequence(vsrc, vdst, chunk,
                                             with_retry=with_retry), i))
            instructions.append(Store(Addr(None, res.vaddr + i * 8), "v0"))
            proc_intents.add((ws.engine.global_address(src.paddr + i * chunk),
                              ws.engine.global_address(dst.paddr + i * chunk),
                              chunk))
        instructions.append(Halt())
        program = assemble(instructions, name=f"stress-{method}-{index}")
        thread = proc.new_thread(program)
        scheduler.add(proc, thread)
        intents[proc.pid] = proc_intents
        result_areas.append((proc.pid, res.paddr, dmas_each))
        buffers.append((proc.pid, src, dst, pattern))

    switches, _ = scheduler.run(max_instructions=max_instructions)
    ws.drain()

    report = StressReport(method=method, hooks_installed=with_hooks,
                          context_switches=switches,
                          attempts=n_processes * dmas_each)

    # Audit the engine's record of what actually ran.
    for record in ws.engine.started_transfers():
        report.started += 1
        triple = (record.psrc, record.pdst, record.size)
        owner_intents = intents.get(record.issuer, set())
        if triple not in owner_intents:
            report.corrupted += 1
            report.corrupt_pairs.append((record.psrc, record.pdst))

    # Audit the statuses each process saw, against what started.
    started_triples = {
        (r.psrc, r.pdst, r.size)
        for r in ws.engine.started_transfers()}
    for pid, res_paddr, count in result_areas:
        for i in range(count):
            status = ws.ram.read_word(res_paddr + i * 8)
            ok = not is_rejection(status)
            if ok:
                report.reported_ok += 1
            intended = _intent_of(intents[pid], i)
            if intended is None:
                continue
            started = intended in started_triples
            if ok != started:
                report.misreported += 1

    # Data audit for fully successful processes.
    for pid, src, dst, pattern in buffers:
        statuses = _statuses_of(ws, result_areas, pid)
        if statuses and all(not is_rejection(s) for s in statuses):
            if ws.ram.read(dst.paddr, len(pattern)) != pattern:
                report.data_errors += 1
    return report


def _unique_labels(instructions: List[Instruction],
                   suffix: int) -> List[Instruction]:
    """Uniquify retry labels so sequences can be concatenated."""
    from ..hw.isa import Beq, Bne, Jump, Label

    renamed: List[Instruction] = []
    for instr in instructions:
        if isinstance(instr, Label):
            renamed.append(Label(f"{instr.name}_{suffix}"))
        elif isinstance(instr, Beq):
            renamed.append(Beq(instr.a, instr.b,
                               f"{instr.target}_{suffix}"))
        elif isinstance(instr, Bne):
            renamed.append(Bne(instr.a, instr.b,
                               f"{instr.target}_{suffix}"))
        elif isinstance(instr, Jump):
            renamed.append(Jump(f"{instr.target}_{suffix}"))
        else:
            renamed.append(instr)
    return renamed


def _intent_of(proc_intents: Set[Tuple[int, int, int]],
               index: int) -> Optional[Tuple[int, int, int]]:
    """The index-th intent in source-address order (deterministic)."""
    ordered = sorted(proc_intents)
    if index >= len(ordered):
        return None
    return ordered[index]


def _statuses_of(ws: Workstation, result_areas, pid: int) -> List[int]:
    for rec_pid, res_paddr, count in result_areas:
        if rec_pid == pid:
            return [ws.ram.read_word(res_paddr + i * 8)
                    for i in range(count)]
    return []
