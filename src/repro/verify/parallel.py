"""Parallel scenario fan-out for the exhaustive checker.

:class:`ParallelChecker` spreads verification work across a
``multiprocessing`` pool with **deterministic merging**: results come
back in submission order regardless of worker scheduling, so a parallel
run returns exactly what the equivalent serial run would.

Two axes of parallelism:

* **across scenarios** — :meth:`ParallelChecker.check_many` ships each
  scenario to a worker (the common case: the verify suite and the
  benchmarks check many independent scenarios);
* **within a scenario** — for scenarios above ``split_threshold``
  interleavings, the top level of the DFS choice tree is split: each
  worker receives the scenario plus one forced first-stream choice
  (``prefix_choices``) and explores only that branch.  Branch results
  merge by summing counts in branch order and concatenating examples in
  branch order (truncated to ``max_examples``) — which is precisely the
  DFS order, so the merged result equals the single-process result.

Scenarios and results are plain picklable dataclasses; workers rebuild
the harness from the scenario's method *name*, so nothing
function-valued ever crosses the process boundary.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .incremental import check_scenario_incremental
from .interleave import interleaving_count
from .model_check import CheckResult, Scenario, check_scenario

#: One unit of worker work: (scenario, forced top-level choice or None,
#: incremental flag, transposition flag, example cap).
_Task = Tuple[Scenario, Optional[int], bool, bool, int]


def _run_task(task: _Task) -> CheckResult:
    """Worker entry point: check one scenario (or one branch of one)."""
    scenario, branch, incremental, transposition, max_examples = task
    if branch is None:
        if incremental:
            return check_scenario_incremental(
                scenario, max_examples=max_examples,
                use_transposition=transposition)
        return check_scenario(scenario, max_examples=max_examples)
    return check_scenario_incremental(
        scenario, max_examples=max_examples,
        use_transposition=transposition, prefix_choices=[branch])


def merge_branch_results(scenario_name: str, parts: Sequence[CheckResult],
                         max_examples: int = 5) -> CheckResult:
    """Merge per-branch results, in branch (== DFS) order."""
    merged = CheckResult(scenario=scenario_name)
    by_prop: Dict[str, int] = {}
    for part in parts:
        merged.total_interleavings += part.total_interleavings
        merged.violating_interleavings += part.violating_interleavings
        for prop, count in part.violations_by_property.items():
            by_prop[prop] = by_prop.get(prop, 0) + count
        for example in part.examples:
            if len(merged.examples) >= max_examples:
                break
            merged.examples.append(example)
    merged.violations_by_property = by_prop
    return merged


@dataclass
class ParallelReport:
    """What a fan-out run did, for perf accounting.

    Attributes:
        results: merged per-scenario results, in input order.
        n_workers: pool size used.
        n_tasks: total worker tasks dispatched (> scenarios when
            branch-splitting kicked in).
        split_scenarios: names of scenarios that were branch-split.
    """

    results: List[CheckResult]
    n_workers: int
    n_tasks: int
    split_scenarios: List[str]


class ParallelChecker:
    """Fans exhaustive checks across a process pool, deterministically.

    Args:
        n_workers: pool size; defaults to ``os.cpu_count()`` (capped at
            8 — verification scenarios rarely benefit beyond that).
            ``n_workers=1`` runs everything in-process with no pool,
            which is also the fallback when a pool cannot be created.
        incremental: use the prefix-sharing checker in workers (the
            naive oracle otherwise; branch-splitting requires the
            incremental checker and is skipped for the oracle).
        use_transposition: forwarded to the incremental checker.
        split_threshold: scenarios with at least this many interleavings
            have their top-level DFS branches fanned out individually.
    """

    def __init__(self, n_workers: Optional[int] = None,
                 incremental: bool = True,
                 use_transposition: bool = True,
                 split_threshold: int = 2000) -> None:
        if n_workers is None:
            n_workers = min(os.cpu_count() or 1, 8)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.incremental = incremental
        self.use_transposition = use_transposition
        self.split_threshold = split_threshold

    # ------------------------------------------------------------------

    def check_scenario(self, scenario: Scenario,
                       max_examples: int = 5) -> CheckResult:
        """Check one scenario, branch-splitting it if it is large."""
        report = self.check_many([scenario], max_examples=max_examples)
        return report.results[0]

    def check_many(self, scenarios: Sequence[Scenario],
                   max_examples: int = 5) -> ParallelReport:
        """Check many scenarios; results return in input order."""
        tasks: List[_Task] = []
        # plan[i] = (start, n_branches) slice of `tasks` for scenario i.
        plan: List[Tuple[int, int]] = []
        split: List[str] = []
        for scenario in scenarios:
            branches = self._branches(scenario)
            start = len(tasks)
            if branches is None:
                tasks.append((scenario, None, self.incremental,
                              self.use_transposition, max_examples))
                plan.append((start, 1))
            else:
                split.append(scenario.name)
                for branch in branches:
                    tasks.append((scenario, branch, self.incremental,
                                  self.use_transposition, max_examples))
                plan.append((start, len(branches)))

        outcomes = self._map(tasks)

        results: List[CheckResult] = []
        for scenario, (start, count) in zip(scenarios, plan):
            parts = outcomes[start:start + count]
            if count == 1:
                results.append(parts[0])
            else:
                results.append(merge_branch_results(
                    scenario.name, parts, max_examples=max_examples))
        return ParallelReport(results=results, n_workers=self.n_workers,
                              n_tasks=len(tasks), split_scenarios=split)

    # ------------------------------------------------------------------

    def _branches(self, scenario: Scenario) -> Optional[List[int]]:
        """Top-level choice indices to split on, or None to keep whole."""
        if not self.incremental or self.n_workers == 1:
            return None
        lengths = [len(s) for s in scenario.streams]
        nonempty = [i for i, n in enumerate(lengths) if n > 0]
        if len(nonempty) < 2:
            return None
        if interleaving_count(lengths) < self.split_threshold:
            return None
        return nonempty

    def _map(self, tasks: List[_Task]) -> List[CheckResult]:
        """Run tasks, preserving order; serial when a pool is useless."""
        if self.n_workers == 1 or len(tasks) <= 1:
            return [_run_task(task) for task in tasks]
        try:
            context = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else None)
            with context.Pool(min(self.n_workers, len(tasks))) as pool:
                return pool.map(_run_task, tasks)
        except (OSError, ValueError):
            # Sandboxes and exotic platforms may forbid subprocesses;
            # verification must still complete, just serially.
            return [_run_task(task) for task in tasks]
