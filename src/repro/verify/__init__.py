"""Verification: the paper's correctness arguments, checked mechanically.

The paper argues (§3.3.1, Figs. 5, 6, 8) about *interleavings* of shadow
accesses from multiple processes.  This package makes those arguments
executable:

* :mod:`repro.verify.interleave` — a protocol-level harness that replays
  arbitrary access interleavings into a fresh engine, plus an exhaustive
  interleaving enumerator;
* :mod:`repro.verify.adversary` — the attack scenarios from the figures
  and generators for adversarial access streams;
* :mod:`repro.verify.properties` — the safety properties (authorized
  start, single-issuer sequences, truthful status reporting);
* :mod:`repro.verify.model_check` — bounded exhaustive checking of a
  scenario against the properties (the naive replay oracle);
* :mod:`repro.verify.incremental` — the prefix-sharing checker: same
  results, each access delivered once per choice-tree edge;
* :mod:`repro.verify.parallel` — multiprocessing fan-out across
  scenarios and top-level DFS branches, with deterministic merging;
* :mod:`repro.verify.stress` — whole-machine multiprogrammed stress runs
  under a seeded preemptive scheduler;
* :mod:`repro.verify.faulted` — re-verification of every method under
  single faults (drop/duplicate/reorder/delay/bitflip applied to the
  access streams), with SAFE / UNSAFE-BASELINE / NEWLY-UNSAFE verdicts;
* :mod:`repro.verify.legality` — the shared MMU page-rights validator:
  every :class:`~repro.verify.model_check.Scenario` (hand-written or
  synthesized) is checked at construction time;
* :mod:`repro.verify.synth` — counterexample *search*: seeded MMU-legal
  adversary generation, a bandit-guided hunt over
  :func:`check_scenario_incremental`, delta-debugging shrinking to
  1-minimal cores, and k-fault campaigns.
"""

from .adversary import (
    builtin_scenarios,
    fig5_scenario,
    fig6_scenario,
    fig8_scenario,
    pair_race_scenario,
)
from .faulted import (
    FAULT_HARDENED_METHODS,
    FaultSpec,
    MethodFaultReport,
    all_acceptable,
    run_fault_verification,
    verify_method_under_faults,
)
from .incremental import CheckStats, check_scenario_incremental
from .interleave import (
    AccessSpec,
    ProtocolHarness,
    enumerate_interleavings,
    initiation_stream,
    interleaving_count,
)
from .legality import (
    access_violation,
    require_legal_streams,
    stream_violations,
)
from .model_check import (
    CheckResult,
    Scenario,
    check_scenario,
    replay_interleaving,
)
from .parallel import ParallelChecker, ParallelReport
from .proof import LemmaResult, ProofReport, prove_fig8
from .properties import ProcessIntent, Rights, Violation
from .stress import StressReport, run_stress

__all__ = [
    "AccessSpec",
    "CheckResult",
    "CheckStats",
    "FAULT_HARDENED_METHODS",
    "FaultSpec",
    "LemmaResult",
    "MethodFaultReport",
    "ParallelChecker",
    "ParallelReport",
    "ProcessIntent",
    "ProofReport",
    "ProtocolHarness",
    "Rights",
    "Scenario",
    "StressReport",
    "Violation",
    "access_violation",
    "all_acceptable",
    "builtin_scenarios",
    "check_scenario",
    "check_scenario_incremental",
    "enumerate_interleavings",
    "fig5_scenario",
    "fig6_scenario",
    "fig8_scenario",
    "initiation_stream",
    "interleaving_count",
    "pair_race_scenario",
    "prove_fig8",
    "replay_interleaving",
    "require_legal_streams",
    "run_fault_verification",
    "run_stress",
    "stream_violations",
    "verify_method_under_faults",
]
