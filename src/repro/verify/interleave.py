"""Protocol-level replay harness and interleaving enumeration.

Works directly against a fresh :class:`~repro.hw.dma.engine.DmaEngine`
(no CPU, no scheduler): each :class:`AccessSpec` is delivered through the
engine's MMIO interface exactly as the bus would deliver it.  This is the
right level for exhaustive checking — the paper's §3.3.1 argument is
about the order in which accesses *reach the engine*, nothing else.

The enumerator yields **every** interleaving of the given streams
(preserving each stream's internal order), so a scenario with a
5-access victim and a 3-access adversary is checked over all
C(8,3) = 56 orders; Fig. 8's three-adversary worst case is a few
thousand.  Counts stay exact and tractable because the streams are short
— exactly the sizes the paper reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import VerificationError
from ..hw.device import AccessContext
from ..hw.dma.engine import DmaEngine
from ..hw.dma.protocols.keyed import (
    ARG_DESTINATION,
    ARG_SOURCE,
    pack_key_word,
)
from ..hw.dma.recognizer import SetupOp
from ..hw.dma.shadow import ShadowLayout
from ..hw.memory import PhysicalMemory
from ..hw.pagetable import PAGE_SIZE
from ..sim.engine import Simulator
from ..sim.journal import UndoJournal
from ..units import kib
from .properties import ReplayEvidence


@dataclass(frozen=True)
class AccessSpec:
    """One access a process will issue, protocol-level.

    Attributes:
        pid: issuing process.
        op: "store", "load", "exchange" (shadow region) or
            "ctx-store" / "ctx-load" (the process's register-context
            page).
        paddr: argument physical address (shadow ops) — ignored for
            context-page ops.
        data: data word for stores/exchanges.
        ctx_id: CONTEXT_ID — the address bits for shadow ops under
            extended shadow encoding, or the context page index for
            ctx ops.
        final: marks the access whose status is the process's verdict.
    """

    pid: int
    op: str
    paddr: int = 0
    data: int = 0
    ctx_id: int = 0
    final: bool = False


class ProtocolHarness:
    """A bare engine + one protocol, driven access-by-access."""

    def __init__(self, protocol_factory, n_contexts: int = 4,
                 ram_size: int = kib(64),
                 page_bounded: bool = False) -> None:
        self.protocol_factory = protocol_factory
        self.n_contexts = n_contexts
        self.ram_size = ram_size
        self.page_bounded = page_bounded
        self._keys: Dict[int, int] = {}
        self._setups: List[SetupOp] = []
        self.journal: Optional[UndoJournal] = None
        self.reset()

    def reset(self) -> None:
        """Fresh simulator, RAM, engine, and protocol (keys and setup
        ops re-applied)."""
        self.sim = Simulator()
        self.ram = PhysicalMemory(self.ram_size)
        ctx_bits = max(1, (self.n_contexts - 1).bit_length())
        self.layout = ShadowLayout(n_contexts=self.n_contexts,
                                   ctx_bits=ctx_bits)
        self.protocol = self.protocol_factory()
        self.engine = DmaEngine(self.sim, self.ram, self.protocol,
                                layout=self.layout,
                                page_bounded=self.page_bounded)
        for ctx_id, key in self._keys.items():
            self.engine.install_key(ctx_id, key)
        for op in self._setups:
            self.protocol.apply_setup(op)
        if self.journal is not None:
            # The old journal's undo entries reference the components we
            # just discarded — start a fresh one for the new stack.
            self.enable_journal()

    def enable_journal(self) -> UndoJournal:
        """Switch snapshot/restore to the shared undo journal.

        After this, :meth:`snapshot` is an O(1) ``journal.mark()`` and
        :meth:`restore` replays only the mutations recorded since the
        mark, instead of copying the whole component stack each way.
        """
        self.journal = UndoJournal()
        self.sim.bind_journal(self.journal)
        self.ram.bind_journal(self.journal)
        self.engine.bind_journal(self.journal)
        return self.journal

    # -- delivery ----------------------------------------------------------

    def deliver(self, access: AccessSpec) -> Optional[int]:
        """Deliver one access; returns the status for loads, else None."""
        ctx = AccessContext(issuer=access.pid, kernel=False,
                            when=self.sim.now)
        self.sim.advance(1)  # keep timestamps strictly ordered
        if access.op in ("store", "load", "exchange"):
            offset = (self.layout.shadow_offset
                      + (access.ctx_id << self.layout.ctx_shift)
                      + access.paddr)
            if access.op == "store":
                self.engine.mmio_write(offset, access.data, ctx)
                return None
            if access.op == "load":
                return self.engine.mmio_read(offset, ctx)
            return self.engine.mmio_exchange(offset, access.data, ctx)
        if access.op == "ctx-store":
            self.engine.mmio_write(access.ctx_id * PAGE_SIZE, access.data,
                                   ctx)
            return None
        if access.op == "ctx-load":
            return self.engine.mmio_read(access.ctx_id * PAGE_SIZE, ctx)
        raise VerificationError(f"unknown access op {access.op!r}")

    def replay(self, interleaving: Sequence[AccessSpec]) -> ReplayEvidence:
        """Reset and replay one interleaving, collecting evidence."""
        self.reset()
        evidence = ReplayEvidence()
        for access in interleaving:
            status = self.deliver(access)
            if access.final and status is not None:
                evidence.final_status[access.pid] = status
        evidence.records = list(self.engine.initiations)
        contributors = getattr(self.protocol, "completed_contributors", None)
        if contributors is not None:
            evidence.contributors = [tuple(p for p in pids)
                                     for pids in contributors]
        authority = getattr(self.protocol, "completed_authority", None)
        if authority is not None:
            evidence.authority = list(authority)
        return evidence

    def install_key(self, ctx_id: int, key: int) -> None:
        """Install a key (survives replay resets via re-registration)."""
        self._keys[ctx_id] = key
        self.engine.install_key(ctx_id, key)

    def install_setup(self, op: SetupOp) -> None:
        """Apply a privileged setup op (re-applied on every reset)."""
        self._setups.append(op)
        self.protocol.apply_setup(op)

    # -- snapshot/restore --------------------------------------------------

    def snapshot(self):
        """Capture the whole component stack (sim, RAM, engine, protocol).

        The incremental checker snapshots before each delivery and
        restores on backtrack, so each access is delivered once per tree
        edge instead of once per interleaving it appears in.  With
        :meth:`enable_journal` the capture is an O(1) journal mark;
        otherwise each component copies its state.
        """
        if self.journal is not None:
            return self.journal.mark()
        return (self.sim.snapshot(), self.ram.snapshot(),
                self.engine.snapshot())

    def restore(self, token) -> None:
        """Return the full stack to a state captured by :meth:`snapshot`."""
        if self.journal is not None:
            self.journal.undo_to(token)
            return
        sim_token, ram_mark, engine_token = token
        self.sim.restore(sim_token)
        self.ram.restore(ram_mark)
        self.engine.restore(engine_token)

    def fingerprint(self) -> Optional[tuple]:
        """Hashable capture of all behaviour-determining harness state.

        Returns None when the state cannot be captured cheaply and
        soundly (RAM differs from its checking-start content, or tracing
        is on — a merged subtree would skip its trace emissions), which
        tells the transposition table to skip memoization for this node.
        """
        if self.engine.trace.enabled:
            return None
        if self.journal is not None:
            # Un-undone page saves mean RAM content differs from its
            # bind-time state, which the fingerprint does not cover.
            if self.ram.outstanding_page_saves:
                return None
        elif self.ram.journal_writes:
            return None
        return (self.sim.now, self.sim.live_event_signature(),
                self.engine.fingerprint())


# ----------------------------------------------------------------------
# interleaving enumeration
# ----------------------------------------------------------------------


def enumerate_interleavings(
        streams: Sequence[Sequence[AccessSpec]],
) -> Iterator[Tuple[AccessSpec, ...]]:
    """Yield every interleaving of *streams*, each stream kept in order.

    The number of results is the multinomial coefficient
    ``(sum of lengths)! / prod(lengths!)``.
    """
    lengths = tuple(len(s) for s in streams)

    def recurse(positions: Tuple[int, ...],
                prefix: List[AccessSpec]) -> Iterator[Tuple[AccessSpec, ...]]:
        if all(p == n for p, n in zip(positions, lengths)):
            yield tuple(prefix)
            return
        for index, (pos, length) in enumerate(zip(positions, lengths)):
            if pos < length:
                prefix.append(streams[index][pos])
                next_positions = (positions[:index] + (pos + 1,)
                                  + positions[index + 1:])
                yield from recurse(next_positions, prefix)
                prefix.pop()

    yield from recurse(tuple(0 for _ in streams), [])


def iter_interleavings_shared(
        streams: Sequence[Sequence[AccessSpec]],
) -> Iterator[List[AccessSpec]]:
    """Like :func:`enumerate_interleavings` but yields one *shared* list.

    The same list object is yielded for every interleaving and mutated
    in place between yields, so no per-order tuple is allocated; callers
    that retain an order (e.g. as a violation example) must copy it
    first (``tuple(order)``).  Yield order is identical to
    :func:`enumerate_interleavings`.
    """
    lengths = [len(s) for s in streams]
    total = sum(lengths)
    positions = [0] * len(streams)
    prefix: List[AccessSpec] = []

    def recurse() -> Iterator[List[AccessSpec]]:
        if len(prefix) == total:
            yield prefix
            return
        for index, stream in enumerate(streams):
            pos = positions[index]
            if pos < lengths[index]:
                prefix.append(stream[pos])
                positions[index] = pos + 1
                yield from recurse()
                positions[index] = pos
                prefix.pop()

    yield from recurse()


def interleaving_count(lengths: Sequence[int]) -> int:
    """How many interleavings ``enumerate_interleavings`` will yield."""
    total = sum(lengths)
    result = _factorial(total)
    for length in lengths:
        result //= _factorial(length)
    return result


@lru_cache(maxsize=None)
def _factorial(n: int) -> int:
    return 1 if n <= 1 else n * _factorial(n - 1)


# ----------------------------------------------------------------------
# stream builders: one initiation, method by method, at FSM level
# ----------------------------------------------------------------------


def initiation_stream(method: str, pid: int, psrc: int, pdst: int,
                      size: int, key: Optional[int] = None,
                      ctx_id: int = 0,
                      src_token: Optional[int] = None,
                      dst_token: Optional[int] = None) -> List[AccessSpec]:
    """The shadow-access stream one initiation of *method* produces.

    Mirrors :meth:`repro.core.api.DmaChannel.sequence` at the level the
    engine sees (physical shadow arguments, no retry loop).  The last
    load is marked ``final`` so properties can read the process's
    verdict.

    For the iommu methods *psrc*/*pdst* are IOVAs (the engine
    translates); for the capio methods they are byte offsets into the
    source/destination capabilities' buffers and the pre-packed
    ``src_token``/``dst_token`` words (see :func:`~repro.hw.dma.
    protocols.capio.pack_cap_word`) must be supplied.
    """
    if method in ("shrimp2", "flash", "pal"):
        return [
            AccessSpec(pid, "store", pdst, size),
            AccessSpec(pid, "load", psrc, final=True),
        ]
    if method in ("extshadow", "iommu", "iommu_noshootdown"):
        return [
            AccessSpec(pid, "store", pdst, size, ctx_id=ctx_id),
            AccessSpec(pid, "load", psrc, ctx_id=ctx_id, final=True),
        ]
    if method in ("capio", "capio_noepoch"):
        if src_token is None or dst_token is None:
            raise VerificationError("capio streams need capability tokens")
        return [
            AccessSpec(pid, "store", pdst, dst_token),
            AccessSpec(pid, "store", psrc, src_token),
            AccessSpec(pid, "ctx-store", data=size, ctx_id=ctx_id),
            AccessSpec(pid, "ctx-load", ctx_id=ctx_id, final=True),
        ]
    if method == "keyed":
        if key is None:
            raise VerificationError("keyed streams need a key")
        return [
            AccessSpec(pid, "store", pdst,
                       pack_key_word(key, ctx_id, ARG_DESTINATION)),
            AccessSpec(pid, "store", psrc,
                       pack_key_word(key, ctx_id, ARG_SOURCE)),
            AccessSpec(pid, "ctx-store", data=size, ctx_id=ctx_id),
            AccessSpec(pid, "ctx-load", ctx_id=ctx_id, final=True),
        ]
    if method == "shrimp1":
        return [AccessSpec(pid, "exchange", psrc, size, final=True)]
    if method == "repeated3":
        return [
            AccessSpec(pid, "load", psrc),
            AccessSpec(pid, "store", pdst, size),
            AccessSpec(pid, "load", psrc, final=True),
        ]
    if method == "repeated4":
        return [
            AccessSpec(pid, "store", pdst, size),
            AccessSpec(pid, "load", psrc),
            AccessSpec(pid, "store", pdst, size),
            AccessSpec(pid, "load", psrc, final=True),
        ]
    if method == "repeated5":
        return [
            AccessSpec(pid, "store", pdst, size),
            AccessSpec(pid, "load", psrc),
            AccessSpec(pid, "store", pdst, size),
            AccessSpec(pid, "load", psrc),
            AccessSpec(pid, "load", pdst, final=True),
        ]
    raise VerificationError(f"no stream builder for method {method!r}")
