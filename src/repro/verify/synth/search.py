"""The guided hunt: synthesize adversary streams until one breaks a method.

The hunt composes a victim initiation stream (the method's own shadow
access sequence, from :func:`~repro.verify.interleave.initiation_stream`)
against candidate adversary streams drawn from the MMU-legal vocabulary
of :mod:`repro.verify.synth.generator`, and feeds each composition
through :func:`~repro.verify.incremental.check_scenario_incremental` —
so every candidate is judged over **all** interleavings, and the first
violating candidate yields a concrete counterexample interleaving.

Candidate order is guided two ways, interleaved by ``explore_ratio``:

* **Bandit-prioritized DFS** over the stream space: the driver keeps a
  stack of partial streams and expands children in descending bandit
  score.  The bandit arms are (recognizer state label, vocabulary
  index) pairs; after each candidate check, a cheap *probe* replays the
  victim prefix at every split point and delivers the candidate's
  accesses one by one, crediting an arm whenever its access advanced
  the recognizer's :meth:`state_label`.  Accesses that historically
  move the pattern recognizer get tried first — exactly the accesses
  that can complete someone else's pattern.
* **Hypothesis-driven random exploration**: a seeded random stream
  drawn with the bandit's current scores as selection weights — the
  "what if the learned distribution is sampled freely" mode that
  escapes DFS's lexicographic neighborhoods.

Determinism: everything flows from ``HuntConfig.seed`` through
:func:`~repro.sim.rng.make_rng`; a wall-clock budget (``budget_s``)
exists for CI smoke runs, but tests pin ``max_candidates`` instead so
two runs with one seed are byte-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...errors import VerificationError
from ...hw.dma.recognizer import SetupOp
from ...hw.pagetable import PAGE_SIZE
from ...obs.profile import PhaseProfiler
from ...obs.spans import SpanTracer
from ...sim.rng import make_rng
from ..incremental import CheckStats, check_scenario_incremental
from ..interleave import AccessSpec, initiation_stream
from ..model_check import Scenario, make_harness
from ..properties import ProcessIntent, Rights
from .generator import (
    ADDR_A,
    ADDR_B,
    ADDR_C,
    ADDR_FOO,
    ADVERSARY_PID,
    SIZE,
    VICTIM_PID,
    AdversaryProfile,
    access_vocabulary,
    random_stream,
    standard_profile,
)
from .shrink import ShrunkCounterexample, describe_access, shrink_counterexample

#: The victim's secret for keyed hunts.  The synthesizer must not know
#: it — the adversary vocabulary only carries *wrong* guesses — so a
#: keyed counterexample would mean the protection, not the secrecy, is
#: broken.
SECRET_KEY = 0x0D15EA5E

#: IOVA page of the IOMMU hunts' transient grant: once mapped onto the
#: victim's B for the adversary's context, IOTLB-warmed, then unmapped.
STALE_IOVA = 4 * PAGE_SIZE

#: Capability nonces for the capio hunts.  The victim's is a secret the
#: adversary vocabulary never carries (the keyed-method discipline);
#: the adversary legitimately holds its own and the since-revoked one.
CAP_NONCE_VICTIM = 0x5EC2E7
CAP_NONCE_ADVERSARY = 0x0AD0C5
CAP_NONCE_STALE = 0x057A1E

#: Methods the hunt covers by default: the paper's two broken variants,
#: the two deliberately-weakened modern variants (all four are
#: rediscovery targets), and the six hardened methods (expected to
#: survive any budget).
HUNT_METHODS: Tuple[str, ...] = (
    "repeated3", "repeated4", "shrimp1", "keyed", "extshadow", "repeated5",
    "iommu", "iommu_noshootdown", "capio", "capio_noepoch")


@dataclass(frozen=True)
class HuntConfig:
    """Search budget and shape.

    Attributes:
        seed: master seed; all randomness derives from it.
        budget_s: optional wall-clock budget per method (None = no
            clock limit; rely on ``max_candidates``).
        max_candidates: optional cap on scenarios checked per method
            (None = no cap; rely on ``budget_s``).  At least one of the
            two budgets must be set.
        max_stream_len: longest adversary stream synthesized.
        explore_ratio: fraction of candidates drawn by hypothesis-driven
            random exploration instead of DFS order.
        max_interleavings: per-candidate order-count safety cap.
        shrink: reduce found counterexamples to 1-minimal cores.
    """

    seed: int = 0
    budget_s: Optional[float] = None
    max_candidates: Optional[int] = 400
    max_stream_len: int = 4
    explore_ratio: float = 0.25
    max_interleavings: int = 50_000
    shrink: bool = True

    def __post_init__(self) -> None:
        if self.budget_s is None and self.max_candidates is None:
            raise VerificationError(
                "HuntConfig needs budget_s or max_candidates (or both)")
        if self.max_stream_len < 1:
            raise VerificationError("max_stream_len must be >= 1")


@dataclass
class HuntReport:
    """Outcome of hunting one method.

    Attributes:
        method: the hunted method.
        seed: the seed the hunt ran under.
        found: a violating adversary stream was synthesized.
        exhausted: the DFS covered every stream up to
            ``max_stream_len`` without finding one (a bounded-safety
            statement, stronger than "budget ran out").
        candidates: scenarios actually checked.
        duplicates: random-exploration draws skipped as already seen.
        interleavings: total orders replayed across all candidates.
        accesses_delivered: engine deliveries spent (incremental-checker
            accounting, for the benchmark harness).
        elapsed_s: wall-clock spent on this method.
        adversary_stream: the violating stream (empty if none found).
        counterexample: the first violating interleaving (None if safe).
        props: properties that interleaving violates.
        shrunk: the 1-minimal core (when ``config.shrink``).
    """

    method: str
    seed: int
    found: bool = False
    exhausted: bool = False
    candidates: int = 0
    duplicates: int = 0
    interleavings: int = 0
    accesses_delivered: int = 0
    elapsed_s: float = 0.0
    adversary_stream: Tuple[AccessSpec, ...] = ()
    counterexample: Optional[Tuple[AccessSpec, ...]] = None
    props: Tuple[str, ...] = ()
    shrunk: Optional[ShrunkCounterexample] = None

    @property
    def safe_within_budget(self) -> bool:
        """No counterexample surfaced before the budget ran out."""
        return not self.found

    def summary(self) -> str:
        """One-line human-readable result."""
        if self.found:
            core = (f", shrunk to {len(self.shrunk)}"
                    if self.shrunk is not None else "")
            return (f"{self.method}: FOUND after {self.candidates} "
                    f"candidates ({', '.join(self.props)}{core})")
        state = "EXHAUSTED" if self.exhausted else "SAFE-WITHIN-BUDGET"
        return (f"{self.method}: {state} ({self.candidates} candidates, "
                f"{self.interleavings} interleavings)")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (``repro hunt --output``)."""
        out: Dict[str, object] = {
            "method": self.method,
            "seed": self.seed,
            "found": self.found,
            "exhausted": self.exhausted,
            "candidates": self.candidates,
            "duplicates": self.duplicates,
            "interleavings": self.interleavings,
            "accesses_delivered": self.accesses_delivered,
            "elapsed_s": round(self.elapsed_s, 6),
        }
        if self.found:
            out["adversary_stream"] = [describe_access(a)
                                       for a in self.adversary_stream]
            out["counterexample"] = [describe_access(a)
                                     for a in self.counterexample or ()]
            out["props"] = list(self.props)
            if self.shrunk is not None:
                out["shrunk"] = self.shrunk.to_dict()
        return out


# ----------------------------------------------------------------------
# per-method scenario composition
# ----------------------------------------------------------------------


def _cap_word(cap_id: int, nonce: int, arg_is_dst: bool) -> int:
    """A capability token at epoch 0 (all hunt mints are epoch 0)."""
    from ...hw.dma.protocols.capio import pack_cap_word
    from ...hw.dma.protocols.keyed import ARG_DESTINATION, ARG_SOURCE

    return pack_cap_word(cap_id, 0, nonce,
                         ARG_DESTINATION if arg_is_dst else ARG_SOURCE)


def _victim_setup(method: str) -> Tuple[List[AccessSpec], Dict[int, int]]:
    """The victim's initiation stream and any installed keys."""
    if method == "keyed":
        stream = initiation_stream("keyed", VICTIM_PID, ADDR_A, ADDR_B,
                                   SIZE, key=SECRET_KEY, ctx_id=0)
        return stream, {0: SECRET_KEY}
    if method in ("extshadow", "iommu", "iommu_noshootdown"):
        # iommu: identity IOVA maps (hunt_setup_for) make the stream's
        # virtual addresses coincide with A and B.
        stream = initiation_stream(method, VICTIM_PID, ADDR_A,
                                   ADDR_B, SIZE, ctx_id=0)
        return stream, {}
    if method in ("capio", "capio_noepoch"):
        # Capability 1 covers [A, B] for the victim; psrc/pdst are byte
        # offsets against its base.
        stream = initiation_stream(
            method, VICTIM_PID, 0, PAGE_SIZE, SIZE, ctx_id=0,
            src_token=_cap_word(1, CAP_NONCE_VICTIM, arg_is_dst=False),
            dst_token=_cap_word(1, CAP_NONCE_VICTIM, arg_is_dst=True))
        return stream, {}
    return initiation_stream(method, VICTIM_PID, ADDR_A, ADDR_B,
                             SIZE), {}


def hunt_setup_for(method: str) -> Tuple[SetupOp, ...]:
    """Kernel-side setup history composed into every hunt candidate.

    The modern methods only mean anything against configured state, and
    the interesting state includes a *revoked* grant: the IOMMU hunts
    get a transient IOVA window onto the victim's B (mapped, IOTLB-
    warmed, unmapped), the capio hunts a capability over B minted for
    the adversary and then epoch-revoked.  The hardened variants must
    shrug both off; the weakened ones are expected to fall to them.
    """
    if method in ("iommu", "iommu_noshootdown"):
        return (
            SetupOp("iommu-map", (0, ADDR_A, ADDR_A, True)),
            SetupOp("iommu-map", (0, ADDR_B, ADDR_B, True)),
            SetupOp("iommu-map", (1, ADDR_C, ADDR_C, True)),
            SetupOp("iommu-map", (1, ADDR_FOO, ADDR_FOO, True)),
            SetupOp("iommu-map", (1, STALE_IOVA, ADDR_B, True)),
            SetupOp("iommu-warm", (1, STALE_IOVA)),
            SetupOp("iommu-unmap", (1, STALE_IOVA)),
        )
    if method in ("capio", "capio_noepoch"):
        return (
            SetupOp("cap-mint", (1, 0, VICTIM_PID, ADDR_A, 2 * PAGE_SIZE,
                                 True, True, CAP_NONCE_VICTIM)),
            SetupOp("cap-mint", (2, 1, ADVERSARY_PID, ADDR_C, PAGE_SIZE,
                                 True, True, CAP_NONCE_ADVERSARY)),
            SetupOp("cap-mint", (3, 1, ADVERSARY_PID, ADDR_B, PAGE_SIZE,
                                 True, True, CAP_NONCE_STALE)),
            SetupOp("cap-revoke", (3,)),
        )
    return ()


def adversary_profile_for(method: str) -> AdversaryProfile:
    """The strongest MMU-legal adversary the method faces.

    * keyed: the shadow page is shared, so the adversary may store —
      but only *wrong-key* words (the true key is a 60-bit secret);
    * extshadow: the adversary addresses its **own** context (the OS
      maps one context page per process — it cannot name the victim's);
    * iommu family: explicit IOVA vocabulary — its own C (store and
      load), the victim's "public" A, and the since-revoked stale IOVA
      window (see :func:`hunt_setup_for`);
    * capio family: explicit token vocabulary — its own capability 2
      (src and dst tokens), the stale epoch-0 destination token of
      revoked capability 3, and its context-page size/fire ops.  The
      victim's nonce is a secret: no capability-1 token ever appears;
    * everything else: the standard profile (owns C and FOO, reads A).
    """
    if method == "keyed":
        from ...hw.dma.protocols.keyed import (
            ARG_DESTINATION,
            ARG_SOURCE,
            pack_key_word,
        )

        guesses = (0x1, SECRET_KEY ^ (1 << 13))
        words = tuple(pack_key_word(guess, 0, arg)
                      for guess in guesses
                      for arg in (ARG_SOURCE, ARG_DESTINATION))
        return standard_profile(extra_words=words)
    if method == "extshadow":
        return standard_profile(ctx_id=1)
    if method in ("iommu", "iommu_noshootdown"):
        base = standard_profile(ctx_id=1)
        vocab = (
            AccessSpec(ADVERSARY_PID, "store", ADDR_C, SIZE, ctx_id=1),
            AccessSpec(ADVERSARY_PID, "store", STALE_IOVA, SIZE, ctx_id=1),
            AccessSpec(ADVERSARY_PID, "load", ADDR_C, ctx_id=1),
            AccessSpec(ADVERSARY_PID, "load", ADDR_A, ctx_id=1),
        )
        return AdversaryProfile(pid=base.pid, rights=base.rights,
                                ctx_id=1, vocabulary=vocab, method=method)
    if method in ("capio", "capio_noepoch"):
        base = standard_profile(ctx_id=1)
        vocab = (
            AccessSpec(ADVERSARY_PID, "store", 0,
                       _cap_word(2, CAP_NONCE_ADVERSARY, arg_is_dst=False),
                       ctx_id=1),
            AccessSpec(ADVERSARY_PID, "store", 0,
                       _cap_word(2, CAP_NONCE_ADVERSARY, arg_is_dst=True),
                       ctx_id=1),
            AccessSpec(ADVERSARY_PID, "store", 0,
                       _cap_word(3, CAP_NONCE_STALE, arg_is_dst=True),
                       ctx_id=1),
            AccessSpec(ADVERSARY_PID, "ctx-store", 0, SIZE, ctx_id=1),
            AccessSpec(ADVERSARY_PID, "ctx-load", 0, ctx_id=1),
        )
        return AdversaryProfile(pid=base.pid, rights=base.rights,
                                ctx_id=1, vocabulary=vocab, method=method)
    return standard_profile()


def compose_scenario(method: str, victim: List[AccessSpec],
                     keys: Dict[int, int], profile: AdversaryProfile,
                     adversary: Sequence[AccessSpec],
                     tag: str) -> Scenario:
    """One candidate scenario: victim stream vs a synthesized stream."""
    return Scenario(
        name=f"hunt-{method}-{tag}",
        method=method,
        streams=[list(victim), list(adversary)],
        rights={
            VICTIM_PID: Rights.over(write_pages=[ADDR_A, ADDR_B]),
            profile.pid: profile.rights,
        },
        intents=[ProcessIntent(VICTIM_PID, ADDR_A, ADDR_B, SIZE)],
        keys=dict(keys),
        setup=hunt_setup_for(method),
    )


# ----------------------------------------------------------------------
# the bandit
# ----------------------------------------------------------------------


class _Bandit:
    """(recognizer state label, vocab index) -> advancement statistics."""

    def __init__(self) -> None:
        self.arms: Dict[Tuple[str, int], List[int]] = {}

    def credit(self, label: str, index: int, advanced: bool) -> None:
        stats = self.arms.setdefault((label, index), [0, 0])
        stats[0] += 1
        if advanced:
            stats[1] += 1

    def vocab_scores(self, n: int) -> List[float]:
        """Per-vocab-index scores aggregated over all state labels.

        Laplace-smoothed advancement rate: untried accesses score 0.5,
        so nothing starves before the bandit has data.
        """
        tries = [0] * n
        advances = [0] * n
        for (_, index), (t, a) in self.arms.items():
            tries[index] += t
            advances[index] += a
        return [(1 + advances[i]) / (2 + tries[i]) for i in range(n)]


def _state_label(harness) -> str:
    label = getattr(harness.protocol, "state_label", None)
    return label() if callable(label) else "-"


def _probe(harness, victim: Sequence[AccessSpec],
           accesses: Sequence[AccessSpec], indices: Sequence[int],
           bandit: _Bandit) -> None:
    """Replay victim prefixes + the candidate, crediting bandit arms.

    For every split point of the victim stream, deliver the victim
    prefix then the candidate's accesses one at a time, recording for
    each (state label before, vocab index) whether the recognizer's
    label changed — the signal that this access *participates in* the
    pattern the recognizer is matching.
    """
    for split in range(len(victim) + 1):
        harness.reset()
        for access in victim[:split]:
            harness.deliver(access)
        for access, index in zip(accesses, indices):
            before = _state_label(harness)
            harness.deliver(access)
            bandit.credit(before, index,
                          advanced=_state_label(harness) != before)


# ----------------------------------------------------------------------
# the hunt
# ----------------------------------------------------------------------


def hunt_method(method: str, config: HuntConfig,
                tracer: Optional[SpanTracer] = None,
                profiler: Optional[PhaseProfiler] = None) -> HuntReport:
    """Search for a counterexample against one initiation method.

    Stops at the first violating candidate (then optionally shrinks it),
    when the DFS space up to ``max_stream_len`` is exhausted, or when
    the budget runs out — whichever comes first.
    """
    started = time.monotonic()
    deadline = (None if config.budget_s is None
                else started + config.budget_s)
    rng = make_rng(config.seed, f"hunt/{method}")
    report = HuntReport(method=method, seed=config.seed)

    victim, keys = _victim_setup(method)
    profile = adversary_profile_for(method)
    vocab = access_vocabulary(profile)
    bandit = _Bandit()

    # One reusable harness for bandit probes (probes never touch the
    # checker's own harness).
    probe_scenario = compose_scenario(method, victim, keys, profile,
                                      [], "probe")
    probe_harness = make_harness(probe_scenario)

    seen: Set[Tuple[int, ...]] = set()
    # DFS stack of partial streams (tuples of vocab indices); children
    # are pushed in ascending score so the best-scored pops first.
    stack: List[Tuple[int, ...]] = [
        (i,) for i in _ranked(bandit, len(vocab), reverse=True)]

    span = (tracer.begin("hunt.method", track="hunt", method=method)
            if tracer is not None else None)
    try:
        while True:
            if deadline is not None and time.monotonic() > deadline:
                break
            if (config.max_candidates is not None
                    and report.candidates >= config.max_candidates):
                break
            explore = (config.explore_ratio > 0
                       and rng.random() < config.explore_ratio)
            if explore:
                scores = bandit.vocab_scores(len(vocab))
                candidate = random_stream(rng, vocab,
                                          config.max_stream_len,
                                          weights=scores)
                if candidate in seen:
                    report.duplicates += 1
                    continue
            elif stack:
                candidate = stack.pop()
                # Children go on the stack even when the random explorer
                # beat us to this node — exhaustion must never prune.
                if len(candidate) < config.max_stream_len:
                    for child in _ranked(bandit, len(vocab)):
                        stack.append(candidate + (child,))
                if candidate in seen:
                    continue
            else:
                # DFS space exhausted; random draws can only duplicate.
                report.exhausted = True
                break
            seen.add(candidate)
            accesses = [vocab[i] for i in candidate]
            scenario = compose_scenario(method, victim, keys, profile,
                                        accesses,
                                        tag=str(report.candidates))
            stats = CheckStats()
            if profiler is not None:
                with profiler.phase("check"):
                    result = check_scenario_incremental(
                        scenario, max_examples=1,
                        max_interleavings=config.max_interleavings,
                        stats=stats)
            else:
                result = check_scenario_incremental(
                    scenario, max_examples=1,
                    max_interleavings=config.max_interleavings,
                    stats=stats)
            report.candidates += 1
            report.interleavings += result.total_interleavings
            report.accesses_delivered += stats.accesses_delivered
            if result.attack_found:
                order, violations = result.examples[0]
                report.found = True
                report.adversary_stream = tuple(accesses)
                report.counterexample = order
                report.props = tuple(sorted({v.prop for v in violations}))
                if config.shrink:
                    if profiler is not None:
                        with profiler.phase("shrink"):
                            report.shrunk = shrink_counterexample(
                                scenario, order)
                    else:
                        report.shrunk = shrink_counterexample(
                            scenario, order)
                break
            if profiler is not None:
                with profiler.phase("probe"):
                    _probe(probe_harness, victim, accesses, candidate,
                           bandit)
            else:
                _probe(probe_harness, victim, accesses, candidate, bandit)
    finally:
        report.elapsed_s = time.monotonic() - started
        if tracer is not None and span is not None:
            tracer.end(span, found=report.found,
                       candidates=report.candidates)
    return report


def _ranked(bandit: _Bandit, n: int, reverse: bool = False) -> List[int]:
    """Vocab indices by ascending bandit score (ties by index).

    Ascending is the push order that makes the best-scored index pop
    first from the DFS stack; ``reverse=True`` gives descending for
    direct iteration.
    """
    scores = bandit.vocab_scores(n)
    order = sorted(range(n), key=lambda i: (scores[i], -i))
    if reverse:
        order.reverse()
    return order


def run_hunt(methods: Optional[Sequence[str]] = None,
             config: Optional[HuntConfig] = None,
             tracer: Optional[SpanTracer] = None,
             profiler: Optional[PhaseProfiler] = None,
             ) -> List[HuntReport]:
    """Hunt every (or the given) method; one report per method."""
    chosen = tuple(methods) if methods is not None else HUNT_METHODS
    cfg = config if config is not None else HuntConfig()
    return [hunt_method(m, cfg, tracer=tracer, profiler=profiler)
            for m in chosen]
