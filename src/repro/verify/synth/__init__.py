"""Counterexample synthesis: *search* for attacks instead of replaying them.

The model checker (:mod:`repro.verify.model_check`) can only confirm or
refute scenarios someone already wrote down.  This package inverts it:

* :mod:`repro.verify.synth.generator` — a seeded adversary-stream
  generator that emits only MMU-legal accesses (the shared validator in
  :mod:`repro.verify.legality` is the legality oracle) and composes them
  against a victim initiation stream;
* :mod:`repro.verify.synth.search` — the guided hunt driver: DFS over
  adversary stream space, child order prioritized by a bandit over
  recognizer-state-advancing transitions, plus a hypothesis-driven
  random exploration mode; every candidate is fed through
  :func:`~repro.verify.incremental.check_scenario_incremental`, so the
  recognizer state space is explored over **all** interleavings;
* :mod:`repro.verify.synth.shrink` — delta-debugging reduction of a
  found counterexample to a 1-minimal access stream with a canonical
  interleaving;
* :mod:`repro.verify.synth.kfault` — extension of
  :mod:`repro.verify.faulted` from single-fault to k-fault campaigns
  (exhaustive for k ≤ 2, seeded probabilistic soak beyond).

The acceptance test for the whole subsystem is *rediscovery*: with a
fixed seed and a bounded budget, the search re-finds the paper's Fig. 5
and Fig. 6 attacks from scratch — no reference to the hand-written
streams — and the shrinker reduces each to the minimal core of the
figure's printed interleaving, while the hardened methods (shrimp1,
keyed, extshadow, repeated5) survive the same budget untouched.
"""

from .generator import (
    AdversaryProfile,
    access_vocabulary,
    random_stream,
    standard_profile,
)
from .kfault import (
    KFaultReport,
    apply_fault_combo,
    run_k_fault_campaign,
    verify_method_under_k_faults,
)
from .search import HuntConfig, HuntReport, hunt_method, run_hunt
from .shrink import (
    ShrunkCounterexample,
    is_one_minimal,
    shrink_counterexample,
)

__all__ = [
    "AdversaryProfile",
    "HuntConfig",
    "HuntReport",
    "KFaultReport",
    "ShrunkCounterexample",
    "access_vocabulary",
    "apply_fault_combo",
    "hunt_method",
    "is_one_minimal",
    "random_stream",
    "run_hunt",
    "run_k_fault_campaign",
    "shrink_counterexample",
    "standard_profile",
    "verify_method_under_k_faults",
]
