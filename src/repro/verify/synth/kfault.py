"""k-fault campaigns: protection under *combinations* of faults.

:mod:`repro.verify.faulted` proves the hardened methods keep protection
under any **single** fault.  This module extends the same taxonomy
(drop / duplicate / reorder / delay / bitflip) to combinations of up to
``k`` simultaneous faults on the honest pair-race scenario:

* **k ≤ 2 is exhaustive** — every unordered combination of distinct
  single-fault specs is applied (descending-index order, see
  :func:`~repro.verify.faulted.apply_faults`) and model-checked over
  every interleaving;
* **k ≥ 3 is a seeded probabilistic soak** — the combination space
  explodes combinatorially, so a :func:`~repro.sim.rng.make_rng`-seeded
  sample of ``max_combos`` combinations is checked instead, and the
  report says so (``sampled=True``).

Verdicts reuse the single-fault taxonomy: ``SAFE`` (baseline and every
checked combination keep protection), ``UNSAFE-BASELINE`` (the method
is broken without faults, so fault-hardening is moot), ``NEWLY-UNSAFE``
(a combination *created* an attack — the verdict no built-in method may
ever earn).  Combinations that are mechanically infeasible (a reorder
whose partner was dropped) are counted as skipped, never as checked.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...errors import VerificationError
from ...faults.plan import BITFLIP
from ...obs.profile import PhaseProfiler
from ...sim.rng import make_rng
from ..faulted import (
    FAULT_HARDENED_METHODS,
    FaultSpec,
    apply_faults,
    enumerate_single_faults,
    method_fault_scenarios,
)
from ..incremental import check_scenario_incremental
from ..model_check import CheckResult, Scenario

#: Default sample size for the k >= 3 probabilistic soak.
DEFAULT_SOAK_COMBOS = 300


def apply_fault_combo(scenario: Scenario,
                      specs: Sequence[FaultSpec]) -> Optional[Scenario]:
    """Apply a combination of faults, or None if it is infeasible.

    A combination is infeasible when two non-commuting specs target the
    same access (the order of same-slot structural faults is undefined
    — only bitflips commute, being XORs of distinct bits) or when one
    fault removes the access another needs (e.g. reorder after a drop
    of its partner) — :func:`~repro.verify.faulted.apply_faults` then
    raises :class:`IndexError`, which this wrapper converts to None.
    """
    by_slot: Dict[Tuple[int, int], List[FaultSpec]] = {}
    for spec in specs:
        by_slot.setdefault((spec.stream, spec.index), []).append(spec)
    for group in by_slot.values():
        if len(group) == 1:
            continue
        if not all(g.kind == BITFLIP for g in group):
            return None
        bits = [g.bit for g in group]
        if len(set(bits)) != len(bits):
            return None
    try:
        return apply_faults(scenario, specs)
    except IndexError:
        return None


@dataclass
class KFaultReport:
    """Outcome of one method's k-fault campaign.

    Attributes:
        method: the method name.
        k: faults per combination.
        baseline_safe: protection held with no fault injected.
        sampled: True when the combination space was sampled (k >= 3,
            or an explicit ``max_combos`` below the exhaustive count).
        combos_total: size of the full combination space.
        combos_checked: combinations actually model-checked.
        combos_skipped: infeasible combinations (same-slot or
            mechanically impossible after an earlier fault).
        interleavings_checked: total orders across baseline + variants.
        newly_unsafe: (combo, result) pairs where a combination broke a
            protection property despite a safe baseline.
        baseline_results: the fault-free results.
        elapsed_s: wall-clock spent.
    """

    method: str
    k: int
    baseline_safe: bool
    sampled: bool = False
    combos_total: int = 0
    combos_checked: int = 0
    combos_skipped: int = 0
    interleavings_checked: int = 0
    newly_unsafe: List[Tuple[Tuple[FaultSpec, ...], CheckResult]] = (
        field(default_factory=list))
    baseline_results: List[CheckResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def verdict(self) -> str:
        """SAFE / UNSAFE-BASELINE / NEWLY-UNSAFE (single-fault taxonomy)."""
        if not self.baseline_safe:
            return "UNSAFE-BASELINE"
        if self.newly_unsafe:
            return "NEWLY-UNSAFE"
        return "SAFE"

    @property
    def acceptable(self) -> bool:
        """A method is acceptable unless a combination *created* an attack."""
        return self.verdict != "NEWLY-UNSAFE"

    def summary(self) -> str:
        """One-line human-readable result."""
        mode = "sampled" if self.sampled else "exhaustive"
        base = (f"{self.method}: {self.verdict} under k={self.k} faults "
                f"({mode}: {self.combos_checked}/{self.combos_total} "
                f"combos, {self.combos_skipped} infeasible, "
                f"{self.interleavings_checked} interleavings)")
        if self.newly_unsafe:
            first = "+".join(s.label() for s in self.newly_unsafe[0][0])
            base += f"; first break: {first}"
        return base

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (``repro hunt --output``)."""
        return {
            "method": self.method,
            "k": self.k,
            "verdict": self.verdict,
            "baseline_safe": self.baseline_safe,
            "sampled": self.sampled,
            "combos_total": self.combos_total,
            "combos_checked": self.combos_checked,
            "combos_skipped": self.combos_skipped,
            "interleavings": self.interleavings_checked,
            "elapsed_s": round(self.elapsed_s, 6),
            "newly_unsafe": [
                {"combo": [s.label() for s in combo],
                 "summary": result.summary()}
                for combo, result in self.newly_unsafe],
        }


def verify_method_under_k_faults(
        method: str,
        k: int = 2,
        max_examples: int = 3,
        max_interleavings: Optional[int] = 500_000,
        max_combos: Optional[int] = None,
        seed: int = 0,
        checker: Callable[..., CheckResult] = check_scenario_incremental,
        progress: Optional[Callable[[str, int, int], None]] = None,
        profiler: Optional[PhaseProfiler] = None,
) -> KFaultReport:
    """Model-check *method* under every (or a sample of) k-fault combos.

    Args:
        method: one of the verifiable methods.
        k: faults per combination (k=1 reduces to the single-fault
            campaign's coverage on the pair race).
        max_examples: violating examples retained per variant.
        max_interleavings: per-variant order cap (safety net).
        max_combos: cap on combinations checked.  Defaults to the full
            space for k <= 2 and :data:`DEFAULT_SOAK_COMBOS` for
            k >= 3; setting it below the space size turns the campaign
            into a seeded sample.
        seed: sampling seed (only used when sampling).
        checker: the check function (incremental by default).
        progress: optional callback ``(combo_label, done, total)``.
        profiler: optional phase profiler (``baseline`` / ``variant``).
    """
    if k < 1:
        raise VerificationError("k must be >= 1")
    started = time.monotonic()
    baselines = method_fault_scenarios(method)
    baseline_results = []
    for baseline in baselines:
        if profiler is not None:
            with profiler.phase("baseline"):
                baseline_results.append(checker(
                    baseline, max_examples=max_examples,
                    max_interleavings=max_interleavings))
        else:
            baseline_results.append(checker(
                baseline, max_examples=max_examples,
                max_interleavings=max_interleavings))
    baseline_safe = all(r.safe for r in baseline_results)
    report = KFaultReport(method=method, k=k,
                          baseline_safe=baseline_safe,
                          baseline_results=baseline_results)
    report.interleavings_checked = sum(
        r.total_interleavings for r in baseline_results)

    race = baselines[0]
    singles = enumerate_single_faults(race)
    total = _combination_count(len(singles), k)
    report.combos_total = total
    limit = max_combos
    if limit is None and k >= 3:
        limit = DEFAULT_SOAK_COMBOS
    if limit is not None and limit < total:
        report.sampled = True
        rng = make_rng(seed, f"kfault/{method}/k{k}")
        combos: List[Tuple[FaultSpec, ...]] = [
            tuple(sorted(rng.sample(range(len(singles)), k)))
            for _ in range(limit)]
        combos = [tuple(singles[i] for i in combo)
                  for combo in sorted(set(combos))]
    else:
        combos = list(itertools.combinations(singles, k))

    for done, combo in enumerate(combos, start=1):
        variant = apply_fault_combo(race, combo)
        label = "+".join(s.label() for s in combo)
        if variant is None:
            report.combos_skipped += 1
        else:
            if profiler is not None:
                with profiler.phase("variant"):
                    result = checker(variant, max_examples=max_examples,
                                     max_interleavings=max_interleavings)
            else:
                result = checker(variant, max_examples=max_examples,
                                 max_interleavings=max_interleavings)
            report.combos_checked += 1
            report.interleavings_checked += result.total_interleavings
            if baseline_safe and result.attack_found:
                report.newly_unsafe.append((combo, result))
        if progress is not None:
            progress(label, done, len(combos))
    report.elapsed_s = time.monotonic() - started
    return report


def run_k_fault_campaign(
        methods: Optional[Sequence[str]] = None,
        k: int = 2,
        max_examples: int = 3,
        max_combos: Optional[int] = None,
        seed: int = 0,
        progress: Optional[Callable[[str, int, int], None]] = None,
        profiler: Optional[PhaseProfiler] = None,
) -> Dict[str, KFaultReport]:
    """k-fault-verify the hardened methods (or the given ones).

    The acceptance criterion — every hardened method SAFE, no method
    NEWLY-UNSAFE — is ``all(r.acceptable for r in reports.values())``
    plus verdict == SAFE for the :data:`~repro.verify.faulted.
    FAULT_HARDENED_METHODS`.
    """
    chosen = (tuple(methods) if methods is not None
              else FAULT_HARDENED_METHODS)
    return {m: verify_method_under_k_faults(
                m, k=k, max_examples=max_examples, max_combos=max_combos,
                seed=seed, progress=progress, profiler=profiler)
            for m in chosen}


def _combination_count(n: int, k: int) -> int:
    if k > n:
        return 0
    result = 1
    for i in range(k):
        result = result * (n - i) // (i + 1)
    return result
