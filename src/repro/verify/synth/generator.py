"""Seeded, MMU-legal adversary stream generation.

An :class:`AdversaryProfile` fixes what the OS gave the adversary: its
pid, its page :class:`~repro.verify.properties.Rights`, the shadow
context it may address, and the data words it can plausibly store
(transfer sizes, and — against the keyed method — wrong-key words; the
true key is a 60-bit secret, so a synthesizer that *knew* it would be
cheating).  From a profile, :func:`access_vocabulary` derives the finite
alphabet of accesses the MMU would let that adversary issue; every
stream the search or the random explorer builds is a word over this
alphabet, so synthesized streams are legal **by construction**, and the
shared validator (:mod:`repro.verify.legality`) re-checks them when the
composed :class:`~repro.verify.model_check.Scenario` is built.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ...errors import VerificationError
from ..interleave import AccessSpec
from ..legality import access_violation
from ..properties import Rights

#: One page per named buffer, matching the conventions of
#: :mod:`repro.verify.adversary` (victim source A, victim destination B,
#: adversary-owned C and scratch FOO) without importing its streams.
from ...hw.pagetable import PAGE_SIZE

VICTIM_PID = 1
ADVERSARY_PID = 2

ADDR_A = 0 * PAGE_SIZE   # victim's source ("possibly public" data)
ADDR_B = 1 * PAGE_SIZE   # victim's private destination
ADDR_C = 2 * PAGE_SIZE   # adversary's own data page
ADDR_FOO = 3 * PAGE_SIZE  # adversary's scratch page

SIZE = 256  # the transfer size used throughout the scenarios


@dataclass(frozen=True)
class AdversaryProfile:
    """What the OS granted one adversary process.

    Attributes:
        pid: the adversary's pid.
        rights: its page rights (the MMU's view).
        ctx_id: the shadow context its mappings address (its *own*
            context — extended shadow addressing maps one context page
            per process, so an adversary can never name another's).
        data_words: the words its stores/exchanges may carry.
        with_exchange: include atomic-exchange accesses (the SHRIMP-1
            initiation primitive) in the vocabulary.
        vocabulary: explicit access alphabet, overriding derivation —
            the modern methods (IOMMU, capio) speak in IOVAs and
            capability tokens, shapes no rights-walk can derive.  Still
            re-validated by the shared legality checker.
        method: the initiation method the profile targets, forwarded to
            the legality validator (the modern methods exempt shadow
            addresses from the physical-rights rule: their protection
            lives in translation/validation, not the MMU).
    """

    pid: int = ADVERSARY_PID
    rights: Rights = field(default_factory=Rights)
    ctx_id: int = 0
    data_words: Tuple[int, ...] = (SIZE,)
    with_exchange: bool = True
    vocabulary: Optional[Tuple[AccessSpec, ...]] = None
    method: Optional[str] = None


def standard_profile(reads_source: bool = True, ctx_id: int = 0,
                     extra_words: Tuple[int, ...] = ()) -> AdversaryProfile:
    """The canonical hunt adversary: owns C and FOO, may read A.

    This mirrors the strongest adversary the paper's figures assume —
    private writable pages plus read access to the victim's "readable by
    any process" source — without referencing any hand-written stream.
    """
    read_pages = [ADDR_A] if reads_source else []
    return AdversaryProfile(
        pid=ADVERSARY_PID,
        rights=Rights.over(read_pages=read_pages,
                           write_pages=[ADDR_C, ADDR_FOO]),
        ctx_id=ctx_id,
        data_words=(SIZE,) + tuple(extra_words))


def access_vocabulary(profile: AdversaryProfile) -> List[AccessSpec]:
    """Every MMU-legal access the profile permits, in canonical order.

    Stores first (one per writable page × data word), then loads (one
    per readable page), then exchanges — a deterministic order the
    guided search's tie-breaking relies on.  A profile carrying an
    explicit ``vocabulary`` returns it verbatim (after re-validation).

    Raises:
        VerificationError: if a derived access fails the shared
            legality validator (a bug guard — cannot happen for rights
            built via :meth:`Rights.over`).
    """
    if profile.vocabulary is not None:
        vocab = list(profile.vocabulary)
    else:
        vocab = []
        for page in sorted(profile.rights.writable):
            for word in profile.data_words:
                vocab.append(AccessSpec(profile.pid, "store", page, word,
                                        ctx_id=profile.ctx_id))
        for page in sorted(profile.rights.readable):
            vocab.append(AccessSpec(profile.pid, "load", page,
                                    ctx_id=profile.ctx_id))
        if profile.with_exchange:
            for page in sorted(profile.rights.writable):
                vocab.append(AccessSpec(profile.pid, "exchange", page,
                                        profile.data_words[0],
                                        ctx_id=profile.ctx_id))
    rights = {profile.pid: profile.rights}
    for access in vocab:
        problem = access_violation(access, rights, method=profile.method)
        if problem is not None:  # pragma: no cover - bug guard
            raise VerificationError(
                f"vocabulary produced an illegal access: {problem}")
    return vocab


def random_stream(rng: random.Random, vocabulary: List[AccessSpec],
                  max_len: int,
                  weights: Optional[List[float]] = None) -> Tuple[int, ...]:
    """Draw one random stream as a tuple of vocabulary indices.

    Args:
        rng: the hunt's seeded RNG (determinism flows from it alone).
        vocabulary: the legal alphabet.
        max_len: streams are 1..max_len accesses long.
        weights: optional per-access selection weights — the
            hypothesis-driven exploration mode passes the bandit's
            current scores here, so random candidates are drawn from
            the learned distribution rather than uniformly.
    """
    if not vocabulary:
        raise VerificationError("cannot synthesize from an empty vocabulary")
    length = rng.randint(1, max(1, max_len))
    indices = range(len(vocabulary))
    if weights is None:
        return tuple(rng.choice(range(len(vocabulary)))
                     for _ in range(length))
    return tuple(rng.choices(list(indices), weights=weights, k=length))
