"""Delta-debugging reduction of found counterexamples.

A counterexample is one concrete violating interleaving — a sequence of
:class:`~repro.verify.interleave.AccessSpec` deliveries.  The shrinker
reduces it to a **1-minimal** core: removing any single access makes the
target violation disappear.  Removal is always execution-feasible — a
subsequence keeps each process's program order (a process may simply
stop early or never be scheduled again), and MMU legality is untouched
(the surviving accesses are unchanged).

Reduction runs in three phases:

1. **ddmin** (Zeller's delta debugging) knocks out large chunks first —
   O(n log n) replays when the core is small;
2. a **1-minimality sweep** then retries every single removal until a
   full pass removes nothing;
3. **canonicalization** projects the surviving accesses back onto
   per-process streams and replays *every* interleaving of those
   (the core is tiny, so this is a handful of replays), keeping the
   first violating order in :func:`~repro.verify.interleave.
   enumerate_interleavings` order — so equal cores always print the
   same interleaving regardless of which order the search stumbled on.

Each replay goes through :func:`~repro.verify.model_check.
replay_interleaving` against the original scenario's rights/intents,
and the shrink target is a single named property: the shrunk core is
guaranteed to still violate *the same property* the original did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ...errors import VerificationError
from ..interleave import AccessSpec, enumerate_interleavings
from ..model_check import Scenario, replay_interleaving

#: Shrink-target preference when the caller does not name a property:
#: protection violations are the paper's headline claims, status lies
#: the corollary.
PROP_PRIORITY: Tuple[str, ...] = (
    "authorized-start", "single-issuer", "truthful-status")


@dataclass
class ShrunkCounterexample:
    """The reduced core of one violating interleaving.

    Attributes:
        interleaving: the canonical 1-minimal violating order.
        prop: the property the core still violates (the shrink target).
        props: every property the canonical core violates.
        original_length: accesses in the counterexample before
            shrinking.
        replays: oracle replays the reduction spent.
    """

    interleaving: Tuple[AccessSpec, ...]
    prop: str
    props: Tuple[str, ...]
    original_length: int
    replays: int

    def __len__(self) -> int:
        return len(self.interleaving)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (used by ``repro hunt --output``)."""
        return {
            "prop": self.prop,
            "props": list(self.props),
            "original_length": self.original_length,
            "length": len(self.interleaving),
            "replays": self.replays,
            "interleaving": [describe_access(a) for a in self.interleaving],
        }


def describe_access(access: AccessSpec) -> Dict[str, object]:
    """Compact JSON form of one access."""
    out: Dict[str, object] = {"pid": access.pid, "op": access.op,
                              "paddr": access.paddr}
    if access.data:
        out["data"] = access.data
    if access.ctx_id:
        out["ctx"] = access.ctx_id
    return out


def violated_props(scenario: Scenario,
                   order: Sequence[AccessSpec]) -> FrozenSet[str]:
    """Which properties replaying *order* violates."""
    return frozenset(v.prop
                     for v in replay_interleaving(scenario, list(order)))


def pick_target_prop(props: FrozenSet[str]) -> str:
    """The property a shrink defaults to (see :data:`PROP_PRIORITY`)."""
    for prop in PROP_PRIORITY:
        if prop in props:
            return prop
    if not props:
        raise VerificationError("cannot shrink a non-violating order")
    return sorted(props)[0]


def shrink_counterexample(scenario: Scenario,
                          interleaving: Sequence[AccessSpec],
                          prop: Optional[str] = None,
                          ) -> ShrunkCounterexample:
    """Reduce *interleaving* to a canonical 1-minimal violating core.

    Args:
        scenario: supplies rights, intents, keys, and the engine
            configuration for the replay oracle.
        interleaving: a violating order (as found by the checker).
        prop: the property to preserve; defaults to the highest-priority
            property the original order violates.

    Raises:
        VerificationError: if *interleaving* does not violate *prop*.
    """
    order = list(interleaving)
    replays = [0]

    original = violated_props(scenario, order)
    replays[0] += 1
    target = prop if prop is not None else pick_target_prop(original)
    if target not in original:
        raise VerificationError(
            f"order does not violate {target!r} (it violates "
            f"{sorted(original) or 'nothing'})")

    def still_violates(candidate: List[AccessSpec]) -> bool:
        if not candidate:
            return False
        replays[0] += 1
        return target in violated_props(scenario, candidate)

    order = _ddmin(order, still_violates)
    order = _one_minimal_sweep(order, still_violates)
    order = _canonicalize(order, still_violates)
    final = violated_props(scenario, order)
    replays[0] += 1
    return ShrunkCounterexample(
        interleaving=tuple(order), prop=target,
        props=tuple(sorted(final)),
        original_length=len(interleaving), replays=replays[0])


def is_one_minimal(scenario: Scenario, order: Sequence[AccessSpec],
                   prop: str) -> bool:
    """Whether every single-access removal loses the *prop* violation."""
    order = list(order)
    if prop not in violated_props(scenario, order):
        return False
    for index in range(len(order)):
        candidate = order[:index] + order[index + 1:]
        if candidate and prop in violated_props(scenario, candidate):
            return False
    return True


# ----------------------------------------------------------------------
# reduction phases
# ----------------------------------------------------------------------


def _ddmin(order: List[AccessSpec], predicate) -> List[AccessSpec]:
    """Zeller's ddmin: complement-removal with increasing granularity."""
    granularity = 2
    while len(order) >= 2:
        chunk = max(1, len(order) // granularity)
        reduced = False
        start = 0
        while start < len(order):
            candidate = order[:start] + order[start + chunk:]
            if predicate(candidate):
                order = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # restart the sweep on the reduced order
                start = 0
                chunk = max(1, len(order) // granularity)
                continue
            start += chunk
        if not reduced:
            if granularity >= len(order):
                break
            granularity = min(len(order), granularity * 2)
    return order


def _one_minimal_sweep(order: List[AccessSpec],
                       predicate) -> List[AccessSpec]:
    """Retry every single removal until a full pass removes nothing."""
    changed = True
    while changed and len(order) > 1:
        changed = False
        for index in range(len(order)):
            candidate = order[:index] + order[index + 1:]
            if predicate(candidate):
                order = candidate
                changed = True
                break
    return order


def _canonicalize(order: List[AccessSpec], predicate) -> List[AccessSpec]:
    """The first violating interleaving of the core's projected streams.

    Grouping the surviving accesses by pid (keeping their order) and
    re-enumerating every interleaving of those projections yields a
    canonical representative: two searches that found the same core via
    different orders shrink to byte-identical interleavings.
    """
    streams: List[List[AccessSpec]] = []
    by_pid: Dict[int, List[AccessSpec]] = {}
    for access in order:
        if access.pid not in by_pid:
            by_pid[access.pid] = []
            streams.append(by_pid[access.pid])
        by_pid[access.pid].append(access)
    for candidate in enumerate_interleavings(streams):
        if predicate(list(candidate)):
            return list(candidate)
    return order  # pragma: no cover - the original order is enumerated
