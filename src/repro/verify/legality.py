"""MMU legality of scenario access streams — the shared validator.

The whole protection story of §2.3 is that an adversary can only issue
accesses its own page tables permit: a shadow *store* (or exchange —
a read-modify-write) needs write permission on the mirrored data page,
a shadow *load* needs read permission.  The hand-written scenarios in
:mod:`repro.verify.adversary` have always *documented* this discipline;
this module makes it checkable, and :class:`~repro.verify.model_check.
Scenario` enforces it at construction time, so an illegal stream can
never silently turn into a bogus "attack" — neither in a hand-written
scenario nor in one synthesized by :mod:`repro.verify.synth`.

Context-page ops (``ctx-store`` / ``ctx-load``) are exempt: the OS maps
each process's register-context page privately, and the scenarios only
ever direct a process at its own context (the keyed method's protection
against a *shared* shadow page is the key word itself, which is exactly
what the key-guessing scenario probes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import VerificationError
from .interleave import AccessSpec
from .properties import Rights

#: Ops that write the mirrored data page (need write permission).
WRITE_OPS = ("store", "exchange")

#: Ops that read the mirrored data page (need read permission).
READ_OPS = ("load",)

#: Ops on the process's own register-context page (no data-page rights).
CTX_OPS = ("ctx-store", "ctx-load")


def access_violation(access: AccessSpec,
                     rights: Dict[int, Rights]) -> Optional[str]:
    """Why *access* is MMU-illegal under *rights*, or None if legal."""
    if access.op in CTX_OPS:
        return None
    holder = rights.get(access.pid)
    if holder is None:
        return (f"pid {access.pid} issues {access.op!r} but has no "
                f"rights entry")
    if access.op in WRITE_OPS:
        if not holder.can_write(access.paddr):
            return (f"pid {access.pid} {access.op}s shadow({access.paddr:#x})"
                    f" without write permission on the page")
        return None
    if access.op in READ_OPS:
        if not holder.can_read(access.paddr):
            return (f"pid {access.pid} loads shadow({access.paddr:#x}) "
                    f"without read permission on the page")
        return None
    return f"pid {access.pid} issues unknown access op {access.op!r}"


def stream_violations(streams: Sequence[Sequence[AccessSpec]],
                      rights: Dict[int, Rights]) -> List[str]:
    """Every MMU-legality problem in *streams*, located by position."""
    problems: List[str] = []
    for s_index, stream in enumerate(streams):
        for a_index, access in enumerate(stream):
            problem = access_violation(access, rights)
            if problem is not None:
                problems.append(f"stream {s_index} access {a_index}: "
                                f"{problem}")
    return problems


def require_legal_streams(streams: Sequence[Sequence[AccessSpec]],
                          rights: Dict[int, Rights],
                          name: str = "scenario") -> None:
    """Raise unless every access in *streams* is MMU-legal.

    Raises:
        VerificationError: naming every illegal access.
    """
    problems = stream_violations(streams, rights)
    if problems:
        raise VerificationError(
            f"{name}: {len(problems)} MMU-illegal access(es): "
            + "; ".join(problems))
