"""MMU legality of scenario access streams — the shared validator.

The whole protection story of §2.3 is that an adversary can only issue
accesses its own page tables permit: a shadow *store* (or exchange —
a read-modify-write) needs write permission on the mirrored data page,
a shadow *load* needs read permission.  The hand-written scenarios in
:mod:`repro.verify.adversary` have always *documented* this discipline;
this module makes it checkable, and :class:`~repro.verify.model_check.
Scenario` enforces it at construction time, so an illegal stream can
never silently turn into a bogus "attack" — neither in a hand-written
scenario nor in one synthesized by :mod:`repro.verify.synth`.

Context-page ops (``ctx-store`` / ``ctx-load``) are exempt: the OS maps
each process's register-context page privately, and the scenarios only
ever direct a process at its own context (the keyed method's protection
against a *shared* shadow page is the key word itself, which is exactly
what the key-guessing scenario probes).

The modern methods (:data:`UNRESTRICTED_SHADOW_METHODS`) are exempt for
*all* shadow ops: their ``paddr`` field is not a mirrored physical page
but a per-process IOVA (iommu) or a capability-buffer offset (capio),
so the MMU's data-page rights say nothing about it — the engine-side
translation/validation is the protection, and the replay properties
judge the *physical* transfers it actually starts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import VerificationError
from .interleave import AccessSpec
from .properties import Rights

#: Ops that write the mirrored data page (need write permission).
WRITE_OPS = ("store", "exchange")

#: Ops that read the mirrored data page (need read permission).
READ_OPS = ("load",)

#: Ops on the process's own register-context page (no data-page rights).
CTX_OPS = ("ctx-store", "ctx-load")

#: Methods whose shadow ``paddr`` field is not a physical page address
#: (see module docstring): all their shadow ops are MMU-exempt.
UNRESTRICTED_SHADOW_METHODS = frozenset(
    {"iommu", "iommu_noshootdown", "capio", "capio_noepoch"})


def access_violation(access: AccessSpec,
                     rights: Dict[int, Rights],
                     method: Optional[str] = None) -> Optional[str]:
    """Why *access* is MMU-illegal under *rights*, or None if legal.

    Args:
        method: the scenario's initiation method, when known — members
            of :data:`UNRESTRICTED_SHADOW_METHODS` exempt shadow ops
            from data-page rights checks.
    """
    if access.op in CTX_OPS:
        return None
    if method in UNRESTRICTED_SHADOW_METHODS:
        if access.op in WRITE_OPS or access.op in READ_OPS:
            return None
        return f"pid {access.pid} issues unknown access op {access.op!r}"
    holder = rights.get(access.pid)
    if holder is None:
        return (f"pid {access.pid} issues {access.op!r} but has no "
                f"rights entry")
    if access.op in WRITE_OPS:
        if not holder.can_write(access.paddr):
            return (f"pid {access.pid} {access.op}s shadow({access.paddr:#x})"
                    f" without write permission on the page")
        return None
    if access.op in READ_OPS:
        if not holder.can_read(access.paddr):
            return (f"pid {access.pid} loads shadow({access.paddr:#x}) "
                    f"without read permission on the page")
        return None
    return f"pid {access.pid} issues unknown access op {access.op!r}"


def stream_violations(streams: Sequence[Sequence[AccessSpec]],
                      rights: Dict[int, Rights],
                      method: Optional[str] = None) -> List[str]:
    """Every MMU-legality problem in *streams*, located by position."""
    problems: List[str] = []
    for s_index, stream in enumerate(streams):
        for a_index, access in enumerate(stream):
            problem = access_violation(access, rights, method=method)
            if problem is not None:
                problems.append(f"stream {s_index} access {a_index}: "
                                f"{problem}")
    return problems


def require_legal_streams(streams: Sequence[Sequence[AccessSpec]],
                          rights: Dict[int, Rights],
                          name: str = "scenario",
                          method: Optional[str] = None) -> None:
    """Raise unless every access in *streams* is MMU-legal.

    Raises:
        VerificationError: naming every illegal access.
    """
    problems = stream_violations(streams, rights, method=method)
    if problems:
        raise VerificationError(
            f"{name}: {len(problems)} MMU-illegal access(es): "
            + "; ".join(problems))
