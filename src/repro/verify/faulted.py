"""Re-verifying initiation methods *under faults* (model-checker level).

The timed simulation injects faults at runtime (repro.faults.injector);
here the same fault taxonomy is applied **inside the model checker**, by
transforming a scenario's access streams before exhaustive interleaving:

* ``drop``      — an access never reaches the engine (lost bus cycle);
* ``duplicate`` — an access arrives twice (re-issued transaction);
* ``reorder``   — two adjacent accesses of one stream swap on the bus;
* ``delay``     — an access is held arbitrarily long (modelled as
  migrating to the end of its stream — the worst legal reordering);
* ``bitflip``   — one data bit of a value-carrying access flips.

Each single-fault variant of a scenario is then checked exhaustively for
the *protection* properties (authorized-start, single-issuer) over every
interleaving, exactly as §3.3.1 does for the fault-free case.  The
truthful-status property is deliberately excluded: a dropped store makes
an honest initiation legitimately fail, so "reported status matches" is
not expected to survive faults — *no unauthorized transfer ever starts*
is.

Verdicts per method:

* ``SAFE`` — protection holds in the fault-free scenario and in every
  single-fault variant;
* ``UNSAFE-BASELINE`` — the method already violates protection without
  faults (repeated3 / repeated4: the paper's own Figs. 5-6 attacks;
  shrimp2 / flash: the §2.5 pair race their kernel hooks exist to fix;
  iommu_noshootdown / capio_noepoch: the deliberately-weakened modern
  variants, broken by a stale IOTLB entry or a revoked-epoch token),
  so fault-hardening is moot;
* ``NEWLY-UNSAFE`` — safe without faults but a single fault breaks
  protection.  **No built-in method may ever earn this verdict** — that
  is the acceptance criterion CI enforces; the page-bounding engine
  hardening (:class:`repro.hw.dma.engine.DmaEngine`) exists precisely
  to keep bit-flipped size words from crossing page boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.plan import BITFLIP, DELAY, DROP, DUPLICATE, REORDER
from .adversary import (
    fig5_scenario,
    fig6_scenario,
    pair_race_scenario,
    revoked_capability_scenario,
    stale_iotlb_scenario,
)
from .incremental import check_scenario_incremental
from .model_check import CheckResult, Scenario

#: Bit positions exercised by bitflip variants: low bits (small size
#: perturbations), bit 4, bit 13 (= PAGE_SHIFT: flips a size word past
#: the page boundary), and two high bits (wild sizes / corrupt keys).
FAULT_BITS: Tuple[int, ...] = (0, 1, 4, 13, 40, 63)

#: Access ops that carry a data word worth corrupting.
DATA_OPS = ("store", "exchange", "ctx-store")

#: Methods expected to keep full protection under any single fault.
#: (kernel is trivially immune — its path never crosses the faulted
#: shadow region; pal rides the same two-access stream as shrimp2.)
FAULT_HARDENED_METHODS: Tuple[str, ...] = (
    "shrimp1", "keyed", "extshadow", "repeated5", "iommu", "capio")

#: Every method the fault verification covers (all user-level methods
#: with a stream builder).
VERIFIABLE_METHODS: Tuple[str, ...] = (
    "shrimp1", "shrimp2", "flash", "pal", "keyed", "extshadow",
    "repeated3", "repeated4", "repeated5",
    "iommu", "iommu_noshootdown", "capio", "capio_noepoch")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, located in a scenario's streams.

    Attributes:
        kind: drop / duplicate / reorder / delay / bitflip.
        stream: index of the faulted stream.
        index: index of the faulted access within that stream.
        bit: data bit to flip (bitflip only).
    """

    kind: str
    stream: int
    index: int
    bit: Optional[int] = None

    def label(self) -> str:
        """Compact display form, e.g. ``bitflip[s0.a2.b13]``."""
        loc = f"s{self.stream}.a{self.index}"
        if self.bit is not None:
            loc += f".b{self.bit}"
        return f"{self.kind}[{loc}]"


def enumerate_single_faults(scenario: Scenario) -> List[FaultSpec]:
    """Every single-fault variant of *scenario*'s streams.

    Drops and duplicates apply to every access; reorders swap each
    adjacent pair; delays migrate each non-final access to the end of
    its stream; bitflips cover :data:`FAULT_BITS` on every
    value-carrying access.
    """
    specs: List[FaultSpec] = []
    for s_index, stream in enumerate(scenario.streams):
        length = len(stream)
        for a_index, access in enumerate(stream):
            specs.append(FaultSpec(DROP, s_index, a_index))
            specs.append(FaultSpec(DUPLICATE, s_index, a_index))
            if a_index < length - 1:
                specs.append(FaultSpec(REORDER, s_index, a_index))
                specs.append(FaultSpec(DELAY, s_index, a_index))
            if access.op in DATA_OPS:
                for bit in FAULT_BITS:
                    specs.append(FaultSpec(BITFLIP, s_index, a_index,
                                           bit=bit))
    return specs


def apply_fault(scenario: Scenario, spec: FaultSpec) -> Scenario:
    """A copy of *scenario* with *spec* applied to its streams.

    The variant always runs with ``check_truthfulness=False`` (an honest
    initiation may legitimately fail under a fault) and keeps the
    scenario's page-bounding setting.
    """
    streams = [list(s) for s in scenario.streams]
    target = streams[spec.stream]
    access = target[spec.index]
    if spec.kind == DROP:
        del target[spec.index]
    elif spec.kind == DUPLICATE:
        target.insert(spec.index + 1, access)
    elif spec.kind == REORDER:
        target[spec.index], target[spec.index + 1] = (
            target[spec.index + 1], target[spec.index])
    elif spec.kind == DELAY:
        del target[spec.index]
        target.append(access)
    elif spec.kind == BITFLIP:
        assert spec.bit is not None
        target[spec.index] = replace(access,
                                     data=access.data ^ (1 << spec.bit))
    else:
        raise ValueError(f"unknown fault kind {spec.kind!r}")
    return replace(scenario,
                   name=f"{scenario.name}+{spec.label()}",
                   streams=streams,
                   check_truthfulness=False)


def apply_faults(scenario: Scenario,
                 specs: Sequence[FaultSpec]) -> Scenario:
    """A copy of *scenario* with *several* faults applied to its streams.

    Specs are applied in descending ``(stream, index)`` order, so a
    fault that shortens or lengthens a stream never invalidates the
    location of a fault at an earlier index.  A combination can still
    be infeasible — e.g. a reorder whose partner access was dropped by
    a later-index fault — in which case :class:`IndexError` propagates;
    the k-fault campaign (:mod:`repro.verify.synth.kfault`) counts such
    combinations as skipped rather than checked.
    """
    ordered = sorted(specs, key=lambda s: (s.stream, s.index),
                     reverse=True)
    out = scenario
    for spec in ordered:
        out = apply_fault(out, spec)
    return out


@dataclass
class MethodFaultReport:
    """Fault-verification outcome for one initiation method.

    Attributes:
        method: the method name.
        baseline_safe: protection held with no fault injected.
        variants_checked: number of single-fault variants replayed.
        interleavings_checked: total orders across all variants.
        newly_unsafe: (fault, result) pairs where a variant broke a
            protection property despite a safe baseline.
        baseline_results: the fault-free results (pair race, plus the
            method's canonical attack figure where the paper gives one).
    """

    method: str
    baseline_safe: bool
    variants_checked: int = 0
    interleavings_checked: int = 0
    newly_unsafe: List[Tuple[FaultSpec, CheckResult]] = (
        field(default_factory=list))
    baseline_results: List[CheckResult] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        """SAFE / UNSAFE-BASELINE / NEWLY-UNSAFE (see module docstring)."""
        if not self.baseline_safe:
            return "UNSAFE-BASELINE"
        if self.newly_unsafe:
            return "NEWLY-UNSAFE"
        return "SAFE"

    @property
    def acceptable(self) -> bool:
        """A method is acceptable unless a fault *created* an attack."""
        return self.verdict != "NEWLY-UNSAFE"

    def summary(self) -> str:
        """One-line human-readable result."""
        base = (f"{self.method}: {self.verdict} "
                f"({self.variants_checked} fault variants, "
                f"{self.interleavings_checked} interleavings)")
        if self.newly_unsafe:
            worst = self.newly_unsafe[0]
            base += f"; first break: {worst[0].label()}"
        return base


def method_fault_scenarios(method: str) -> List[Scenario]:
    """The fault-free scenarios a method is judged on.

    Always the honest §2.5 pair race (page-bounded engine, truthfulness
    off so baseline and variants measure the same properties), plus the
    method's canonical attack scenario where one exists — the paper's
    own figure for repeated3/4, the stale-IOTLB grant for the IOMMU
    family, the revoked capability for the capio family — so the
    baseline classification matches the known flaw even if the pair
    race alone happens not to exhibit it (for the hardened iommu/capio
    the same scenario doubles as the fault-free safety proof of the
    shoot-down / epoch defence).
    """
    scenarios: List[Scenario] = []
    race = pair_race_scenario(method)
    race.page_bounded = True
    race.check_truthfulness = False
    scenarios.append(race)
    extra: Optional[Scenario] = None
    if method == "repeated3":
        extra = fig5_scenario()[0]
    elif method == "repeated4":
        extra = fig6_scenario()[0]
    elif method in ("iommu", "iommu_noshootdown"):
        extra = stale_iotlb_scenario(method)
    elif method in ("capio", "capio_noepoch"):
        extra = revoked_capability_scenario(method)
    if extra is not None:
        extra.page_bounded = True
        extra.check_truthfulness = False
        scenarios.append(extra)
    return scenarios


def verify_method_under_faults(
        method: str,
        max_examples: int = 3,
        max_interleavings: Optional[int] = 200_000,
        checker: Callable[..., CheckResult] = check_scenario_incremental,
        progress: Optional[Callable[[str, int, int], None]] = None,
) -> MethodFaultReport:
    """Exhaustively re-check *method* under every single fault.

    Args:
        method: one of :data:`VERIFIABLE_METHODS`.
        max_examples: violating examples to retain per variant.
        max_interleavings: per-variant order cap (safety net).
        checker: the check function (incremental by default; the naive
            :func:`~repro.verify.model_check.check_scenario` gives
            identical results).
        progress: optional callback ``(variant_name, done, total)``.
    """
    baselines = method_fault_scenarios(method)
    baseline_results = [
        checker(b, max_examples=max_examples,
                max_interleavings=max_interleavings) for b in baselines]
    baseline_safe = all(r.safe for r in baseline_results)
    report = MethodFaultReport(method=method, baseline_safe=baseline_safe,
                               baseline_results=baseline_results)
    report.interleavings_checked = sum(
        r.total_interleavings for r in baseline_results)
    race = baselines[0]
    specs = enumerate_single_faults(race)
    for done, spec in enumerate(specs, start=1):
        variant = apply_fault(race, spec)
        result = checker(variant, max_examples=max_examples,
                         max_interleavings=max_interleavings)
        report.variants_checked += 1
        report.interleavings_checked += result.total_interleavings
        if baseline_safe and result.attack_found:
            report.newly_unsafe.append((spec, result))
        if progress is not None:
            progress(variant.name, done, len(specs))
    return report


def run_fault_verification(
        methods: Optional[Sequence[str]] = None,
        max_examples: int = 3,
        progress: Optional[Callable[[str, int, int], None]] = None,
) -> Dict[str, MethodFaultReport]:
    """Fault-verify every (or the given) method; name -> report.

    The acceptance criterion — no method NEWLY-UNSAFE — is
    :func:`all_acceptable` over the returned reports.
    """
    chosen = tuple(methods) if methods is not None else VERIFIABLE_METHODS
    return {m: verify_method_under_faults(m, max_examples=max_examples,
                                          progress=progress)
            for m in chosen}


def all_acceptable(reports: Dict[str, MethodFaultReport]) -> bool:
    """True when no method earned the NEWLY-UNSAFE verdict."""
    return all(r.acceptable for r in reports.values())
