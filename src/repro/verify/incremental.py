"""Incremental, prefix-sharing exhaustive interleaving checker.

The naive oracle (:func:`repro.verify.model_check.check_scenario`)
replays every interleaving from a cold engine: O(orders × length)
accesses, and every order pays a full harness reset.  But interleavings
share prefixes massively — the orders of a scenario form a tree whose
leaves are the interleavings and whose edges are single access
deliveries.  This module walks that tree depth-first, snapshotting the
harness (simulator + RAM + engine + protocol FSM) before each delivery
and restoring the parent state on backtrack, so each access is delivered
**once per tree edge**: O(tree edges) accesses and zero resets.

On top, an optional **transposition table** (partial-order-reduction
lite) merges converged states: two different prefixes that delivered the
same per-stream position vector and left behaviour-identical harness
state (same FSM state, same initiation records, same latched transfers,
same final statuses) have identical subtrees, so the second visit reuses
the first visit's subtree summary instead of re-exploring.

Child subtrees are visited in stream-index order — exactly the order
:func:`~repro.verify.interleave.enumerate_interleavings` yields — so the
resulting :class:`~repro.verify.model_check.CheckResult` (counts *and*
retained examples) is identical to the naive oracle's, which the
differential tests assert on every built-in scenario.

Backtracking goes through the shared undo journal
(:meth:`~repro.verify.interleave.ProtocolHarness.enable_journal`):
snapshot is an O(1) mark and restore replays only the mutations made
since it.  Two further strategies keep small and degenerate inputs fast
(see docs/verification.md "Small-scenario cutover"): scenarios under
:data:`SMALL_SCENARIO_CUTOVER` orders skip the DFS for a journaled
fast-replay of every order, and a node whose every remaining access
belongs to one stream delivers the whole forced tail under a single
snapshot/restore pair (counted in ``CheckStats.batched_deliveries``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import VerificationError
from ..obs.profile import PhaseProfiler
from .interleave import AccessSpec, interleaving_count, iter_interleavings_shared
from .model_check import (
    REJECTION_WORDS,
    CheckResult,
    Scenario,
    make_harness,
)
from .properties import (
    ReplayEvidence,
    Violation,
    check_authorized_start,
    check_single_issuer,
    check_truthful_status,
)

#: final_status sentinels: "pid had no entry" vs "nothing to undo".
_MISSING = object()
_NO_CHANGE = object()

#: Scenarios whose full order count is below this skip the DFS and run a
#: journaled fast-replay instead: every order is delivered from one root
#: mark and undone through the journal.  For trees this small the DFS's
#: fingerprint/memoization overhead exceeds what prefix sharing saves,
#: which is exactly the speedup<1.0 regression BENCH_checker recorded on
#: the 2-to-21-order scenarios; fast replay also skips the per-order
#: harness reconstruction that dominates the naive oracle.
SMALL_SCENARIO_CUTOVER = 30

#: Skip transposition lookups when fewer than this many accesses remain.
#: Tuned on fig8-repeated5-2adv: with the fingerprint and event-signature
#: caches a lookup is cheap enough that memoization wins all the way down
#: to the last choice point (26.5 ms at 1 vs 30.9 ms at 3, 75.9 ms at 5),
#: so the threshold stays at 1 (no elision).
MEMO_MIN_REMAINING = 1


@dataclass
class CheckStats:
    """Work accounting for one incremental check (perf instrumentation).

    Attributes:
        leaves: interleavings covered (== naive total_interleavings).
        accesses_delivered: accesses actually delivered to the engine
            (== tree edges explored + any forced prefix deliveries).
        naive_accesses: what the naive replayer would have delivered
            (leaves × interleaving length).
        snapshots / restores: backtracking operations performed.
        transposition_hits: subtrees reused from the table.
        transposition_entries: distinct states stored in the table.
        journal_entries_replayed: undo-journal entries replayed across
            all restores (0 when the deep-copy path was used).
        dirty_pages: RAM pages copied by the page-granular CoW layer.
        batched_deliveries: accesses delivered inside forced-tail
            batches (a single live stream leaves no choice points, so
            the whole tail shares one snapshot/restore pair).
    """

    leaves: int = 0
    accesses_delivered: int = 0
    naive_accesses: int = 0
    snapshots: int = 0
    restores: int = 0
    transposition_hits: int = 0
    transposition_entries: int = 0
    journal_entries_replayed: int = 0
    dirty_pages: int = 0
    batched_deliveries: int = 0

    @property
    def accesses_saved(self) -> int:
        """Engine deliveries avoided relative to the naive replayer."""
        return self.naive_accesses - self.accesses_delivered

    @property
    def delivery_ratio(self) -> float:
        """Fraction of naive deliveries actually performed (lower = better)."""
        if self.naive_accesses == 0:
            return 1.0
        return self.accesses_delivered / self.naive_accesses


@dataclass
class _Subtree:
    """Summary of one choice-tree node's entire subtree.

    ``examples`` holds the first (in DFS order) up-to-``max_examples``
    violating orders as (suffix-from-this-node, violations) pairs; a
    parent splices its edge access onto each suffix, so the root's
    entries are complete interleavings — the same ones the naive oracle
    retains.
    """

    leaves: int = 0
    violating: int = 0
    by_prop: Dict[str, int] = field(default_factory=dict)
    examples: List[Tuple[Tuple[AccessSpec, ...], List[Violation]]] = (
        field(default_factory=list))


def check_scenario_incremental(
        scenario: Scenario,
        max_examples: int = 5,
        max_interleavings: Optional[int] = None,
        use_transposition: bool = True,
        progress: Optional[Callable[[int], None]] = None,
        progress_every: int = 1000,
        stats: Optional[CheckStats] = None,
        prefix_choices: Optional[Sequence[int]] = None,
        profiler: Optional[PhaseProfiler] = None,
) -> CheckResult:
    """Check a scenario with prefix sharing; naive-identical results.

    Args:
        scenario: as for :func:`~repro.verify.model_check.check_scenario`.
        max_examples: retain at most this many violating examples.
        max_interleavings: optional safety cap on the order count of the
            *full* scenario; exceeding it raises.
        use_transposition: merge converged states (identical position
            vector + behaviour-identical harness state) by reusing the
            first visit's subtree summary.  Results are identical either
            way; the table trades memory for work on scenarios whose
            streams frequently cancel out.
        progress: optional liveness callback, invoked with the number of
            interleavings covered so far, roughly every *progress_every*
            orders (transposition hits can make it jump).
        progress_every: callback period in interleavings.
        stats: optional :class:`CheckStats` to fill with work counters.
        prefix_choices: optional forced stream-index choices delivered
            before exploration begins — the parallel checker uses this
            to hand each worker one top-level DFS branch.  The result
            then covers (and counts) only that branch's subtree, with
            examples still being complete interleavings.
        profiler: optional :class:`~repro.obs.profile.PhaseProfiler`;
            when given, accumulates wall time for the ``snapshot``,
            ``restore``, ``deliver``, and ``leaf`` phases and counts
            ``expansion`` / ``transposition_hit`` events.  When None
            (the default) the hot path pays one ``is not None`` test
            per operation.

    Raises:
        VerificationError: if the interleaving count exceeds the cap, or
            a prefix choice names an exhausted/unknown stream.
    """
    streams = scenario.streams
    lengths = [len(s) for s in streams]
    total_length = sum(lengths)
    expected = interleaving_count(lengths)
    if max_interleavings is not None and expected > max_interleavings:
        raise VerificationError(
            f"scenario {scenario.name}: {expected} interleavings exceeds "
            f"cap {max_interleavings}")
    if stats is None:
        stats = CheckStats()

    harness = make_harness(scenario)
    harness.enable_journal()
    positions = [0] * len(streams)
    final_status: Dict[int, int] = {}
    memo: Dict[Any, _Subtree] = {}
    track = {"leaves": 0, "reported": 0}

    def finish_stats() -> None:
        if harness.journal is not None:
            stats.journal_entries_replayed = harness.journal.entries_replayed
            stats.dirty_pages = harness.ram.dirty_pages_saved

    def deliver(access: AccessSpec) -> Any:
        """Deliver one access; returns the final_status undo token."""
        stats.accesses_delivered += 1
        if profiler is not None:
            t0 = time.perf_counter()
            status = harness.deliver(access)
            profiler.add_seconds("deliver", time.perf_counter() - t0)
        else:
            status = harness.deliver(access)
        if access.final and status is not None:
            old = final_status.get(access.pid, _MISSING)
            final_status[access.pid] = status
            return old
        return _NO_CHANGE

    def undo_status(access: AccessSpec, old: Any) -> None:
        if old is _NO_CHANGE:
            return
        if old is _MISSING:
            del final_status[access.pid]
        else:
            final_status[access.pid] = old

    def tick(leaves: int) -> None:
        track["leaves"] += leaves
        if progress is not None and (
                track["leaves"] - track["reported"] >= progress_every):
            track["reported"] = track["leaves"]
            progress(track["leaves"])

    def evaluate(status_map: Dict[int, int]) -> List[Violation]:
        """Run every property over the harness's current end state."""
        evidence = ReplayEvidence()
        evidence.records = list(harness.engine.initiations)
        evidence.final_status = dict(status_map)
        contributors = getattr(
            harness.protocol, "completed_contributors", None)
        if contributors is not None:
            evidence.contributors = [
                tuple(p for p in pids) for pids in contributors]
        authority = getattr(
            harness.protocol, "completed_authority", None)
        if authority is not None:
            evidence.authority = list(authority)
        violations = check_authorized_start(evidence, scenario.rights)
        violations += check_single_issuer(evidence, scenario.rights)
        if scenario.check_truthfulness:
            violations += check_truthful_status(
                evidence, scenario.intents, REJECTION_WORDS)
        return violations

    def leaf() -> _Subtree:
        t0 = time.perf_counter() if profiler is not None else 0.0
        violations = evaluate(final_status)
        node = _Subtree(leaves=1)
        if violations:
            node.violating = 1
            for prop in {v.prop for v in violations}:
                node.by_prop[prop] = 1
            if max_examples > 0:
                node.examples.append(((), violations))
        tick(1)
        if profiler is not None:
            profiler.add_seconds("leaf", time.perf_counter() - t0)
        return node

    # Adaptive cutover: a tree this small cannot amortize the DFS's
    # fingerprint/memo machinery, so replay every order outright — still
    # through the journal, so each order undoes in O(changes) and the
    # harness is never reconstructed (the naive oracle's main cost).
    # Iteration order matches the DFS/naive enumeration, so counts and
    # retained examples are bit-identical.
    if prefix_choices is None and expected < SMALL_SCENARIO_CUTOVER:
        result = CheckResult(scenario=scenario.name)
        order_status: Dict[int, int] = {}
        for order in iter_interleavings_shared(streams):
            token = harness.snapshot()
            stats.snapshots += 1
            order_status.clear()
            for access in order:
                stats.accesses_delivered += 1
                if profiler is not None:
                    t0 = time.perf_counter()
                    status = harness.deliver(access)
                    profiler.add_seconds(
                        "deliver", time.perf_counter() - t0)
                else:
                    status = harness.deliver(access)
                if access.final and status is not None:
                    order_status[access.pid] = status
            t0 = time.perf_counter() if profiler is not None else 0.0
            violations = evaluate(order_status)
            if profiler is not None:
                profiler.add_seconds("leaf", time.perf_counter() - t0)
            result.total_interleavings += 1
            if violations:
                result.violating_interleavings += 1
                for prop in {v.prop for v in violations}:
                    result.violations_by_property[prop] = (
                        result.violations_by_property.get(prop, 0) + 1)
                if len(result.examples) < max_examples:
                    result.examples.append((tuple(order), violations))
            tick(1)
            harness.restore(token)
            stats.restores += 1
        stats.leaves = result.total_interleavings
        stats.naive_accesses = stats.leaves * total_length
        finish_stats()
        return result

    def forced_tail(index: int, remaining: int) -> _Subtree:
        """Only one stream is live: the whole tail is a forced path.

        With zero choice points left the subtree is a single leaf, so
        the tail is delivered as one batch under a single
        snapshot/restore pair instead of one pair per access.  Counts
        and the retained example are identical to the unbatched walk.
        """
        stream = streams[index]
        pos = positions[index]
        if profiler is not None:
            t0 = time.perf_counter()
            token = harness.snapshot()
            profiler.add_seconds("snapshot", time.perf_counter() - t0)
        else:
            token = harness.snapshot()
        stats.snapshots += 1
        tail = tuple(stream[pos:pos + remaining])
        undos = []
        for access in tail:
            undos.append((access, deliver(access)))
        positions[index] = pos + remaining
        stats.batched_deliveries += remaining
        node = leaf()
        if node.examples:
            node.examples = [(tail + suffix, violations)
                             for suffix, violations in node.examples]
        positions[index] = pos
        for access, old in reversed(undos):
            undo_status(access, old)
        if profiler is not None:
            t0 = time.perf_counter()
            harness.restore(token)
            profiler.add_seconds("restore", time.perf_counter() - t0)
        else:
            harness.restore(token)
        stats.restores += 1
        return node

    def dfs(remaining: int) -> _Subtree:
        if remaining == 0:
            return leaf()
        key = None
        if use_transposition and remaining >= MEMO_MIN_REMAINING:
            fingerprint = harness.fingerprint()
            if fingerprint is not None:
                key = (tuple(positions),
                       tuple(sorted(final_status.items())),
                       fingerprint)
                hit = memo.get(key)
                if hit is not None:
                    stats.transposition_hits += 1
                    if profiler is not None:
                        profiler.count("transposition_hit")
                    tick(hit.leaves)
                    return hit
        live = [i for i in range(len(streams)) if positions[i] < lengths[i]]
        if len(live) == 1:
            node = forced_tail(live[0], remaining)
            if key is not None:
                memo[key] = node
            return node
        node = _Subtree()
        if profiler is not None:
            profiler.count("expansion")
        for index, stream in enumerate(streams):
            pos = positions[index]
            if pos == lengths[index]:
                continue
            access = stream[pos]
            if profiler is not None:
                t0 = time.perf_counter()
                token = harness.snapshot()
                profiler.add_seconds("snapshot", time.perf_counter() - t0)
            else:
                token = harness.snapshot()
            stats.snapshots += 1
            old = deliver(access)
            positions[index] = pos + 1
            child = dfs(remaining - 1)
            positions[index] = pos
            undo_status(access, old)
            if profiler is not None:
                t0 = time.perf_counter()
                harness.restore(token)
                profiler.add_seconds("restore", time.perf_counter() - t0)
            else:
                harness.restore(token)
            stats.restores += 1
            node.leaves += child.leaves
            node.violating += child.violating
            for prop, count in child.by_prop.items():
                node.by_prop[prop] = node.by_prop.get(prop, 0) + count
            if len(node.examples) < max_examples:
                for suffix, violations in child.examples:
                    if len(node.examples) >= max_examples:
                        break
                    node.examples.append(((access,) + suffix, violations))
        if key is not None:
            memo[key] = node
        return node

    # Forced prefix (parallel branch fan-out): deliver, no backtracking.
    prefix_accesses: List[AccessSpec] = []
    for index in prefix_choices or ():
        if not 0 <= index < len(streams):
            raise VerificationError(
                f"prefix choice {index} out of range for "
                f"{len(streams)} streams")
        pos = positions[index]
        if pos >= lengths[index]:
            raise VerificationError(
                f"prefix choice {index} exhausts stream of "
                f"length {lengths[index]}")
        access = streams[index][pos]
        deliver(access)
        positions[index] = pos + 1
        prefix_accesses.append(access)

    root = dfs(total_length - len(prefix_accesses))
    stats.leaves = root.leaves
    stats.naive_accesses = root.leaves * total_length
    stats.transposition_entries = len(memo)
    finish_stats()

    result = CheckResult(scenario=scenario.name)
    result.total_interleavings = root.leaves
    result.violating_interleavings = root.violating
    result.violations_by_property = dict(root.by_prop)
    prefix = tuple(prefix_accesses)
    result.examples = [(prefix + suffix, list(violations))
                       for suffix, violations in root.examples]
    return result
