"""The paper's attack scenarios (Figs. 5, 6, 8) and race scenarios.

Each builder returns a :class:`~repro.verify.model_check.Scenario` plus,
where the paper gives one, the *exact* interleaving from the figure so
tests can reproduce the printed attack verbatim before searching
exhaustively.

Address conventions: one page per named buffer; the victim is pid 1.
Adversary streams only contain accesses the MMU would let the adversary
issue — a shadow store needs write permission on the page, a shadow load
needs read permission (that is the whole protection story of §2.3).
This is *enforced* at construction time, not merely documented:
:class:`~repro.verify.model_check.Scenario` runs every stream through
:mod:`repro.verify.legality` and raises
:class:`~repro.errors.VerificationError` on an illegal access, so these
hand-written scenarios and the synthesized streams of
:mod:`repro.verify.synth` share one validator.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import VerificationError
from ..hw.dma.recognizer import SetupOp
from ..hw.pagetable import PAGE_SIZE
from .interleave import AccessSpec, initiation_stream
from .model_check import Scenario
from .properties import ProcessIntent, Rights

# One page per named buffer, inside the harness's 64 KiB RAM.
ADDR_A = 0 * PAGE_SIZE   # victim's source
ADDR_B = 1 * PAGE_SIZE   # victim's (private) destination
ADDR_C = 2 * PAGE_SIZE   # adversary's own data
ADDR_FOO = 3 * PAGE_SIZE  # adversary's scratch page

#: IOVA page the stale-IOTLB scenario maps transiently (never a RAM page
#: the adversary owns — the whole point is that the *translation* is the
#: only thing granting access to the victim's page behind it).
STALE_IOVA = 4 * PAGE_SIZE

SIZE = 256  # transfer size used throughout the scenarios

_IOMMU_FAMILY = ("iommu", "iommu_noshootdown")
_CAPIO_FAMILY = ("capio", "capio_noepoch")

#: Well-known capability nonces for the hand-written capio scenarios.
_NONCE_1, _NONCE_2, _NONCE_3 = 0xAAA111, 0xBBB222, 0xCCC333


def _cap_tokens(cap_id: int, epoch: int, nonce: int) -> Tuple[int, int]:
    """(src_token, dst_token) for one capability at one epoch."""
    from ..hw.dma.protocols.capio import pack_cap_word
    from ..hw.dma.protocols.keyed import ARG_DESTINATION, ARG_SOURCE

    return (pack_cap_word(cap_id, epoch, nonce, ARG_SOURCE),
            pack_cap_word(cap_id, epoch, nonce, ARG_DESTINATION))


def fig5_scenario() -> Tuple[Scenario, List[AccessSpec]]:
    """Fig. 5: the 3-instruction variant is exploitable.

    The malicious process (pid 2) owns C and foo; the victim (pid 1)
    wants A -> B.  In the figure's interleaving the engine ends up
    starting C -> B: the adversary's data lands in the victim's private
    page — an authorized-start violation (pid 2 cannot write B).

    Returns:
        (scenario, the exact interleaving from the figure).
    """
    victim = initiation_stream("repeated3", 1, ADDR_A, ADDR_B, SIZE)
    malicious = [
        AccessSpec(2, "store", ADDR_FOO, SIZE),   # STORE foo TO shadow(foo)
        AccessSpec(2, "load", ADDR_FOO),          # LOAD FROM shadow(foo)
        AccessSpec(2, "load", ADDR_C),            # LOAD FROM shadow(C)
        AccessSpec(2, "load", ADDR_C, final=True),  # LOAD FROM shadow(C)
    ]
    scenario = Scenario(
        name="fig5-repeated3",
        method="repeated3",
        streams=[victim, malicious],
        rights={
            1: Rights.over(write_pages=[ADDR_A, ADDR_B]),
            2: Rights.over(write_pages=[ADDR_C, ADDR_FOO]),
        },
        intents=[ProcessIntent(1, ADDR_A, ADDR_B, SIZE)],
    )
    # The figure's order: V:1  M:2 M:3 M:4  V:5  M:6  V:7
    figure_order = [victim[0], malicious[0], malicious[1], malicious[2],
                    victim[1], malicious[3], victim[2]]
    return scenario, figure_order


def fig6_scenario() -> Tuple[Scenario, List[AccessSpec]]:
    """Fig. 6: the 4-instruction variant misinforms the victim.

    The adversary (pid 2) has *read-only* access to A ("data readable by
    any process").  It slips one LOAD FROM shadow(A) between the victim's
    3rd and 4th accesses: the engine starts the victim's A -> B transfer
    but reports the success to the adversary and DMA_FAILURE to the
    victim — a truthful-status violation (and an authorized-start one,
    since the start was triggered by a process that cannot write B).
    """
    victim = initiation_stream("repeated4", 1, ADDR_A, ADDR_B, SIZE)
    malicious = [AccessSpec(2, "load", ADDR_A, final=True)]
    scenario = Scenario(
        name="fig6-repeated4",
        method="repeated4",
        streams=[victim, malicious],
        rights={
            1: Rights.over(write_pages=[ADDR_A, ADDR_B]),
            2: Rights.over(read_pages=[ADDR_A],
                           write_pages=[ADDR_C]),
        },
        intents=[ProcessIntent(1, ADDR_A, ADDR_B, SIZE)],
    )
    figure_order = [victim[0], victim[1], victim[2], malicious[0],
                    victim[3]]
    return scenario, figure_order


def fig8_scenario(n_adversaries: int = 2,
                  adversary_reads_source: bool = True,
                  accesses_per_adversary: int = 3) -> Scenario:
    """Fig. 8 / §3.3.1: the 5-instruction variant under interference.

    The victim wants SOURCE -> DEST where DEST is private; adversaries
    may (optionally) read the source and own their own pages.  The
    paper's claim, which :func:`~repro.verify.model_check.check_scenario`
    verifies exhaustively: **no interleaving** yields an unauthorized
    start, a mixed-issuer sequence, or a lying status.

    Args:
        n_adversaries: 1-4 interfering processes.
        adversary_reads_source: grant adversaries read access to the
            victim's source page (the paper's "possibly public" data).
        accesses_per_adversary: 3 for full interfering initiations, or
            1 for Fig. 8's literal worst case — each adversary supplies
            exactly one potential pattern slot (Fig. 8(a): "all five
            instructions are issued by different processes").  One-slot
            adversaries keep the interleaving count exact and small
            even at four adversaries.
    """
    if not 1 <= n_adversaries <= 4:
        raise VerificationError("n_adversaries must be 1..4")
    if accesses_per_adversary not in (1, 3):
        raise VerificationError("accesses_per_adversary must be 1 or 3")
    victim = initiation_stream("repeated5", 1, ADDR_A, ADDR_B, SIZE)
    streams = [victim]
    rights = {1: Rights.over(write_pages=[ADDR_A, ADDR_B])}
    intents = [ProcessIntent(1, ADDR_A, ADDR_B, SIZE)]
    for index in range(n_adversaries):
        pid = 2 + index
        own_page = (4 + index) * PAGE_SIZE
        read_pages = [ADDR_A] if adversary_reads_source else []
        rights[pid] = Rights.over(read_pages=read_pages,
                                  write_pages=[own_page])
        if accesses_per_adversary == 1:
            # One pattern-slot each: stores from even adversaries, loads
            # of the shared source from odd ones (if allowed).
            if index % 2 == 0 or not adversary_reads_source:
                stream: List[AccessSpec] = [
                    AccessSpec(pid, "store", own_page, SIZE, final=False)]
            else:
                stream = [AccessSpec(pid, "load", ADDR_A, final=True)]
        else:
            stream = [AccessSpec(pid, "store", own_page, SIZE)]
            if adversary_reads_source:
                stream.append(AccessSpec(pid, "load", ADDR_A))
            stream.append(AccessSpec(pid, "load", own_page, final=True))
        streams.append(stream)
    return Scenario(
        name=f"fig8-repeated5-{n_adversaries}adv",
        method="repeated5",
        streams=streams,
        rights=rights,
        intents=intents,
    )


def pair_race_scenario(method: str,
                       keys: Optional[Tuple[int, int]] = None) -> Scenario:
    """Two legitimate processes initiate concurrently (the §2.5 race).

    Both processes are honest; the question is whether an unlucky
    preemption can mix their arguments.  For SHRIMP-2 (without its
    kernel hook) the exhaustive check *finds* interleavings where a
    started DMA pairs one process's source with the other's destination
    — the exact race Blumrich et al. patch the context-switch handler
    to prevent.  For the keyed and extended-shadow methods, no
    interleaving misbehaves: that is the paper's §3.1/§3.2 claim.

    Args:
        method: "shrimp2", "keyed", "extshadow", or "repeated5".
        keys: the two processes' keys (keyed method only; defaults
            provided).
    """
    src1, dst1 = 0 * PAGE_SIZE, 1 * PAGE_SIZE
    src2, dst2 = 2 * PAGE_SIZE, 3 * PAGE_SIZE
    setup: Tuple[SetupOp, ...] = ()
    if method == "keyed":
        key1, key2 = keys if keys is not None else (0xAAA111, 0xBBB222)
        stream1 = initiation_stream("keyed", 1, src1, dst1, SIZE,
                                    key=key1, ctx_id=0)
        stream2 = initiation_stream("keyed", 2, src2, dst2, SIZE,
                                    key=key2, ctx_id=1)
        scenario_keys = {0: key1, 1: key2}
    elif method == "extshadow":
        stream1 = initiation_stream("extshadow", 1, src1, dst1, SIZE,
                                    ctx_id=0)
        stream2 = initiation_stream("extshadow", 2, src2, dst2, SIZE,
                                    ctx_id=1)
        scenario_keys = {}
    elif method in _IOMMU_FAMILY:
        # Each process's pages identity-mapped into its own context, so
        # the stream's IOVAs resolve to the same physical addresses the
        # rights and intents are stated over.
        stream1 = initiation_stream(method, 1, src1, dst1, SIZE, ctx_id=0)
        stream2 = initiation_stream(method, 2, src2, dst2, SIZE, ctx_id=1)
        scenario_keys = {}
        setup = (
            SetupOp("iommu-map", (0, src1, src1, True)),
            SetupOp("iommu-map", (0, dst1, dst1, True)),
            SetupOp("iommu-map", (1, src2, src2, True)),
            SetupOp("iommu-map", (1, dst2, dst2, True)),
        )
    elif method in _CAPIO_FAMILY:
        # One two-page capability per process; the streams' psrc/pdst
        # become byte offsets against the capability's base.
        tok1_src, tok1_dst = _cap_tokens(1, 0, _NONCE_1)
        tok2_src, tok2_dst = _cap_tokens(2, 0, _NONCE_2)
        stream1 = initiation_stream(method, 1, 0, PAGE_SIZE, SIZE,
                                    ctx_id=0, src_token=tok1_src,
                                    dst_token=tok1_dst)
        stream2 = initiation_stream(method, 2, 0, PAGE_SIZE, SIZE,
                                    ctx_id=1, src_token=tok2_src,
                                    dst_token=tok2_dst)
        scenario_keys = {}
        setup = (
            SetupOp("cap-mint",
                    (1, 0, 1, src1, 2 * PAGE_SIZE, True, True, _NONCE_1)),
            SetupOp("cap-mint",
                    (2, 1, 2, src2, 2 * PAGE_SIZE, True, True, _NONCE_2)),
        )
    else:
        stream1 = initiation_stream(method, 1, src1, dst1, SIZE)
        stream2 = initiation_stream(method, 2, src2, dst2, SIZE)
        scenario_keys = {}
    return Scenario(
        name=f"pair-race-{method}",
        method=method,
        streams=[stream1, stream2],
        rights={
            1: Rights.over(write_pages=[src1, dst1]),
            2: Rights.over(write_pages=[src2, dst2]),
        },
        intents=[ProcessIntent(1, src1, dst1, SIZE),
                 ProcessIntent(2, src2, dst2, SIZE)],
        keys=scenario_keys,
        setup=setup,
    )


def stale_iotlb_scenario(method: str = "iommu_noshootdown") -> Scenario:
    """The IOTLB shoot-down attack (and the fix's safety proof).

    The kernel once granted the adversary (pid 2, context 1) a
    transient IOVA window onto the victim's private page B — mapped it,
    saw DMA traffic warm the IOTLB, then unmapped it.  The adversary
    kept the revoked IOVA and now initiates C -> stale-IOVA.

    Under ``iommu`` the unmap shoots the cached translation down, the
    start faults with nothing moved, and **no** interleaving violates
    any property.  Under ``iommu_noshootdown`` the stale IOTLB entry
    still resolves to B: the engine starts C -> B on behalf of a process
    that cannot write B — an authorized-start violation whose minimal
    core is just the adversary's own two accesses.
    """
    if method not in _IOMMU_FAMILY:
        raise VerificationError(
            f"stale-IOTLB scenario is IOMMU-specific, not {method!r}")
    victim = initiation_stream(method, 1, ADDR_A, ADDR_B, SIZE, ctx_id=0)
    adversary = initiation_stream(method, 2, ADDR_C, STALE_IOVA, SIZE,
                                  ctx_id=1)
    return Scenario(
        name=f"stale-iotlb-{method}",
        method=method,
        streams=[victim, adversary],
        rights={
            1: Rights.over(write_pages=[ADDR_A, ADDR_B]),
            2: Rights.over(write_pages=[ADDR_C, ADDR_FOO]),
        },
        intents=[ProcessIntent(1, ADDR_A, ADDR_B, SIZE)],
        setup=(
            SetupOp("iommu-map", (0, ADDR_A, ADDR_A, True)),
            SetupOp("iommu-map", (0, ADDR_B, ADDR_B, True)),
            SetupOp("iommu-map", (1, ADDR_C, ADDR_C, True)),
            # The transient grant: mapped, used (IOTLB warmed), revoked.
            SetupOp("iommu-map", (1, STALE_IOVA, ADDR_B, True)),
            SetupOp("iommu-warm", (1, STALE_IOVA)),
            SetupOp("iommu-unmap", (1, STALE_IOVA)),
        ),
    )


def revoked_capability_scenario(method: str = "capio_noepoch") -> Scenario:
    """The epoch-revocation attack (and the fix's safety proof).

    The kernel once minted the adversary (pid 2, context 1) capability
    3 over the victim's private page B, then revoked it by bumping the
    epoch.  The adversary kept a token from the old epoch and replays
    it as the destination of a C -> B initiation.

    Under ``capio`` the stale epoch fails validation — at store time
    and again at fire time — so the token is dropped and the context
    reports DMA_FAILURE; no interleaving violates any property.  Under
    ``capio_noepoch`` the revoked capability keeps working: the engine
    starts C -> B for a process that cannot write B — an
    authorized-start violation whose minimal core is the adversary's
    own four accesses.
    """
    if method not in _CAPIO_FAMILY:
        raise VerificationError(
            f"revoked-capability scenario is capio-specific, not {method!r}")
    tok1_src, tok1_dst = _cap_tokens(1, 0, _NONCE_1)
    tok2_src, _ = _cap_tokens(2, 0, _NONCE_2)
    _, tok3_dst = _cap_tokens(3, 0, _NONCE_3)
    victim = initiation_stream(method, 1, 0, PAGE_SIZE, SIZE, ctx_id=0,
                               src_token=tok1_src, dst_token=tok1_dst)
    adversary = initiation_stream(method, 2, 0, 0, SIZE, ctx_id=1,
                                  src_token=tok2_src, dst_token=tok3_dst)
    return Scenario(
        name=f"revoked-capability-{method}",
        method=method,
        streams=[victim, adversary],
        rights={
            1: Rights.over(write_pages=[ADDR_A, ADDR_B]),
            2: Rights.over(write_pages=[ADDR_C, ADDR_FOO]),
        },
        intents=[ProcessIntent(1, ADDR_A, ADDR_B, SIZE)],
        setup=(
            SetupOp("cap-mint",
                    (1, 0, 1, ADDR_A, 2 * PAGE_SIZE, True, True, _NONCE_1)),
            SetupOp("cap-mint",
                    (2, 1, 2, ADDR_C, PAGE_SIZE, True, True, _NONCE_2)),
            # The revoked grant: minted over B, epoch bumped afterwards.
            SetupOp("cap-mint",
                    (3, 1, 2, ADDR_B, PAGE_SIZE, True, True, _NONCE_3)),
            SetupOp("cap-revoke", (3,)),
        ),
    )


def key_guessing_scenario(true_key: int, guesses: List[int]) -> Scenario:
    """§3.1: an adversary sprays guessed keys at the victim's context.

    The victim completes a keyed initiation; the adversary interleaves
    shadow stores carrying guessed keys, trying to redirect the victim's
    context at its own page.  Unless a guess equals the true 60-bit key,
    no interleaving can violate any property.
    """
    victim = initiation_stream("keyed", 1, ADDR_A, ADDR_B, SIZE,
                               key=true_key, ctx_id=0)
    adversary = [
        AccessSpec(2, "store", ADDR_C,
                   _keyed_word(guess, ctx_id=0)) for guess in guesses
    ]
    return Scenario(
        name="key-guessing",
        method="keyed",
        streams=[victim, adversary],
        rights={
            1: Rights.over(write_pages=[ADDR_A, ADDR_B]),
            2: Rights.over(write_pages=[ADDR_C]),
        },
        intents=[ProcessIntent(1, ADDR_A, ADDR_B, SIZE)],
        keys={0: true_key},
    )


def _keyed_word(key: int, ctx_id: int) -> int:
    from ..hw.dma.protocols.keyed import ARG_SOURCE, pack_key_word

    return pack_key_word(key, ctx_id, ARG_SOURCE)


def builtin_scenarios() -> List[Scenario]:
    """Every built-in scenario, for differential tests and benchmarks.

    Covers both attack-finding scenarios (fig5, fig6, the shrimp2/flash
    races) and safety scenarios (the fig8 family, the keyed and
    extended-shadow races, key guessing) so a checker implementation is
    exercised on violating and violation-free trees alike.
    """
    return [
        fig5_scenario()[0],
        fig6_scenario()[0],
        fig8_scenario(1),
        fig8_scenario(2),
        fig8_scenario(1, adversary_reads_source=False),
        fig8_scenario(3, accesses_per_adversary=1),
        fig8_scenario(4, accesses_per_adversary=1),
        pair_race_scenario("shrimp2"),
        pair_race_scenario("flash"),
        pair_race_scenario("keyed"),
        pair_race_scenario("extshadow"),
        pair_race_scenario("repeated5"),
        pair_race_scenario("shrimp1"),
        pair_race_scenario("iommu"),
        pair_race_scenario("capio"),
        stale_iotlb_scenario("iommu"),
        stale_iotlb_scenario("iommu_noshootdown"),
        revoked_capability_scenario("capio"),
        revoked_capability_scenario("capio_noepoch"),
        key_guessing_scenario(0xDEADBEE, [0x1, 0x2, 0xDEADBEF]),
    ]
