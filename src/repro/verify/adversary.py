"""The paper's attack scenarios (Figs. 5, 6, 8) and race scenarios.

Each builder returns a :class:`~repro.verify.model_check.Scenario` plus,
where the paper gives one, the *exact* interleaving from the figure so
tests can reproduce the printed attack verbatim before searching
exhaustively.

Address conventions: one page per named buffer; the victim is pid 1.
Adversary streams only contain accesses the MMU would let the adversary
issue — a shadow store needs write permission on the page, a shadow load
needs read permission (that is the whole protection story of §2.3).
This is *enforced* at construction time, not merely documented:
:class:`~repro.verify.model_check.Scenario` runs every stream through
:mod:`repro.verify.legality` and raises
:class:`~repro.errors.VerificationError` on an illegal access, so these
hand-written scenarios and the synthesized streams of
:mod:`repro.verify.synth` share one validator.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import VerificationError
from ..hw.pagetable import PAGE_SIZE
from .interleave import AccessSpec, initiation_stream
from .model_check import Scenario
from .properties import ProcessIntent, Rights

# One page per named buffer, inside the harness's 64 KiB RAM.
ADDR_A = 0 * PAGE_SIZE   # victim's source
ADDR_B = 1 * PAGE_SIZE   # victim's (private) destination
ADDR_C = 2 * PAGE_SIZE   # adversary's own data
ADDR_FOO = 3 * PAGE_SIZE  # adversary's scratch page

SIZE = 256  # transfer size used throughout the scenarios


def fig5_scenario() -> Tuple[Scenario, List[AccessSpec]]:
    """Fig. 5: the 3-instruction variant is exploitable.

    The malicious process (pid 2) owns C and foo; the victim (pid 1)
    wants A -> B.  In the figure's interleaving the engine ends up
    starting C -> B: the adversary's data lands in the victim's private
    page — an authorized-start violation (pid 2 cannot write B).

    Returns:
        (scenario, the exact interleaving from the figure).
    """
    victim = initiation_stream("repeated3", 1, ADDR_A, ADDR_B, SIZE)
    malicious = [
        AccessSpec(2, "store", ADDR_FOO, SIZE),   # STORE foo TO shadow(foo)
        AccessSpec(2, "load", ADDR_FOO),          # LOAD FROM shadow(foo)
        AccessSpec(2, "load", ADDR_C),            # LOAD FROM shadow(C)
        AccessSpec(2, "load", ADDR_C, final=True),  # LOAD FROM shadow(C)
    ]
    scenario = Scenario(
        name="fig5-repeated3",
        method="repeated3",
        streams=[victim, malicious],
        rights={
            1: Rights.over(write_pages=[ADDR_A, ADDR_B]),
            2: Rights.over(write_pages=[ADDR_C, ADDR_FOO]),
        },
        intents=[ProcessIntent(1, ADDR_A, ADDR_B, SIZE)],
    )
    # The figure's order: V:1  M:2 M:3 M:4  V:5  M:6  V:7
    figure_order = [victim[0], malicious[0], malicious[1], malicious[2],
                    victim[1], malicious[3], victim[2]]
    return scenario, figure_order


def fig6_scenario() -> Tuple[Scenario, List[AccessSpec]]:
    """Fig. 6: the 4-instruction variant misinforms the victim.

    The adversary (pid 2) has *read-only* access to A ("data readable by
    any process").  It slips one LOAD FROM shadow(A) between the victim's
    3rd and 4th accesses: the engine starts the victim's A -> B transfer
    but reports the success to the adversary and DMA_FAILURE to the
    victim — a truthful-status violation (and an authorized-start one,
    since the start was triggered by a process that cannot write B).
    """
    victim = initiation_stream("repeated4", 1, ADDR_A, ADDR_B, SIZE)
    malicious = [AccessSpec(2, "load", ADDR_A, final=True)]
    scenario = Scenario(
        name="fig6-repeated4",
        method="repeated4",
        streams=[victim, malicious],
        rights={
            1: Rights.over(write_pages=[ADDR_A, ADDR_B]),
            2: Rights.over(read_pages=[ADDR_A],
                           write_pages=[ADDR_C]),
        },
        intents=[ProcessIntent(1, ADDR_A, ADDR_B, SIZE)],
    )
    figure_order = [victim[0], victim[1], victim[2], malicious[0],
                    victim[3]]
    return scenario, figure_order


def fig8_scenario(n_adversaries: int = 2,
                  adversary_reads_source: bool = True,
                  accesses_per_adversary: int = 3) -> Scenario:
    """Fig. 8 / §3.3.1: the 5-instruction variant under interference.

    The victim wants SOURCE -> DEST where DEST is private; adversaries
    may (optionally) read the source and own their own pages.  The
    paper's claim, which :func:`~repro.verify.model_check.check_scenario`
    verifies exhaustively: **no interleaving** yields an unauthorized
    start, a mixed-issuer sequence, or a lying status.

    Args:
        n_adversaries: 1-4 interfering processes.
        adversary_reads_source: grant adversaries read access to the
            victim's source page (the paper's "possibly public" data).
        accesses_per_adversary: 3 for full interfering initiations, or
            1 for Fig. 8's literal worst case — each adversary supplies
            exactly one potential pattern slot (Fig. 8(a): "all five
            instructions are issued by different processes").  One-slot
            adversaries keep the interleaving count exact and small
            even at four adversaries.
    """
    if not 1 <= n_adversaries <= 4:
        raise VerificationError("n_adversaries must be 1..4")
    if accesses_per_adversary not in (1, 3):
        raise VerificationError("accesses_per_adversary must be 1 or 3")
    victim = initiation_stream("repeated5", 1, ADDR_A, ADDR_B, SIZE)
    streams = [victim]
    rights = {1: Rights.over(write_pages=[ADDR_A, ADDR_B])}
    intents = [ProcessIntent(1, ADDR_A, ADDR_B, SIZE)]
    for index in range(n_adversaries):
        pid = 2 + index
        own_page = (4 + index) * PAGE_SIZE
        read_pages = [ADDR_A] if adversary_reads_source else []
        rights[pid] = Rights.over(read_pages=read_pages,
                                  write_pages=[own_page])
        if accesses_per_adversary == 1:
            # One pattern-slot each: stores from even adversaries, loads
            # of the shared source from odd ones (if allowed).
            if index % 2 == 0 or not adversary_reads_source:
                stream: List[AccessSpec] = [
                    AccessSpec(pid, "store", own_page, SIZE, final=False)]
            else:
                stream = [AccessSpec(pid, "load", ADDR_A, final=True)]
        else:
            stream = [AccessSpec(pid, "store", own_page, SIZE)]
            if adversary_reads_source:
                stream.append(AccessSpec(pid, "load", ADDR_A))
            stream.append(AccessSpec(pid, "load", own_page, final=True))
        streams.append(stream)
    return Scenario(
        name=f"fig8-repeated5-{n_adversaries}adv",
        method="repeated5",
        streams=streams,
        rights=rights,
        intents=intents,
    )


def pair_race_scenario(method: str,
                       keys: Optional[Tuple[int, int]] = None) -> Scenario:
    """Two legitimate processes initiate concurrently (the §2.5 race).

    Both processes are honest; the question is whether an unlucky
    preemption can mix their arguments.  For SHRIMP-2 (without its
    kernel hook) the exhaustive check *finds* interleavings where a
    started DMA pairs one process's source with the other's destination
    — the exact race Blumrich et al. patch the context-switch handler
    to prevent.  For the keyed and extended-shadow methods, no
    interleaving misbehaves: that is the paper's §3.1/§3.2 claim.

    Args:
        method: "shrimp2", "keyed", "extshadow", or "repeated5".
        keys: the two processes' keys (keyed method only; defaults
            provided).
    """
    src1, dst1 = 0 * PAGE_SIZE, 1 * PAGE_SIZE
    src2, dst2 = 2 * PAGE_SIZE, 3 * PAGE_SIZE
    if method == "keyed":
        key1, key2 = keys if keys is not None else (0xAAA111, 0xBBB222)
        stream1 = initiation_stream("keyed", 1, src1, dst1, SIZE,
                                    key=key1, ctx_id=0)
        stream2 = initiation_stream("keyed", 2, src2, dst2, SIZE,
                                    key=key2, ctx_id=1)
        scenario_keys = {0: key1, 1: key2}
    elif method == "extshadow":
        stream1 = initiation_stream("extshadow", 1, src1, dst1, SIZE,
                                    ctx_id=0)
        stream2 = initiation_stream("extshadow", 2, src2, dst2, SIZE,
                                    ctx_id=1)
        scenario_keys = {}
    else:
        stream1 = initiation_stream(method, 1, src1, dst1, SIZE)
        stream2 = initiation_stream(method, 2, src2, dst2, SIZE)
        scenario_keys = {}
    return Scenario(
        name=f"pair-race-{method}",
        method=method,
        streams=[stream1, stream2],
        rights={
            1: Rights.over(write_pages=[src1, dst1]),
            2: Rights.over(write_pages=[src2, dst2]),
        },
        intents=[ProcessIntent(1, src1, dst1, SIZE),
                 ProcessIntent(2, src2, dst2, SIZE)],
        keys=scenario_keys,
    )


def key_guessing_scenario(true_key: int, guesses: List[int]) -> Scenario:
    """§3.1: an adversary sprays guessed keys at the victim's context.

    The victim completes a keyed initiation; the adversary interleaves
    shadow stores carrying guessed keys, trying to redirect the victim's
    context at its own page.  Unless a guess equals the true 60-bit key,
    no interleaving can violate any property.
    """
    victim = initiation_stream("keyed", 1, ADDR_A, ADDR_B, SIZE,
                               key=true_key, ctx_id=0)
    adversary = [
        AccessSpec(2, "store", ADDR_C,
                   _keyed_word(guess, ctx_id=0)) for guess in guesses
    ]
    return Scenario(
        name="key-guessing",
        method="keyed",
        streams=[victim, adversary],
        rights={
            1: Rights.over(write_pages=[ADDR_A, ADDR_B]),
            2: Rights.over(write_pages=[ADDR_C]),
        },
        intents=[ProcessIntent(1, ADDR_A, ADDR_B, SIZE)],
        keys={0: true_key},
    )


def _keyed_word(key: int, ctx_id: int) -> int:
    from ..hw.dma.protocols.keyed import ARG_SOURCE, pack_key_word

    return pack_key_word(key, ctx_id, ARG_SOURCE)


def builtin_scenarios() -> List[Scenario]:
    """Every built-in scenario, for differential tests and benchmarks.

    Covers both attack-finding scenarios (fig5, fig6, the shrimp2/flash
    races) and safety scenarios (the fig8 family, the keyed and
    extended-shadow races, key guessing) so a checker implementation is
    exercised on violating and violation-free trees alike.
    """
    return [
        fig5_scenario()[0],
        fig6_scenario()[0],
        fig8_scenario(1),
        fig8_scenario(2),
        fig8_scenario(1, adversary_reads_source=False),
        fig8_scenario(3, accesses_per_adversary=1),
        fig8_scenario(4, accesses_per_adversary=1),
        pair_race_scenario("shrimp2"),
        pair_race_scenario("flash"),
        pair_race_scenario("keyed"),
        pair_race_scenario("extshadow"),
        pair_race_scenario("repeated5"),
        pair_race_scenario("shrimp1"),
        key_guessing_scenario(0xDEADBEE, [0x1, 0x2, 0xDEADBEF]),
    ]
