"""Bounded exhaustive checking of initiation protocols.

A :class:`Scenario` bundles the access streams of every participating
process, their page rights, their declared intents, and any keys the OS
installed.  :func:`check_scenario` replays **every** interleaving of the
streams through a fresh engine and evaluates the three safety properties,
returning exact counts — this is the mechanical version of the paper's
§3.3.1 hand proof, and it both *finds* the Fig. 5 / Fig. 6 attacks and
*fails to find* any attack on the 5-instruction variant, the key-based
method, and extended shadow addressing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..hw.dma.recognizer import SetupOp
from ..hw.dma.status import STATUS_FAILURE, STATUS_PENDING
from .interleave import (
    AccessSpec,
    ProtocolHarness,
    interleaving_count,
    iter_interleavings_shared,
)
from .legality import require_legal_streams
from .properties import (
    ProcessIntent,
    Rights,
    Violation,
    check_authorized_start,
    check_single_issuer,
    check_truthful_status,
)


@dataclass
class Scenario:
    """One verification scenario.

    Attributes:
        name: display name (e.g. "fig5").
        method: initiation method under test.
        streams: per-process access streams (order within each preserved).
        rights: pid -> Rights (the MMU's view).
        intents: declared intended DMAs (usually just the victim's).
        keys: ctx_id -> key installs for the keyed method.
        setup: untimed kernel-side protocol configuration (IOMMU maps,
            capability mints/revokes, ...) applied before the streams
            run and re-applied on every harness reset, in order.
        n_contexts: engine register contexts.
        check_truthfulness: evaluate the truthful-status property (it
            only makes sense when the victim's stream runs to completion
            in every interleaving, which holds for straight-line streams;
            fault-injected streams disable it — see repro.verify.faulted).
        page_bounded: run the engine with the page-bounding hardening
            (rejects user-level transfers crossing a page boundary).

    Every stream must be MMU-legal under ``rights`` (stores/exchanges
    only to writable pages, loads only from readable pages — the §2.3
    protection premise); construction raises
    :class:`~repro.errors.VerificationError` otherwise, so hand-written
    and synthesized scenarios share one validator
    (:mod:`repro.verify.legality`).
    """

    name: str
    method: str
    streams: List[List[AccessSpec]]
    rights: Dict[int, Rights]
    intents: List[ProcessIntent] = field(default_factory=list)
    keys: Dict[int, int] = field(default_factory=dict)
    setup: Tuple[SetupOp, ...] = ()
    n_contexts: int = 4
    check_truthfulness: bool = True
    page_bounded: bool = False

    def __post_init__(self) -> None:
        require_legal_streams(self.streams, self.rights, name=self.name,
                              method=self.method)


@dataclass
class CheckResult:
    """Outcome of exhaustively checking a scenario.

    Attributes:
        scenario: the scenario name.
        total_interleavings: how many orders were replayed.
        violations_by_property: property name -> number of interleavings
            exhibiting at least one violation of it.
        violating_interleavings: number of orders with any violation.
        examples: up to ``max_examples`` (interleaving, violations) pairs.
    """

    scenario: str
    total_interleavings: int = 0
    violations_by_property: Dict[str, int] = field(default_factory=dict)
    violating_interleavings: int = 0
    examples: List[Tuple[Tuple[AccessSpec, ...], List[Violation]]] = (
        field(default_factory=list))

    @property
    def safe(self) -> bool:
        """No interleaving violated any property."""
        return self.violating_interleavings == 0

    @property
    def attack_found(self) -> bool:
        """At least one interleaving broke a property."""
        return not self.safe

    def summary(self) -> str:
        """One-line human-readable result."""
        if self.safe:
            return (f"{self.scenario}: SAFE over "
                    f"{self.total_interleavings} interleavings")
        props = ", ".join(f"{k}={v}" for k, v in
                          sorted(self.violations_by_property.items()))
        return (f"{self.scenario}: {self.violating_interleavings}/"
                f"{self.total_interleavings} interleavings violate "
                f"({props})")


def _protocol_factory(method: str):
    from ..core.methods import make_protocol

    return lambda: make_protocol(method)


def replay_interleaving(scenario: Scenario,
                        interleaving: Sequence[AccessSpec],
                        harness: Optional[ProtocolHarness] = None,
                        ) -> List[Violation]:
    """Replay one specific interleaving and return its violations."""
    if harness is None:
        harness = make_harness(scenario)
    evidence = harness.replay(interleaving)
    violations = check_authorized_start(evidence, scenario.rights)
    violations += check_single_issuer(evidence, scenario.rights)
    if scenario.check_truthfulness:
        violations += check_truthful_status(evidence, scenario.intents,
                                            REJECTION_WORDS)
    return violations


def make_harness(scenario: Scenario) -> ProtocolHarness:
    """Build the harness for a scenario (keys pre-installed)."""
    harness = ProtocolHarness(_protocol_factory(scenario.method),
                              n_contexts=scenario.n_contexts,
                              page_bounded=scenario.page_bounded)
    for ctx_id, key in scenario.keys.items():
        harness.install_key(ctx_id, key)
    for op in scenario.setup:
        harness.install_setup(op)
    return harness


#: Status words meaning "no DMA started on your behalf".
REJECTION_WORDS = frozenset({STATUS_FAILURE, STATUS_PENDING})


def check_scenario(scenario: Scenario, max_examples: int = 5,
                   max_interleavings: Optional[int] = None,
                   progress: Optional[Callable[[int], None]] = None,
                   progress_every: int = 1000) -> CheckResult:
    """Exhaustively check every interleaving of the scenario's streams.

    This is the naive oracle: every order replays from a cold engine.
    :func:`repro.verify.incremental.check_scenario_incremental` produces
    identical results while delivering each access once per tree edge.

    Args:
        max_examples: retain at most this many violating examples (the
            order tuple is only materialized for retained examples — the
            enumeration itself reuses one shared buffer).
        max_interleavings: optional safety cap; exceeding it raises so a
            scenario never silently explodes (the built-in scenarios are
            all well under 10^5 orders).
        progress: optional liveness callback, invoked with the number of
            interleavings checked so far every *progress_every* orders
            (long Fig. 8 runs take minutes on the naive path).
        progress_every: callback period in interleavings.

    Raises:
        VerificationError: if the interleaving count exceeds the cap.
    """
    expected = interleaving_count([len(s) for s in scenario.streams])
    if max_interleavings is not None and expected > max_interleavings:
        from ..errors import VerificationError

        raise VerificationError(
            f"scenario {scenario.name}: {expected} interleavings exceeds "
            f"cap {max_interleavings}")
    harness = make_harness(scenario)
    result = CheckResult(scenario=scenario.name)
    for interleaving in iter_interleavings_shared(scenario.streams):
        result.total_interleavings += 1
        violations = replay_interleaving(scenario, interleaving, harness)
        if violations:
            result.violating_interleavings += 1
            for prop in {v.prop for v in violations}:
                result.violations_by_property[prop] = (
                    result.violations_by_property.get(prop, 0) + 1)
            if len(result.examples) < max_examples:
                result.examples.append((tuple(interleaving), violations))
        if progress is not None and (
                result.total_interleavings % progress_every == 0):
            progress(result.total_interleavings)
    return result
