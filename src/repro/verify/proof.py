"""A mechanized rendering of the paper's §3.3.1 correctness argument.

The paper's proof for the 5-instruction repeated-passing method proceeds
by case analysis over who issued the five pattern slots (Fig. 8's three
interleavings).  This module re-states that argument as three checkable
lemmas and verifies each one over *every* interleaving of a scenario:

* **Lemma 1 (destination capability).**  In any *started* DMA, the
  accesses filling the destination slots (positions 1, 3, 5) were issued
  by processes holding *write* permission on the destination page —
  because a shadow store/load needs a mapping, and the OS only maps
  shadow pages mirroring data permissions.
* **Lemma 2 (source capability).**  The accesses filling the source
  slots (positions 2, 4) were issued by processes holding *read*
  permission on the source page.
* **Lemma 3 (single issuer).**  All five contributing accesses came from
  one process — the paper's conclusion: "in any successfully started
  DMA, all instructions come from the same process".

Lemmas 1-2 are the paper's "different applications do not write-share
physical memory" premise turned into a checkable consequence; Lemma 3 is
the theorem.  :func:`prove_fig8` verifies all three and reports exact
counts, giving the hand argument a mechanical counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import VerificationError
from .interleave import enumerate_interleavings
from .model_check import Scenario, make_harness
from .properties import Rights


@dataclass
class LemmaResult:
    """Outcome of checking one lemma over all interleavings.

    Attributes:
        name: lemma label.
        statement: the lemma, in prose.
        checked: how many started DMAs were examined.
        counterexamples: violating (interleaving index, detail) pairs.
    """

    name: str
    statement: str
    checked: int = 0
    counterexamples: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """No counterexample was found."""
        return not self.counterexamples


@dataclass
class ProofReport:
    """The mechanized §3.3.1 proof over one scenario.

    Attributes:
        scenario: scenario name.
        interleavings: total orders replayed.
        started: interleavings in which a DMA started.
        lemmas: the three lemma results.
    """

    scenario: str
    interleavings: int
    started: int
    lemmas: Dict[str, LemmaResult]

    @property
    def theorem_holds(self) -> bool:
        """All lemmas hold — the paper's conclusion is verified."""
        return all(lemma.holds for lemma in self.lemmas.values())

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"§3.3.1 mechanized proof over {self.scenario}:",
                 f"  {self.interleavings} interleavings replayed, "
                 f"{self.started} started a DMA"]
        for lemma in self.lemmas.values():
            verdict = "HOLDS" if lemma.holds else (
                f"FAILS ({len(lemma.counterexamples)} counterexamples)")
            lines.append(f"  {lemma.name}: {verdict} "
                         f"[{lemma.checked} starts checked]")
        lines.append("  theorem (single-issuer initiation): "
                     + ("VERIFIED" if self.theorem_holds else "REFUTED"))
        return "\n".join(lines)


def prove_fig8(scenario: Scenario) -> ProofReport:
    """Check the three §3.3.1 lemmas over every interleaving.

    The scenario must use the ``repeated5`` method (the lemmas talk
    about its five pattern slots).

    Raises:
        VerificationError: for a non-repeated5 scenario.
    """
    if scenario.method != "repeated5":
        raise VerificationError(
            f"the §3.3.1 lemmas apply to repeated5, not "
            f"{scenario.method!r}")
    harness = make_harness(scenario)
    lemmas = {
        "lemma1": LemmaResult(
            "lemma1",
            "destination-slot issuers can write the destination"),
        "lemma2": LemmaResult(
            "lemma2", "source-slot issuers can read the source"),
        "lemma3": LemmaResult(
            "lemma3", "all five slots share one issuer"),
    }
    interleavings = 0
    started_total = 0
    for index, order in enumerate(
            enumerate_interleavings(scenario.streams)):
        interleavings += 1
        evidence = harness.replay(order)
        # Under repeated5 every initiation record corresponds 1:1, in
        # order, to a completed recognizer sequence — so records and
        # contributor tuples zip exactly.
        pairs = [(record, contributors)
                 for record, contributors in zip(evidence.records,
                                                 evidence.contributors)
                 if record.ok]
        if not pairs:
            continue
        started_total += 1
        for record, contributors in pairs:
            _check_lemmas(index, record, contributors, scenario.rights,
                          lemmas)
    return ProofReport(scenario=scenario.name,
                       interleavings=interleavings,
                       started=started_total, lemmas=lemmas)


def _check_lemmas(index: int, record, contributors,
                  rights: Dict[int, Rights],
                  lemmas: Dict[str, LemmaResult]) -> None:
    """Evaluate all three lemmas for one started DMA."""
    # Pattern S L S L L: slots 0,2,4 touch the destination, 1,3 the
    # source (0-based positions in `contributors`).
    dst_slots = (0, 2, 4)
    src_slots = (1, 3)

    lemma1 = lemmas["lemma1"]
    lemma1.checked += 1
    for slot in dst_slots:
        pid = contributors[slot]
        holder = rights.get(pid)
        if holder is None or not holder.can_write(record.pdst,
                                                  record.size):
            lemma1.counterexamples.append(
                (index, f"slot {slot + 1} issued by pid {pid} without "
                        f"write access to {record.pdst:#x}"))

    lemma2 = lemmas["lemma2"]
    lemma2.checked += 1
    for slot in src_slots:
        pid = contributors[slot]
        holder = rights.get(pid)
        if holder is None or not holder.can_read(record.psrc,
                                                 record.size):
            lemma2.counterexamples.append(
                (index, f"slot {slot + 1} issued by pid {pid} without "
                        f"read access to {record.psrc:#x}"))

    lemma3 = lemmas["lemma3"]
    lemma3.checked += 1
    if len(set(contributors)) != 1:
        lemma3.counterexamples.append(
            (index, f"contributors {contributors} span multiple "
                    f"processes"))
