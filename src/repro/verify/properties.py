"""Safety properties for user-level DMA initiation.

A verification *scenario* declares, for each participating process, its
:class:`Rights` (which physical ranges it may read / write — the MMU's
view) and optionally its :class:`ProcessIntent` (the one DMA it is trying
to start).  After a replay, the properties below are evaluated against
the engine's initiation records and the per-access status results:

* **authorized-start** — every started DMA must be one that its issuing
  process could have performed legitimately: readable source, writable
  destination.  (Fig. 5's attack violates this: the malicious process
  starts a transfer *into* a page it cannot write.)
* **single-issuer** — for sequence-recognizer protocols, a started DMA
  assembled from several processes' accesses must not *borrow
  authority*: the recorded issuer alone must hold the rights the
  transfer needs (§3.3.1's claim for the 5-instruction variant).
  Mixed completions whose issuer was already fully authorized are
  benign — they cost the other party a recognizer reset (liveness),
  and counterexample synthesis finds them even for the safe 5-access
  variant.
* **truthful-status** — a process that is told DMA_FAILURE must not have
  had its DMA started by someone else's access, and a process told
  success must actually have a matching started DMA.  (Fig. 6's attack
  violates the first half: the adversary steals the start and the victim
  retries, duplicating the transfer.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Tuple

from ..hw.dma.engine import InitiationRecord
from ..hw.pagetable import PAGE_SIZE, page_base


@dataclass(frozen=True)
class Rights:
    """What a process's page tables let it do (physical, page granular).

    Attributes:
        readable: page base addresses it may read.
        writable: page base addresses it may write.
    """

    readable: FrozenSet[int] = frozenset()
    writable: FrozenSet[int] = frozenset()

    @staticmethod
    def over(read_pages: Iterable[int] = (),
             write_pages: Iterable[int] = ()) -> "Rights":
        """Build rights from page base iterables (write implies read)."""
        writable = frozenset(page_base(p) for p in write_pages)
        readable = frozenset(page_base(p) for p in read_pages) | writable
        return Rights(readable=readable, writable=writable)

    def can_read(self, paddr: int, size: int = 1) -> bool:
        """Whether every page of [paddr, paddr+size) is readable."""
        return self._covers(self.readable, paddr, size)

    def can_write(self, paddr: int, size: int = 1) -> bool:
        """Whether every page of [paddr, paddr+size) is writable."""
        return self._covers(self.writable, paddr, size)

    @staticmethod
    def _covers(pages: FrozenSet[int], paddr: int, size: int) -> bool:
        if size <= 0:
            return False
        first = page_base(paddr)
        last = page_base(paddr + size - 1)
        current = first
        while current <= last:
            if current not in pages:
                return False
            current += PAGE_SIZE
        return True


@dataclass(frozen=True)
class ProcessIntent:
    """The one DMA a process is trying to start in a scenario."""

    pid: int
    psrc: int
    pdst: int
    size: int

    def matches(self, record: InitiationRecord) -> bool:
        """Whether *record* is exactly this intended transfer."""
        return (record.psrc == self.psrc and record.pdst == self.pdst
                and record.size == self.size)


@dataclass(frozen=True)
class Violation:
    """One property violation found in one replay.

    Attributes:
        prop: property name ("authorized-start", "single-issuer",
            "truthful-status").
        pid: the process wronged or at fault (property-dependent).
        detail: human-readable description.
    """

    prop: str
    pid: Optional[int]
    detail: str


@dataclass
class ReplayEvidence:
    """Everything a replay produced that the properties inspect.

    Attributes:
        records: the engine's initiation records, in order.
        final_status: per-pid status word returned by that process's
            *final* load (None if its stream had no loads).
        contributors: per started-record index, the pids of the accesses
            that advanced the recognizer to completion (only available
            for sequence-recognizer protocols; empty otherwise).
        authority: per started-record index, the pid whose *kernel-granted
            credential* authorized the transfer — e.g. the minting owner
            of the capio capabilities it used — or None when no single
            credential holder exists.  Parallel to ``contributors``;
            empty for protocols without kernel-granted credentials.
    """

    records: List[InitiationRecord] = field(default_factory=list)
    final_status: dict = field(default_factory=dict)
    contributors: List[Tuple[int, ...]] = field(default_factory=list)
    authority: List[Optional[int]] = field(default_factory=list)


def check_authorized_start(evidence: ReplayEvidence,
                           rights: dict) -> List[Violation]:
    """Every started DMA's issuer must hold the needed rights."""
    violations: List[Violation] = []
    for record in evidence.records:
        if not record.ok:
            continue
        holder: Optional[Rights] = rights.get(record.issuer)
        if holder is None:
            violations.append(Violation(
                "authorized-start", record.issuer,
                f"start by unknown pid {record.issuer}"))
            continue
        if not holder.can_read(record.psrc, record.size):
            violations.append(Violation(
                "authorized-start", record.issuer,
                f"pid {record.issuer} started DMA from unreadable "
                f"{record.psrc:#x} (+{record.size})"))
        if not holder.can_write(record.pdst, record.size):
            violations.append(Violation(
                "authorized-start", record.issuer,
                f"pid {record.issuer} started DMA into unwritable "
                f"{record.pdst:#x} (+{record.size})"))
    return violations


def check_single_issuer(evidence: ReplayEvidence,
                        rights: Optional[dict] = None) -> List[Violation]:
    """Mixed-issuer pattern completions must not borrow authority.

    The §3.3.1 hazard is a DMA assembled from several processes'
    accesses whose recorded issuer could not have started the transfer
    alone (Fig. 5 / Fig. 6: the adversary borrows the victim's stores).
    A mixed completion whose issuer already holds the needed rights is
    excused: the engine started a transfer that issuer could have made
    legitimately, and the other party merely lost recognizer progress
    (a liveness nuisance, reported by truthful-status if it misleads).
    Guided counterexample search finds such benign compositions even
    for the safe 5-access variant, so the strict reading is *false*
    for arbitrary MMU-legal access soups.

    Credential-bearing completions (``evidence.authority``) get a
    second excuse: when every capability a transfer used was minted for
    one process and *that* process holds the needed rights, the
    transfer carries that process's authority no matter which pids'
    accesses delivered the tokens — the kernel-granted credential, not
    the delivering access, is what authorizes a capio transfer.

    Args:
        rights: pid -> :class:`Rights`.  When omitted — or when no
            successful initiation record matches a completion — mixed
            contributors are flagged unconditionally (the strict
            reading, kept for bare-evidence callers).
    """
    violations: List[Violation] = []
    for index, pids in enumerate(evidence.contributors):
        if len(set(pids)) <= 1:
            continue
        record = (evidence.records[index]
                  if index < len(evidence.records) else None)
        if rights is not None and record is not None and record.ok:
            if _authorized(record.issuer, rights, record):
                continue  # benign composition: the issuer needed no help
            if index < len(evidence.authority):
                granter = evidence.authority[index]
                if granter is not None and _authorized(
                        granter, rights, record):
                    continue  # credential holder's own authority
        violations.append(Violation(
            "single-issuer", None,
            f"started DMA #{index} assembled from accesses by "
            f"pids {sorted(set(pids))}"))
    return violations


def _authorized(pid: Optional[int], rights: dict,
                record: InitiationRecord) -> bool:
    """Whether *pid*'s rights cover the transfer in *record*."""
    holder: Optional[Rights] = rights.get(pid)
    return (holder is not None
            and holder.can_read(record.psrc, record.size)
            and holder.can_write(record.pdst, record.size))


def check_truthful_status(evidence: ReplayEvidence,
                          intents: Iterable[ProcessIntent],
                          rejection_words: FrozenSet[int],
                          ) -> List[Violation]:
    """Reported success/failure must match whether the intent started.

    Args:
        rejection_words: status words that mean "no DMA started on your
            behalf" (FAILURE, and PENDING for the repeated-passing
            recognizer).
    """
    violations: List[Violation] = []
    for intent in intents:
        started = any(r.ok and intent.matches(r) for r in evidence.records)
        status = evidence.final_status.get(intent.pid)
        if status is None:
            continue
        reported_ok = status not in rejection_words
        if started and not reported_ok:
            violations.append(Violation(
                "truthful-status", intent.pid,
                f"pid {intent.pid} was told FAILURE but its DMA "
                f"({intent.psrc:#x}->{intent.pdst:#x}) started"))
        if reported_ok and not started:
            violations.append(Violation(
                "truthful-status", intent.pid,
                f"pid {intent.pid} was told success but its DMA never "
                f"started"))
    return violations
