"""Command-line interface: regenerate any of the paper's experiments.

::

    python -m repro table1            # Table 1, paper vs measured
    python -m repro methods           # every initiation method (14)
    python -m repro attacks           # Figs. 5 & 6, exact + exhaustive
    python -m repro races             # the honest-race matrix
    python -m repro verify            # naive-vs-incremental differential
    python -m repro faults            # re-verification under faults
    python -m repro fig8              # §3.3.1 exhaustive verification
    python -m repro crossover         # the intro's trend & crossovers
    python -m repro bus               # §3.4 PCI sweep
    python -m repro atomics           # §3.5 atomic operations
    python -m repro stress            # kernel-modification ablation
    python -m repro hunt              # synthesize counterexamples
    python -m repro trace             # traced adversary run -> Perfetto
    python -m repro metrics           # metric time series of that run
    python -m repro serve             # the always-on DMA service (TCP)
    python -m repro soak              # multi-tenant soak -> BENCH report
    python -m repro postmortem        # reproduce flight-recorder bundles
    python -m repro trends            # anomaly scan of a soak history
    python -m repro all               # every experiment above, in order

Each command prints the same tables the benchmark suite persists under
``benchmarks/results/``.

Every subcommand shares one option group: ``--seed`` picks the seed of
stochastic experiments and ``--json PATH`` (aliases ``--output`` and
``--out``) writes the command's machine-readable report.  All file
output funnels through :mod:`repro.obs.writer`.  Options always follow
the subcommand name.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, Dict, List, Optional

from .analysis.report import Table, format_us
from .analysis.trends import (
    crossover_table,
    measure_initiation_us,
    overhead_sweep,
)
from .core.methods import METHODS, TABLE1_METHODS
from .core.timing import ALPHA3000_TURBOCHANNEL, ALPHA_PCI_33, ALPHA_PCI_66
from .net.link import ATM_155, ATM_622, GIGABIT

PAPER_TABLE1_US = {"kernel": 18.6, "extshadow": 1.1, "repeated5": 2.6,
                   "keyed": 2.3}


def cmd_table1(args: argparse.Namespace) -> None:
    """Reproduce Table 1."""
    table = Table("Table 1: Comparison of DMA initiation algorithms",
                  ["DMA algorithm", "paper (us)", "measured (us)",
                   "ratio"])
    for method in TABLE1_METHODS:
        measured = measure_initiation_us(method,
                                         iterations=args.iterations)
        paper = PAPER_TABLE1_US[method]
        table.add_row(METHODS[method].title, format_us(paper),
                      format_us(measured, 2),
                      f"{measured / paper:.2f}x")
    print(table.render())


def cmd_methods(args: argparse.Namespace) -> None:
    """Measure every initiation method."""
    table = Table("All initiation methods",
                  ["method", "section", "accesses", "kernel-free",
                   "measured (us)"])
    for name, info in METHODS.items():
        measured = measure_initiation_us(name,
                                         iterations=args.iterations)
        table.add_row(info.title, info.section,
                      info.memory_accesses or "-",
                      "yes" if info.kernel_free else "NO",
                      format_us(measured, 2))
    print(table.render())


def cmd_attacks(args: argparse.Namespace) -> None:
    """Replay and search the Fig. 5 / Fig. 6 attacks."""
    from .verify.adversary import fig5_scenario, fig6_scenario
    from .verify.model_check import check_scenario, replay_interleaving

    for build in (fig5_scenario, fig6_scenario):
        scenario, figure_order = build()
        violations = replay_interleaving(scenario, figure_order)
        result = check_scenario(scenario)
        print(f"{scenario.name}:")
        print(f"  figure's interleaving violates: "
              f"{sorted({v.prop for v in violations})}")
        print(f"  exhaustive: {result.summary()}")


def cmd_races(args: argparse.Namespace) -> None:
    """The honest-race matrix (no kernel hooks)."""
    from .verify.adversary import pair_race_scenario
    from .verify.model_check import check_scenario

    table = Table("Two honest processes racing (no kernel hooks)",
                  ["method", "interleavings", "violating", "race-free"])
    for method in ("shrimp2", "flash", "keyed", "extshadow",
                   "repeated5", "iommu", "capio"):
        result = check_scenario(pair_race_scenario(method))
        table.add_row(method, result.total_interleavings,
                      result.violating_interleavings,
                      "yes" if result.safe else "NO")
    print(table.render())


def cmd_verify(args: argparse.Namespace) -> None:
    """Differential check: naive vs incremental over every scenario."""
    from .verify.adversary import builtin_scenarios
    from .verify.incremental import check_scenario_incremental
    from .verify.model_check import check_scenario

    table = Table("Built-in scenarios, naive vs incremental checker",
                  ["scenario", "method", "interleavings", "violating",
                   "verdict", "checkers agree"])
    mismatches = []
    for scenario in builtin_scenarios():
        naive = check_scenario(scenario)
        incremental = check_scenario_incremental(scenario)
        agree = (naive.safe == incremental.safe
                 and (naive.total_interleavings
                      == incremental.total_interleavings)
                 and (naive.violating_interleavings
                      == incremental.violating_interleavings))
        if not agree:
            mismatches.append(scenario.name)
        table.add_row(scenario.name, scenario.method,
                      naive.total_interleavings,
                      naive.violating_interleavings,
                      "safe" if naive.safe else "ATTACK",
                      "yes" if agree else "NO")
    print(table.render())
    if mismatches:
        print(f"checker divergence on: {', '.join(mismatches)}")
        raise SystemExit(1)
    print("naive and incremental checkers agree on every scenario")


def cmd_faults(args: argparse.Namespace) -> None:
    """Re-verify every initiation method under single-fault schedules."""
    from .verify.faulted import FAULT_HARDENED_METHODS, run_fault_verification

    reports = run_fault_verification()
    table = Table("Protection + atomicity under single faults "
                  "(page-bounded engine)",
                  ["method", "baseline", "fault variants",
                   "interleavings", "verdict"])
    for method, report in reports.items():
        table.add_row(method,
                      "safe" if report.baseline_safe else "unsafe",
                      report.variants_checked,
                      report.interleavings_checked,
                      report.verdict)
    print(table.render())
    expected_safe = set(FAULT_HARDENED_METHODS)
    hardened_ok = all(reports[m].verdict == "SAFE" for m in expected_safe)
    none_newly = all(r.acceptable for r in reports.values())
    print(f"hardened methods ({', '.join(FAULT_HARDENED_METHODS)}) all "
          f"SAFE: {'yes' if hardened_ok else 'NO'}")
    print(f"no method NEWLY-UNSAFE: {'yes' if none_newly else 'NO'}")
    if not (hardened_ok and none_newly):
        raise SystemExit(1)


def cmd_fig8(args: argparse.Namespace) -> None:
    """Exhaustively verify the 5-instruction variant (§3.3.1)."""
    from .verify.adversary import fig8_scenario
    from .verify.model_check import check_scenario

    for scenario in (fig8_scenario(1), fig8_scenario(2),
                     fig8_scenario(1, adversary_reads_source=False),
                     fig8_scenario(4, accesses_per_adversary=1)):
        print(check_scenario(scenario).summary())


def cmd_prove(args: argparse.Namespace) -> None:
    """The mechanized §3.3.1 lemma-by-lemma proof."""
    from .verify.adversary import fig8_scenario
    from .verify.proof import prove_fig8

    for scenario in (fig8_scenario(1), fig8_scenario(2),
                     fig8_scenario(4, accesses_per_adversary=1)):
        print(prove_fig8(scenario).summary())
        print()


def cmd_crossover(args: argparse.Namespace) -> None:
    """The intro's overhead trend and crossover sizes."""
    init = {m: measure_initiation_us(m, iterations=args.iterations)
            for m in ("kernel", "extshadow", "keyed")}
    links = [ATM_155, ATM_622, GIGABIT]
    table = Table("Crossover sizes (initiation == wire time)",
                  ["method", "init (us)"] + [link.name for link in links])
    for method, rows in (
            (m, [r for r in crossover_table([m], links,
                                            initiation_us=init)])
            for m in init):
        table.add_row(method, format_us(init[method], 2),
                      *(f"{r.crossover_bytes} B" for r in rows))
    print(table.render())
    print()
    sizes = [64, 1024, 16384]
    points = overhead_sweep(["kernel", "extshadow"], links, sizes,
                            initiation_us=init)
    table2 = Table("Initiation share of message time (%)",
                   ["method", "link"] + [f"{s} B" for s in sizes])
    for method in ("kernel", "extshadow"):
        for link in links:
            row = sorted((p for p in points if p.method == method
                          and p.link == link.name),
                         key=lambda p: p.size)
            table2.add_row(method, link.name,
                           *(f"{p.overhead_fraction * 100:.0f}"
                             for p in row))
    print(table2.render())


def cmd_bus(args: argparse.Namespace) -> None:
    """§3.4: Table 1 across bus generations."""
    presets = [("TC 12.5", ALPHA3000_TURBOCHANNEL),
               ("PCI 33", ALPHA_PCI_33), ("PCI 66", ALPHA_PCI_66)]
    table = Table("Initiation latency vs. bus generation (us)",
                  ["method"] + [name for name, _ in presets])
    for method in TABLE1_METHODS:
        table.add_row(method, *(format_us(
            measure_initiation_us(method, timing,
                                  iterations=args.iterations), 2)
            for _name, timing in presets))
    print(table.render())


def cmd_atomics(args: argparse.Namespace) -> None:
    """§3.5: atomic-operation latencies."""
    from .core.atomics import AtomicChannel
    from .core.machine import MachineConfig, Workstation

    table = Table("Atomic-operation initiation (us)",
                  ["mode", "atomic_add", "compare_and_swap"])
    for mode in ("keyed", "extshadow"):
        ws = Workstation(MachineConfig(method="keyed",
                                       atomic_mode=mode))
        proc = ws.kernel.spawn()
        ws.kernel.enable_user_atomics(proc)
        buf = ws.kernel.alloc_buffer(proc, 8192, shadow=False)
        chan = AtomicChannel(ws, proc)
        chan.atomic_add(buf.vaddr, 0)  # warm
        add = chan.atomic_add(buf.vaddr, 1).elapsed_us
        cas = chan.compare_and_swap(buf.vaddr, 0, 1).elapsed_us
        table.add_row(mode, format_us(add, 2), format_us(cas, 2))
        if mode == "keyed":
            kernel_add = chan.atomic_add(buf.vaddr, 1,
                                         via_kernel=True).elapsed_us
            table.add_row("kernel", format_us(kernel_add, 2), "-")
    print(table.render())


def cmd_generations(args: argparse.Namespace) -> None:
    """The decade-scale OS-vs-network trend (intro's motivation)."""
    from .analysis.generations import (
        HISTORICAL_GENERATIONS,
        domination_year,
        generation_series,
    )

    sizes = [256, 1024, 4096]
    series = {size: generation_series(size) for size in sizes}
    table = Table("Kernel initiation / wire time, by generation",
                  ["year", "CPU MHz", "LAN Mb/s"]
                  + [f"{s} B" for s in sizes])
    for index, gen in enumerate(HISTORICAL_GENERATIONS):
        table.add_row(gen.year, f"{gen.cpu_mhz:.0f}",
                      f"{gen.network_mbps:.0f}",
                      *(f"{series[s][index].kernel_ratio:.2f}"
                        for s in sizes))
    print(table.render())
    for size in sizes:
        year = domination_year(size)
        print(f"  {size} B messages: kernel initiation dominates from "
              f"{year if year > 0 else 'never'}")


def cmd_stress(args: argparse.Namespace) -> None:
    """The kernel-modification ablation."""
    from .verify.stress import run_stress

    table = Table("Stress audit (4 procs x 20 DMAs, p=0.5)",
                  ["method", "hook", "started", "corrupted",
                   "misreported"])
    for method, hooks in (("shrimp2", True), ("shrimp2", False),
                          ("flash", True), ("flash", False),
                          ("keyed", True), ("extshadow", True),
                          ("repeated5", True)):
        report = run_stress(method, n_processes=4, dmas_each=20,
                            preempt_p=0.5, with_hooks=hooks,
                            with_retry=(method == "repeated5"),
                            seed=args.seed)
        table.add_row(method,
                      "yes" if hooks and method in ("shrimp2", "flash")
                      else "-",
                      f"{report.started}/{report.attempts}",
                      report.corrupted, report.misreported)
    print(table.render())


def cmd_trace(args: argparse.Namespace) -> None:
    """Run the traced two-adversary workload and export its spans."""
    from .obs.export import (span_summary_table, span_tree_roots,
                             spans_jsonl, write_chrome_trace)
    from .obs.runs import traced_adversary_run

    run = traced_adversary_run(seed=args.seed)
    spans = run.spans()
    if args.export == "chrome":
        path = args.output or "trace.json"
        trace = write_chrome_trace(path, spans,
                                   events=run.ws.trace.events(),
                                   metrics=run.ws.metrics)
        print(f"wrote {path}: {len(trace['traceEvents'])} trace events "
              f"({len(spans)} spans, {len(run.ws.trace)} log records, "
              f"{len(run.ws.metrics)} metric samples)")
        print("open it in https://ui.perfetto.dev or chrome://tracing")
    elif args.export == "jsonl":
        from .obs.writer import write_text

        text = spans_jsonl(spans)
        if args.output:
            write_text(args.output, text)
            print(f"wrote {args.output}: {len(spans)} spans")
        else:
            print(text, end="")
    else:
        roots = [s for s in span_tree_roots(spans)
                 if s.name in ("dma", "dma.reliable", "dma.initiate")]
        outcomes: Dict[str, int] = {}
        for root in roots:
            outcome = str(root.attrs.get("outcome", "-"))
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        print(f"{len(roots)} DMA attempt trees: "
              + ", ".join(f"{k}={v}" for k, v in sorted(outcomes.items())))
        print(span_summary_table(spans).render())


def cmd_metrics(args: argparse.Namespace) -> None:
    """Run the traced workload and print its metric time series."""
    from .obs.runs import traced_adversary_run
    from .obs.writer import write_json

    run = traced_adversary_run(seed=args.seed)
    metrics = run.ws.metrics
    if args.output:
        write_json(args.output, metrics.to_dict())
        print(f"wrote {args.output}: {len(metrics)} samples, "
              f"{len(metrics.names())} series")
        return
    table = Table(f"Metric time series ({len(metrics)} samples)",
                  ["metric", "first", "last", "delta"])
    for name in metrics.names():
        series = metrics.series(name)
        if not series:
            continue
        first, last = series[0][1], series[-1][1]
        if last == 0.0 and first == 0.0:
            continue
        table.add_row(name, f"{first:g}", f"{last:g}",
                      f"{last - first:+g}")
    print(table.render())


def cmd_hunt(args: argparse.Namespace) -> None:
    """Synthesize counterexamples (and run the k-fault campaign)."""
    import itertools

    from .obs.profile import PhaseProfiler
    from .obs.writer import write_json
    from .obs.spans import SpanTracer
    from .verify.faulted import FAULT_HARDENED_METHODS
    from .verify.synth import HuntConfig, run_hunt, run_k_fault_campaign
    from .verify.synth.search import HUNT_METHODS

    methods = (tuple(args.methods.split(","))
               if args.methods else HUNT_METHODS)
    config = HuntConfig(seed=args.seed, budget_s=args.budget,
                        max_candidates=args.max_candidates)
    ticks = itertools.count()
    tracer = SpanTracer(clock=lambda: next(ticks), enabled=True)
    profiler = PhaseProfiler()
    reports = run_hunt(methods, config, tracer=tracer, profiler=profiler)
    tracer.require_balanced()

    table = Table(f"Counterexample hunt (seed {args.seed})",
                  ["method", "candidates", "interleavings", "outcome",
                   "shrunk"])
    for report in reports:
        if report.found:
            outcome = "FOUND: " + ",".join(report.props)
            shrunk = (str(len(report.shrunk))
                      if report.shrunk is not None else "-")
        else:
            outcome = ("exhausted, safe" if report.exhausted
                       else "safe within budget")
            shrunk = "-"
        table.add_row(report.method, report.candidates,
                      report.interleavings, outcome, shrunk)
    print(table.render())

    by_method = {r.method: r for r in reports}
    broken = [m for m in ("repeated3", "repeated4",
                          "iommu_noshootdown", "capio_noepoch")
              if m in by_method]
    hardened = [m for m in FAULT_HARDENED_METHODS if m in by_method]
    rediscovered = all(by_method[m].found for m in broken)
    survived = all(not by_method[m].found for m in hardened)
    print(f"broken variants rediscovered ({', '.join(broken) or 'none'}): "
          f"{'yes' if rediscovered else 'NO'}")
    print(f"hardened methods survived ({', '.join(hardened) or 'none'}): "
          f"{'yes' if survived else 'NO'}")

    kfault_reports = {}
    kfault_ok = True
    if args.k_faults > 0:
        campaign_methods = [m for m in FAULT_HARDENED_METHODS
                            if m in by_method] or None
        kfault_reports = run_k_fault_campaign(
            campaign_methods, k=args.k_faults, max_combos=args.max_combos,
            seed=args.seed, profiler=profiler)
        ktable = Table(f"k-fault campaign (k={args.k_faults})",
                       ["method", "combos", "skipped", "interleavings",
                        "verdict"])
        for method, report in kfault_reports.items():
            mode = "~" if report.sampled else ""
            ktable.add_row(method,
                           f"{mode}{report.combos_checked}"
                           f"/{report.combos_total}",
                           report.combos_skipped,
                           report.interleavings_checked, report.verdict)
        print(ktable.render())
        kfault_ok = all(r.verdict == "SAFE"
                        for r in kfault_reports.values())
        print(f"all campaigned methods SAFE under k={args.k_faults} "
              f"faults: {'yes' if kfault_ok else 'NO'}")

    if args.output:
        payload = {
            "seed": args.seed,
            "budget_s": args.budget,
            "max_candidates": args.max_candidates,
            "k_faults": args.k_faults,
            "hunts": [r.to_dict() for r in reports],
            "kfault": {m: r.to_dict()
                       for m, r in kfault_reports.items()},
            "spans": [s.to_dict() for s in tracer.finished()],
            "phases": profiler.report(),
        }
        write_json(args.output, payload)
        print(f"wrote {args.output}: {len(reports)} hunts, "
              f"{len(kfault_reports)} k-fault campaigns")

    if not (rediscovered and survived and kfault_ok):
        raise SystemExit(1)


def cmd_serve(args: argparse.Namespace) -> None:
    """Run the always-on DMA service on a TCP JSON-lines socket."""
    import asyncio

    from .service.frontend import ServiceConfig, serve_forever

    config = ServiceConfig(
        shards=args.shards, method=args.method, seed=args.seed,
        tick_hz=args.tick_hz, admission_rate=args.admission_rate,
        admission_burst=args.admission_burst,
        max_queue_depth=args.max_queue_depth)

    async def _run() -> None:
        ready = asyncio.Event()
        task = asyncio.get_running_loop().create_task(serve_forever(
            config, host=args.host, port=args.port, ready=ready,
            max_connections=args.max_connections, tick_wall=True))
        await ready.wait()
        print(f"serving {args.shards} shard(s) on "
              f"{args.host}:{ready.port}  "  # type: ignore[attr-defined]
              "(one JSON request per line; Ctrl-C to stop)")
        await task

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print("\nshutting down")


def _soak_config_from_args(args: argparse.Namespace, *,
                           spans: bool) -> Any:
    """Build a :class:`SoakConfig` from the shared soak option set."""
    import json

    from .service.soak import SoakConfig

    fault_plan = None
    if args.faults:
        with open(args.faults, "r", encoding="utf-8") as handle:
            fault_plan = json.load(handle)
    slo_spec = None
    if getattr(args, "slo", None):
        with open(args.slo, "r", encoding="utf-8") as handle:
            slo_spec = json.load(handle)
    return SoakConfig(
        tenants=args.tenants, duration_s=args.duration,
        tick_hz=args.tick_hz, rate=args.rate, skew=args.skew,
        zipf_s=args.zipf_s, shards=args.shards, method=args.method,
        seed=args.seed, fault_rate=args.fault_rate,
        fault_plan=fault_plan, control_run=not args.no_control,
        spans=spans, slo=slo_spec,
        admission_rate=args.admission_rate,
        admission_burst=args.admission_burst,
        max_queue_depth=args.max_queue_depth)


def cmd_soak(args: argparse.Namespace) -> None:
    """Run a multi-tenant soak and emit the BENCH_service report."""
    from .obs.writer import write_json
    from .service.soak import run_soak, strip_runtime

    config = _soak_config_from_args(
        args, spans=(args.trace is not None
                     or args.postmortem is not None))
    report = run_soak(config)
    service = report["_service"]
    requests, faults = report["requests"], report["faults"]

    table = Table(f"Soak: {config.tenants} tenants x {config.duration_s} s "
                  f"({config.skew}, seed {config.seed})",
                  ["metric", "value"])
    table.add_row("requests generated", requests["generated"])
    table.add_row("admitted / rejected",
                  f"{requests['admitted']} / {requests['rejected']}")
    table.add_row("completed", requests["completed"])
    table.add_row("retried / fell back / aborted",
                  f"{requests['retried']} / {requests['fell_back']} / "
                  f"{requests['aborted']}")
    table.add_row("wrong-data (detected, in-region)",
                  requests["wrong_data"])
    table.add_row("wrong-page transfers", requests["wrong_transfers"])
    table.add_row("goodput (MB/s)", report["goodput_mbytes_per_s"])
    table.add_row("latency p50/p95/p99 (us)",
                  f"{report['latency_us']['p50']} / "
                  f"{report['latency_us']['p95']} / "
                  f"{report['latency_us']['p99']}")
    table.add_row("Jain fairness (completions)",
                  report["fairness"]["jain_completions"])
    table.add_row("faults injected", faults["injected"])
    table.add_row("verdict", faults["verdict"])
    if "vs_faultfree" in report:
        table.add_row("goodput vs fault-free",
                      f"{report['vs_faultfree']['goodput_ratio']:.4f}")
    slo = report["slo"]
    table.add_row("SLO windows / breaches",
                  f"{slo['evaluations']} / {len(slo['breaches'])}")
    table.add_row("postmortem bundles", report["postmortems"]["count"])
    print(table.render())
    for breach in slo["breaches"]:
        print(f"SLO BREACH {breach['rule']} ({breach['kind']}) at "
              f"t={breach['t_s']}s: {breach['detail']}")

    if args.trend:
        write_json(args.trend, report["trend"])
        print(f"wrote {args.trend}: "
              f"{report['trend']['summary']['windows']} trend windows")
    if args.trace:
        trace = service.fleet_trace()
        write_json(args.trace, trace, indent=None)
        print(f"wrote {args.trace}: {len(trace['traceEvents'])} trace "
              "events (open in https://ui.perfetto.dev)")
    if args.postmortem:
        bundles = report["_postmortems"]
        write_json(args.postmortem, {
            "kind": "postmortem_bundles",
            "seed": config.seed,
            "config": config.to_dict(),
            "bundles": bundles,
        })
        print(f"wrote {args.postmortem}: {len(bundles)} bundle(s)")
    if args.output:
        write_json(args.output, strip_runtime(report))
        print(f"wrote {args.output}")
    if faults["verdict"] == "UNSAFE":
        raise SystemExit(1)
    if args.slo and slo["breached"]:
        raise SystemExit(1)


def cmd_postmortem(args: argparse.Namespace) -> None:
    """Re-run a soak deterministically and dump its flight-recorder
    bundles.

    Same option set as ``soak`` (span recording is forced on so the
    bundles carry their trace tails); the run is a pure function of the
    config, so re-running with the same seed and fault plan reproduces
    the exact bundles the original incident produced.
    """
    from .obs.writer import write_json
    from .service.soak import run_soak

    config = _soak_config_from_args(args, spans=True)
    report = run_soak(config)
    bundles = report["_postmortems"]
    verdict = report["faults"]["verdict"]
    if not bundles:
        print(f"no postmortems: run completed clean (verdict {verdict})")
    for bundle in bundles:
        print(f"{bundle['process']}: {bundle['reason']} at tick "
              f"{bundle['tick']} — {bundle['detail']}")
    path = args.output or "postmortem.json"
    write_json(path, {
        "kind": "postmortem_bundles",
        "seed": config.seed,
        "verdict": verdict,
        "config": config.to_dict(),
        "bundles": bundles,
    })
    print(f"wrote {path}: {len(bundles)} bundle(s), verdict {verdict}")


def cmd_trends(args: argparse.Namespace) -> None:
    """Scan a committed soak history for EWMA/robust-z anomalies."""
    import json

    from .analysis.trends import trend_anomaly_report
    from .obs.writer import write_json

    with open(args.history, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    # Accept either a full soak report (with its "trend" block) or a
    # bare trend report.
    trend = data.get("trend", data)
    result = trend_anomaly_report(trend, z_threshold=args.z_threshold)
    table = Table(f"Trend anomalies ({args.history}, "
                  f"z > {args.z_threshold:g})",
                  ["series", "anomalous windows (t_s)"])
    for name, hits in result["anomalies"].items():
        table.add_row(name,
                      ", ".join(f"{t:g}" for t in hits) if hits else "-")
    print(table.render())
    print(f"{result['windows']} windows scanned: "
          + ("ANOMALOUS" if result["anomalous"] else "clean"))
    if args.output:
        write_json(args.output, result)
        print(f"wrote {args.output}")
    if args.check and result["anomalous"]:
        raise SystemExit(1)


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "table1": cmd_table1,
    "methods": cmd_methods,
    "attacks": cmd_attacks,
    "races": cmd_races,
    "verify": cmd_verify,
    "faults": cmd_faults,
    "fig8": cmd_fig8,
    "prove": cmd_prove,
    "crossover": cmd_crossover,
    "bus": cmd_bus,
    "atomics": cmd_atomics,
    "generations": cmd_generations,
    "stress": cmd_stress,
    "hunt": cmd_hunt,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "serve": cmd_serve,
    "soak": cmd_soak,
    "postmortem": cmd_postmortem,
    "trends": cmd_trends,
}

#: One-line help per subcommand (shown in ``repro --help``).
COMMAND_HELP: Dict[str, str] = {
    "table1": "Table 1, paper vs measured",
    "methods": "every initiation method (the paper's ten + modern)",
    "attacks": "Figs. 5 & 6, exact replay + exhaustive check",
    "races": "the honest-race matrix",
    "verify": "naive-vs-incremental differential over all scenarios",
    "faults": "re-verification under single-fault schedules",
    "fig8": "exhaustive verification of the 5-instruction variant",
    "prove": "the mechanized lemma-by-lemma proof",
    "crossover": "the intro's overhead trend and crossover sizes",
    "bus": "Table 1 across bus generations",
    "atomics": "atomic-operation latencies",
    "generations": "the decade-scale OS-vs-network trend",
    "stress": "the kernel-modification ablation",
    "hunt": "synthesize counterexamples (+ k-fault campaign)",
    "trace": "traced adversary run exported to Perfetto",
    "metrics": "metric time series of the traced run",
    "serve": "run the always-on DMA service (TCP JSON lines)",
    "soak": "multi-tenant soak -> BENCH_service report",
    "postmortem": "reproduce a soak's flight-recorder bundles",
    "trends": "EWMA/robust-z anomaly scan of a soak history",
    "all": "every experiment above, in order",
}

#: The commands ``repro all`` runs, in order.
ALL_SEQUENCE = ("table1", "methods", "attacks", "races", "verify",
                "faults", "fig8", "prove", "crossover", "bus", "atomics",
                "generations", "stress", "hunt")


def _service_options(parser: argparse.ArgumentParser) -> None:
    """Admission/pool options shared by ``serve`` and ``soak``."""
    parser.add_argument("--shards", type=int, default=4,
                        help="machine pool size")
    parser.add_argument("--method", default="keyed",
                        help="initiation method every shard runs")
    parser.add_argument("--tick-hz", type=int, default=10,
                        help="service ticks per second")
    parser.add_argument("--admission-rate", type=float, default=5.0,
                        help="per-tenant sustained requests/second")
    parser.add_argument("--admission-burst", type=float, default=10.0,
                        help="per-tenant burst allowance")
    parser.add_argument("--max-queue-depth", type=int, default=64,
                        help="per-shard queue bound (backpressure)")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (one subparser per experiment).

    Every subcommand inherits the shared option group: ``--seed`` and
    ``--json`` (aliases ``--output``, ``--out``).  Measurement commands
    add ``--iterations``; ``hunt``, ``trace``, ``serve``, ``soak``,
    ``postmortem``, and ``trends`` add their own flags.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of Markatos & Katevenis, "
                    "'User-Level DMA without OS Kernel Modification' "
                    "(HPCA-3, 1997).")

    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("common options")
    group.add_argument("--seed", type=int, default=7,
                       help="seed for stochastic experiments")
    group.add_argument("--json", "--output", "--out", dest="output",
                       default=None, metavar="PATH",
                       help="write the command's JSON report/export here")

    measure = argparse.ArgumentParser(add_help=False)
    measure.add_argument("--iterations", type=int, default=50,
                         help="initiations per latency measurement")

    sub = parser.add_subparsers(dest="command", metavar="command",
                                required=True)

    def add(name: str, *parents: argparse.ArgumentParser
            ) -> argparse.ArgumentParser:
        return sub.add_parser(name, help=COMMAND_HELP[name],
                              description=COMMAND_HELP[name],
                              parents=[common, *parents])

    for name in ("table1", "methods", "crossover", "bus"):
        add(name, measure)
    for name in ("attacks", "races", "verify", "faults", "fig8", "prove",
                 "atomics", "generations", "stress", "metrics"):
        add(name)

    trace = add("trace")
    trace.add_argument("--export", choices=("chrome", "jsonl", "summary"),
                       default="chrome", help="trace output format")

    hunt = add("hunt")
    hunt.add_argument("--budget", type=float, default=None,
                      help="wall-clock budget per hunted method, seconds")
    hunt.add_argument("--max-candidates", type=int, default=400,
                      help="adversary streams checked per method")
    hunt.add_argument("--k-faults", type=int, default=0,
                      help="also run a k-fault campaign on the hardened "
                           "methods (0 = off)")
    hunt.add_argument("--max-combos", type=int, default=None,
                      help="cap on fault combinations per method (below "
                           "the space size turns the campaign into a "
                           "seeded sample)")
    hunt.add_argument("--methods", default=None,
                      help="comma-separated methods to hunt "
                           "(default: every registered hunt method)")

    serve = add("serve")
    _service_options(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="listen address")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--max-connections", type=int, default=None,
                       help="exit after serving this many connections")

    def _soak_options(parser: argparse.ArgumentParser) -> None:
        """Workload options shared by ``soak`` and ``postmortem``."""
        _service_options(parser)
        parser.add_argument("--tenants", type=int, default=200,
                            help="simulated tenant count")
        parser.add_argument("--duration", type=int, default=20,
                            help="soak length in service seconds")
        parser.add_argument("--rate", type=float, default=0.2,
                            help="offered requests per tenant-second")
        parser.add_argument("--skew", choices=("zipf", "uniform"),
                            default="zipf", help="tenant selection skew")
        parser.add_argument("--zipf-s", type=float, default=1.1,
                            help="zipf exponent (higher = hotter head)")
        parser.add_argument("--fault-rate", type=float, default=0.0,
                            help="Bernoulli fault rate "
                                 "(0 = no injection)")
        parser.add_argument("--faults", default=None,
                            metavar="PLAN_JSON",
                            help="fault plan file "
                                 "(overrides --fault-rate)")
        parser.add_argument("--no-control", action="store_true",
                            help="skip the fault-free control run")
        parser.add_argument("--slo", default=None, metavar="SLO_JSON",
                            help="SLO rule file (default: the built-in "
                                 "baseline rules)")

    soak = add("soak")
    _soak_options(soak)
    soak.add_argument("--trend", default=None, metavar="PATH",
                      help="write the trend report here")
    soak.add_argument("--trace", default=None, metavar="PATH",
                      help="write the fleet Perfetto trace here "
                           "(enables span recording)")
    soak.add_argument("--postmortem", default=None, metavar="PATH",
                      help="write the run's flight-recorder bundles "
                           "here (enables span recording)")

    postmortem = add("postmortem")
    _soak_options(postmortem)

    trends = add("trends")
    trends.add_argument("history", nargs="?",
                        default="benchmarks/results/BENCH_service.json",
                        help="soak report or bare trend report to scan")
    trends.add_argument("--z-threshold", type=float, default=4.0,
                        help="robust-z score above which a window is "
                             "anomalous")
    trends.add_argument("--check", action="store_true",
                        help="exit non-zero when any series is "
                             "anomalous (CI gate)")

    everything = add("all", measure)
    everything.set_defaults(budget=None, max_candidates=400, k_faults=0,
                            max_combos=None, methods=None,
                            export="chrome")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "all":
        for name in ALL_SEQUENCE:
            print(f"\n===== {name} =====")
            COMMANDS[name](args)
    else:
        COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
