"""Address and message-size patterns.

The paper's argument is strongest for *small* transfers — the regime
where initiation overhead dominates.  LAN traffic studies of the era (and
since) show message sizes are heavily bimodal: mostly small control
messages with a tail of bulk transfers.  :data:`SMALL_MESSAGE_MIX`
captures that shape; :data:`UNIFORM_MIX` is the neutral baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple


def offsets_sequential(buffer_size: int, chunk: int) -> Iterator[int]:
    """Back-to-back chunks walking the buffer, wrapping at the end."""
    if chunk <= 0 or chunk > buffer_size:
        raise ValueError(f"chunk {chunk} does not fit buffer {buffer_size}")
    offset = 0
    while True:
        yield offset
        offset += chunk
        if offset + chunk > buffer_size:
            offset = 0


def offsets_strided(buffer_size: int, chunk: int,
                    stride: int) -> Iterator[int]:
    """Chunks separated by *stride* bytes, wrapping at the end."""
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    if chunk <= 0 or chunk > buffer_size:
        raise ValueError(f"chunk {chunk} does not fit buffer {buffer_size}")
    offset = 0
    while True:
        yield offset
        offset = (offset + stride) % max(1, buffer_size - chunk + 1)


def offsets_random(buffer_size: int, chunk: int,
                   rng: random.Random,
                   align: int = 8) -> Iterator[int]:
    """Uniformly random aligned offsets that fit the buffer."""
    if chunk <= 0 or chunk > buffer_size:
        raise ValueError(f"chunk {chunk} does not fit buffer {buffer_size}")
    slots = (buffer_size - chunk) // align
    while True:
        yield rng.randint(0, slots) * align


@dataclass(frozen=True)
class MessageSizeMix:
    """A discrete message-size distribution.

    Attributes:
        name: display name.
        sizes: candidate sizes in bytes.
        weights: relative probabilities, same length as sizes.
    """

    name: str
    sizes: Tuple[int, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights) or not self.sizes:
            raise ValueError("sizes and weights must be equal, non-empty")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative, not all zero")

    def sample(self, rng: random.Random) -> int:
        """Draw one message size."""
        return rng.choices(self.sizes, weights=self.weights, k=1)[0]

    def sample_many(self, rng: random.Random, n: int) -> List[int]:
        """Draw *n* message sizes."""
        return rng.choices(self.sizes, weights=self.weights, k=n)

    @property
    def mean(self) -> float:
        """Expected message size in bytes."""
        total = sum(self.weights)
        return sum(s * w for s, w in zip(self.sizes, self.weights)) / total


#: The small-message-dominated mix that motivates user-level DMA: 70%
#: of messages at or under 256 B, a modest mid range, a thin bulk tail.
SMALL_MESSAGE_MIX = MessageSizeMix(
    name="small-heavy",
    sizes=(32, 64, 128, 256, 1024, 4096, 16384),
    weights=(0.25, 0.20, 0.15, 0.10, 0.15, 0.10, 0.05),
)

#: A flat mix over the same sizes, for contrast.
UNIFORM_MIX = MessageSizeMix(
    name="uniform",
    sizes=(32, 64, 128, 256, 1024, 4096, 16384),
    weights=(1.0,) * 7,
)
