"""DMA request-stream generators.

A :class:`RequestGenerator` binds a size mix and an offset pattern to a
pair of buffers and yields :class:`DmaRequest` objects a benchmark can
feed to a :class:`~repro.core.api.DmaChannel`.  Arrival times (for
open-loop experiments) come from :func:`poisson_arrivals`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..units import Time, seconds
from .patterns import MessageSizeMix, SMALL_MESSAGE_MIX, offsets_random


@dataclass(frozen=True)
class DmaRequest:
    """One DMA the workload wants performed.

    Attributes:
        src_offset / dst_offset: byte offsets within the workload's
            source and destination buffers.
        size: transfer size in bytes.
        arrival: optional arrival timestamp for open-loop replays.
    """

    src_offset: int
    dst_offset: int
    size: int
    arrival: Optional[Time] = None


class RequestGenerator:
    """Generates a reproducible stream of DMA requests.

    Args:
        buffer_size: size of both the source and destination buffers.
        mix: message-size distribution.
        seed: RNG seed (fully determines the stream).
        align: offset alignment in bytes.
    """

    def __init__(self, buffer_size: int,
                 mix: MessageSizeMix = SMALL_MESSAGE_MIX,
                 seed: int = 0, align: int = 64) -> None:
        if buffer_size < max(mix.sizes):
            raise ValueError(
                f"buffer {buffer_size} smaller than the largest message "
                f"size {max(mix.sizes)}")
        self.buffer_size = buffer_size
        self.mix = mix
        self.align = align
        self._rng = random.Random(f"workload/{seed}")

    def requests(self, n: int) -> List[DmaRequest]:
        """The next *n* requests."""
        out: List[DmaRequest] = []
        for _ in range(n):
            size = self.mix.sample(self._rng)
            src = next(offsets_random(self.buffer_size, size, self._rng,
                                      self.align))
            dst = next(offsets_random(self.buffer_size, size, self._rng,
                                      self.align))
            out.append(DmaRequest(src_offset=src, dst_offset=dst,
                                  size=size))
        return out

    def stream(self) -> Iterator[DmaRequest]:
        """An endless request stream."""
        while True:
            yield self.requests(1)[0]


def poisson_arrivals(rate_per_second: float, n: int,
                     seed: int = 0, start: Time = 0) -> List[Time]:
    """*n* Poisson arrival timestamps at the given average rate.

    Raises:
        ValueError: for a non-positive rate or count.
    """
    if rate_per_second <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_second}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = random.Random(f"arrivals/{seed}")
    now = start
    out: List[Time] = []
    for _ in range(n):
        gap = rng.expovariate(rate_per_second)
        now += seconds(gap)
        out.append(now)
    return out
