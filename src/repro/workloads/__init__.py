"""Workload generation for benchmarks and examples.

* :mod:`repro.workloads.patterns` — address/size patterns: sequential,
  strided, random, and the small-message-heavy mixes that motivate
  user-level DMA.
* :mod:`repro.workloads.generators` — request-stream generators binding
  patterns to buffers and (optionally) Poisson arrival times.
"""

from .generators import DmaRequest, RequestGenerator, poisson_arrivals
from .patterns import (
    MessageSizeMix,
    SMALL_MESSAGE_MIX,
    UNIFORM_MIX,
    offsets_random,
    offsets_sequential,
    offsets_strided,
)

__all__ = [
    "DmaRequest",
    "MessageSizeMix",
    "RequestGenerator",
    "SMALL_MESSAGE_MIX",
    "UNIFORM_MIX",
    "offsets_random",
    "offsets_sequential",
    "offsets_strided",
    "poisson_arrivals",
]
