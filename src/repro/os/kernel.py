"""The kernel.

Provides exactly the services the paper's world needs:

* **process and memory management** — spawn processes, allocate pinned
  physically contiguous buffers, create data and shadow mappings;
* **user-level DMA setup** (§3) — assign register contexts, mint and
  install secret keys, map context pages, choose the CONTEXT_ID bits for
  extended shadow mappings, install SHRIMP-1 mapped-out entries;
* **the Fig. 1 syscall baseline** — a ``dma`` system call that translates,
  checks, and pokes the privileged DMA registers, paying the full kernel
  cost the paper measures at 18.6 us;
* **atomic-operation syscalls** (§3.5 baseline) and user-level atomic
  setup;
* **context-switch hook factories** — the SHRIMP-2 "abort pending DMA"
  and FLASH "announce current process" kernel modifications, packaged as
  scheduler hooks so experiments can run with and without them.

Setup paths (spawn, allocate, enable) are *untimed*: they happen once at
program start and the paper measures none of them.  Syscall handlers and
context-switch hooks are fully timed.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from ..errors import KernelError, PageFault, ProtectionFault
from ..hw.atomic_unit import (
    AtomicUnit,
    OP_ADD,
    OP_CAS,
    OP_FETCH_STORE,
    REG_OPCODE,
    REG_OPERAND,
    REG_OPERAND2,
    REG_RESULT,
    REG_TARGET,
)
from ..hw.bus import Bus
from ..hw.cpu import Cpu, Thread
from ..hw.device import AccessContext
from ..hw.dma.engine import (
    DmaEngine,
    REG_ABORT,
    REG_CURRENT_PID,
    REG_DESTINATION,
    REG_SIZE,
    REG_SOURCE,
    REG_STATUS,
)
from ..hw.dma.status import STATUS_FAILURE
from ..hw.pagetable import PAGE_SIZE, Perm, page_base, pages_covering
from ..sim.engine import Simulator
from ..sim.rng import make_secret_stream
from ..units import Time
from .costs import OsCosts
from ..hw.dma.recognizer import SetupOp
from ..hw.dma.protocols.capio import NONCE_FIELD_BITS
from .process import (
    ATOMIC_CTX_VADDR,
    AtomicBinding,
    Buffer,
    CAPIO_WINDOW_VADDR,
    CapabilityDescriptor,
    CTX_PAGE_VADDR,
    DmaBinding,
    Process,
)
from .vm import VirtualMemoryManager

#: Methods that require shadow mappings on user buffers.  The iommu
#: family is included, but its shadow mappings encode the buffer's
#: *virtual* address (the IOVA the engine translates), not the physical
#: one — see :meth:`Kernel._shadow_buffer`.
_SHADOW_METHODS = frozenset({
    "shrimp1", "shrimp2", "pal", "flash", "keyed", "extshadow",
    "repeated3", "repeated4", "repeated5", "iommu", "iommu_noshootdown",
})
#: Methods that consume a register context and a mapped context page.
_CONTEXT_METHODS = frozenset({
    "keyed", "extshadow", "iommu", "iommu_noshootdown",
    "capio", "capio_noepoch",
})
#: Methods whose CONTEXT_ID rides in the shadow mappings.
_EXT_BITS_METHODS = frozenset({"extshadow", "iommu", "iommu_noshootdown"})
#: The iommu family (kernel-managed I/O page tables).
_IOMMU_METHODS = frozenset({"iommu", "iommu_noshootdown"})
#: The capability family (kernel-minted per-buffer capabilities).
_CAPIO_METHODS = frozenset({"capio", "capio_noepoch"})
#: Pages in the capio offset window (covers buffers up to this size).
_CAPIO_WINDOW_PAGES = 8

#: Scheduler hook signature: (old process or None, new process).
SwitchHook = Callable[[Optional[Process], Process], None]


class Kernel:
    """The operating-system kernel of one workstation."""

    def __init__(self, sim: Simulator, cpu: Cpu, bus: Bus,
                 engine: DmaEngine, vmm: VirtualMemoryManager,
                 costs: OsCosts, seed: int = 0,
                 atomic_unit: Optional[AtomicUnit] = None) -> None:
        self.sim = sim
        self.cpu = cpu
        self.bus = bus
        self.engine = engine
        self.atomic_unit = atomic_unit
        self.vmm = vmm
        self.costs = costs
        self.processes: dict[int, Process] = {}
        self._next_pid = 1
        self._secrets: Iterator[int] = make_secret_stream(seed)
        self._next_cap_id = 1
        self._free_dma_contexts: List[int] = list(
            range(engine.layout.n_contexts))
        self._free_atomic_contexts: List[int] = (
            list(range(atomic_unit.layout.n_contexts))
            if atomic_unit is not None else [])
        self._register_syscalls()

    # ------------------------------------------------------------------
    # process and memory management (untimed setup paths)
    # ------------------------------------------------------------------

    def spawn(self, name: str = "") -> Process:
        """Create a new process with an empty address space."""
        proc = Process(self._next_pid, name)
        self._next_pid += 1
        self.processes[proc.pid] = proc
        return proc

    def alloc_buffer(self, proc: Process, nbytes: int,
                     perm: Perm = Perm.RW,
                     shadow: Optional[bool] = None) -> Buffer:
        """Allocate a pinned user buffer, creating shadow mappings if the
        process's DMA method uses them (§2.3's "at memory allocation
        time").

        Args:
            shadow: force shadow mappings on/off; None = infer from the
                process's DMA binding.
        """
        buffer = self.vmm.alloc_buffer(proc, nbytes, perm)
        if shadow is None:
            shadow = (proc.dma is not None
                      and proc.dma.method in _SHADOW_METHODS)
        if shadow:
            self._shadow_buffer(proc, buffer)
        self._grant_dma_resources(proc, buffer)
        if proc.atomic is not None:
            self.map_atomic_shadow(proc, buffer)
        return buffer

    def _shadow_buffer(self, proc: Process, buffer: Buffer) -> None:
        if proc.dma is None:
            raise KernelError(
                f"{proc.name}: shadow mappings need a DMA binding first")
        ctx_bits = proc.dma.shadow_ctx_bits
        if proc.dma.method in _IOMMU_METHODS:
            # The argument the engine decodes must be the buffer's
            # *virtual* address — the IOVA its I/O page table translates.
            base_v, base_p = buffer.vaddr, buffer.paddr
            self.vmm.map_shadow(
                proc, buffer,
                lambda paddr: self.engine.layout.shadow_paddr(
                    base_v + (paddr - base_p), ctx_bits))
            return
        self.vmm.map_shadow(
            proc, buffer,
            lambda paddr: self.engine.layout.shadow_paddr(
                self._globalize(paddr), ctx_bits))

    def _grant_dma_resources(self, proc: Process, buffer: Buffer) -> None:
        """Per-buffer kernel grants the modern methods need.

        The iommu family gets I/O page-table entries (IOVA = buffer
        virtual address); the capio family gets a freshly minted
        capability.  Both happen at allocation time, mirroring §2.3's
        "at memory allocation time" for shadow mappings.
        """
        if proc.dma is None:
            return
        if proc.dma.method in _IOMMU_METHODS:
            self.iommu_map(proc, buffer.vaddr, buffer.paddr, buffer.size,
                           writable=bool(buffer.perm & Perm.WRITE))
        elif proc.dma.method in _CAPIO_METHODS:
            self.mint_capability(proc, buffer,
                                 writable=bool(buffer.perm & Perm.WRITE))

    def share_buffer(self, owner: Process, buffer: Buffer, peer: Process,
                     perm: Optional[Perm] = None) -> int:
        """Map *owner*'s buffer into *peer*'s address space.

        Models shared memory between cooperating processes (and the
        "data readable by any process" precondition of the Fig. 6
        attack).  Shadow mappings for *peer* follow its own DMA binding.

        Returns:
            The virtual base of the mapping in *peer*.
        """
        if buffer not in owner.buffers:
            raise KernelError(f"buffer {buffer.vaddr:#x} not owned by "
                              f"{owner.name}")
        eff_perm = perm if perm is not None else buffer.perm
        vaddr = peer.take_vrange(buffer.size)
        peer.page_table.map_range(vaddr, buffer.paddr, buffer.size,
                                  eff_perm, user=True)
        shared = Buffer(vaddr=vaddr, paddr=buffer.paddr, size=buffer.size,
                        perm=eff_perm)
        peer.record_buffer(shared)
        if peer.dma is not None and peer.dma.method in _SHADOW_METHODS:
            self._shadow_buffer(peer, shared)
        self._grant_dma_resources(peer, shared)
        if peer.atomic is not None:
            self.map_atomic_shadow(peer, shared)
        return vaddr

    def map_remote_window(self, proc: Process, global_paddr: int,
                          nbytes: int) -> int:
        """Create shadow-only mappings naming remote memory.

        On a NOW with a global physical address space (Telegraphos-style)
        a process DMAs to remote memory by presenting shadow addresses
        that decode to global addresses on another node.  The returned
        virtual base has *no data mapping* (the memory is not local);
        only its shadow image exists, so it can be used exactly like a
        local destination in any initiation sequence.

        Returns:
            The virtual base; pass ``base + offset`` as vdestination.
        """
        if nbytes <= 0 or nbytes % PAGE_SIZE or global_paddr % PAGE_SIZE:
            raise KernelError(
                "remote window must be page-aligned whole pages")
        vaddr = proc.take_vrange(nbytes)
        proc.remote_windows.append((vaddr, global_paddr, nbytes))
        if proc.dma is not None:
            # User-level methods get shadow mappings so their sequences
            # can name the remote destination directly.
            ctx_bits = proc.dma.shadow_ctx_bits
            from .process import shadow_vaddr

            for offset in range(0, nbytes, PAGE_SIZE):
                proc.page_table.map_range(
                    shadow_vaddr(vaddr + offset),
                    self.engine.layout.shadow_paddr(
                        global_paddr + offset, ctx_bits),
                    PAGE_SIZE, Perm.RW, user=True, uncached=True)
        # Kernel-method processes use the window through the dma syscall,
        # which resolves it from proc.remote_windows.
        return vaddr

    def _globalize(self, paddr: int) -> int:
        """Encode a local physical address for the engine's address space.

        NICs on a cluster fabric speak global addresses; a plain DMA
        engine (or node 0, where global == local) is the identity.
        """
        encode = getattr(self.engine, "global_address", None)
        if encode is None:
            return paddr
        return encode(paddr)

    # ------------------------------------------------------------------
    # user-level DMA setup (§3)
    # ------------------------------------------------------------------

    def enable_user_dma(self, proc: Process) -> DmaBinding:
        """Grant *proc* the user-level DMA method the engine is wired for.

        Allocates a register context and key where the method needs them.
        Must run before shadowed buffers are allocated (the extended-
        shadow CONTEXT_ID is baked into the mappings).

        Raises:
            KernelError: if already enabled, if the engine runs the
                kernel-only protocol, or if no register context is free
                (§3.2: "the rest will have to go through the kernel").
        """
        if proc.dma is not None:
            raise KernelError(f"{proc.name} already has a DMA binding")
        method = self.engine.protocol.name
        if method == "kernel":
            raise KernelError(
                "the engine runs the kernel-only protocol; user-level DMA "
                "is unavailable")
        binding = DmaBinding(method=method)
        if method in _CONTEXT_METHODS:
            if not self._free_dma_contexts:
                raise KernelError(
                    "no free DMA register context; fall back to the "
                    "kernel path")
            ctx_id = self._free_dma_contexts.pop(0)
            self.engine.assign_context(ctx_id, proc.pid)
            binding.ctx_id = ctx_id
            binding.ctx_page_vaddr = CTX_PAGE_VADDR
            self.vmm.map_device_page(
                proc, CTX_PAGE_VADDR,
                self.engine.layout.context_page_paddr(ctx_id), Perm.RW)
            if method == "keyed":
                key = next(self._secrets)
                self.engine.install_key(ctx_id, key)
                binding.key = key
            elif method in _EXT_BITS_METHODS:
                # extshadow and iommu: the ctx id rides in the mappings.
                binding.shadow_ctx_bits = ctx_id
            if method in _CAPIO_METHODS:
                # Map the offset window: a store to window + offset
                # presents *offset* to the engine; the capability token
                # in the data word names the buffer.
                binding.capio_window_vaddr = CAPIO_WINDOW_VADDR
                for page in range(_CAPIO_WINDOW_PAGES):
                    self.vmm.map_device_page(
                        proc, CAPIO_WINDOW_VADDR + page * PAGE_SIZE,
                        self.engine.layout.shadow_paddr(page * PAGE_SIZE),
                        Perm.RW)
        proc.dma = binding
        return binding

    def release_user_dma(self, proc: Process) -> None:
        """Revoke *proc*'s DMA binding, scrubbing engine state and keys."""
        if proc.dma is None:
            return
        if proc.dma.ctx_id is not None:
            self.engine.release_context(proc.dma.ctx_id)
            self._free_dma_contexts.append(proc.dma.ctx_id)
        proc.dma = None

    def map_out(self, src_proc: Process, vsrc: int, dst_proc: Process,
                vdst: int, nbytes: int = PAGE_SIZE) -> None:
        """Install SHRIMP-1 mapped-out entries page-by-page (§2.4).

        Both virtual ranges must be mapped with the right permissions;
        the engine's mapped-out table then pins src-page -> dst-page.
        """
        src_proc.page_table.check_range(vsrc, nbytes, "read")
        dst_proc.page_table.check_range(vdst, nbytes, "write")
        for index, vpn in enumerate(pages_covering(vsrc, nbytes)):
            psrc = src_proc.page_table.translate(vpn * PAGE_SIZE, "read")
            pdst = dst_proc.page_table.translate(
                page_base(vdst) + index * PAGE_SIZE, "write")
            self.engine.install_mapout(
                page_base(self._globalize(psrc)),
                page_base(self._globalize(pdst)))

    def map_out_global(self, src_proc: Process, vsrc: int,
                       global_pdst: int) -> None:
        """Map out one source page to a global (possibly remote) address."""
        psrc = src_proc.page_table.translate(vsrc, "read")
        self.engine.install_mapout(page_base(self._globalize(psrc)),
                                   page_base(global_pdst))

    # ------------------------------------------------------------------
    # modern-method kernel management (untimed setup paths)
    # ------------------------------------------------------------------

    def iommu_map(self, proc: Process, iova: int, paddr: int, nbytes: int,
                  writable: bool = True) -> None:
        """Install I/O page-table entries for *proc*'s register context.

        Page-by-page: IOVA page ``iova + k*PAGE`` maps to physical frame
        ``paddr + k*PAGE``.  Both must be page-aligned.

        Raises:
            KernelError: if the process is not bound to an iommu method.
        """
        binding = self._iommu_binding(proc)
        if iova % PAGE_SIZE or paddr % PAGE_SIZE or nbytes <= 0:
            raise KernelError("iommu mappings must be page-aligned")
        for offset in range(0, nbytes, PAGE_SIZE):
            self.engine.protocol.apply_setup(SetupOp(
                "iommu-map", (binding.ctx_id, iova + offset,
                              self._globalize(paddr + offset), writable)))

    def iommu_unmap(self, proc: Process, iova: int,
                    nbytes: int = PAGE_SIZE) -> None:
        """Remove I/O page-table entries (IOTLB shoot-down included
        when the engine runs the correct ``iommu`` protocol)."""
        binding = self._iommu_binding(proc)
        for offset in range(0, nbytes, PAGE_SIZE):
            self.engine.protocol.apply_setup(SetupOp(
                "iommu-unmap", (binding.ctx_id, iova + offset)))

    def _iommu_binding(self, proc: Process) -> DmaBinding:
        binding = proc.dma
        if binding is None or binding.method not in _IOMMU_METHODS \
                or binding.ctx_id is None:
            raise KernelError(
                f"{proc.name} has no iommu DMA binding")
        return binding

    def mint_capability(self, proc: Process, buffer: Buffer,
                        readable: bool = True,
                        writable: bool = True) -> CapabilityDescriptor:
        """Mint a capability over *buffer* for *proc* (capio methods).

        Installs the capability in the engine's table and returns the
        descriptor user code builds tokens from.

        Raises:
            KernelError: if the process is not bound to a capio method.
        """
        binding = self._capio_binding(proc)
        cap_id = self._next_cap_id
        self._next_cap_id += 1
        nonce = next(self._secrets) & ((1 << NONCE_FIELD_BITS) - 1)
        self.engine.protocol.apply_setup(SetupOp(
            "cap-mint", (cap_id, binding.ctx_id, proc.pid,
                         self._globalize(buffer.paddr), buffer.size,
                         readable, writable, nonce)))
        descriptor = CapabilityDescriptor(
            cap_id=cap_id, nonce=nonce, epoch=0,
            vaddr=buffer.vaddr, size=buffer.size)
        binding.capabilities[buffer.vaddr] = descriptor
        return descriptor

    def revoke_capability(self, proc: Process,
                          descriptor: CapabilityDescriptor) -> None:
        """Revoke a capability by bumping its epoch.

        Tokens built from *descriptor* (and any copies of it) stop
        validating at the engine — even ones already latched, because
        the start re-validates both arguments.
        """
        self._capio_binding(proc)
        self.engine.protocol.apply_setup(SetupOp(
            "cap-revoke", (descriptor.cap_id,)))
        if proc.dma is not None:
            proc.dma.capabilities.pop(descriptor.vaddr, None)

    def _capio_binding(self, proc: Process) -> DmaBinding:
        binding = proc.dma
        if binding is None or binding.method not in _CAPIO_METHODS \
                or binding.ctx_id is None:
            raise KernelError(
                f"{proc.name} has no capio DMA binding")
        return binding

    # ------------------------------------------------------------------
    # user-level atomic setup (§3.5)
    # ------------------------------------------------------------------

    def enable_user_atomics(self, proc: Process) -> AtomicBinding:
        """Grant *proc* user-level atomic operations.

        Raises:
            KernelError: if the machine has no atomic unit, the binding
                exists, or contexts ran out.
        """
        if self.atomic_unit is None:
            raise KernelError("this machine has no atomic unit")
        if proc.atomic is not None:
            raise KernelError(f"{proc.name} already has an atomic binding")
        if not self._free_atomic_contexts:
            raise KernelError("no free atomic context")
        ctx_id = self._free_atomic_contexts.pop(0)
        self.atomic_unit.assign_context(ctx_id, proc.pid)
        binding = AtomicBinding(mode=self.atomic_unit.mode, ctx_id=ctx_id,
                                ctx_page_vaddr=ATOMIC_CTX_VADDR)
        self.vmm.map_device_page(
            proc, ATOMIC_CTX_VADDR,
            self.atomic_unit.layout.context_page_paddr(ctx_id), Perm.RW)
        if self.atomic_unit.mode == "keyed":
            key = next(self._secrets)
            self.atomic_unit.install_key(ctx_id, key)
            binding.key = key
        proc.atomic = binding
        # Retroactively shadow existing buffers for the atomic unit.
        for buffer in proc.buffers:
            self.map_atomic_shadow(proc, buffer)
        return binding

    def map_atomic_shadow(self, proc: Process, buffer: Buffer) -> None:
        """Create the atomic-unit shadow mappings for *buffer*.

        One mapping per (opcode, page) pair: the opcode rides in the
        virtual offset, the CONTEXT_ID in the physical address bits (the
        extended-shadow flavour) or nowhere (the keyed flavour, which
        names the context in the data word).
        """
        if self.atomic_unit is None or proc.atomic is None:
            return
        from .process import atomic_shadow_vaddr

        binding = proc.atomic
        ctx_bits = (binding.ctx_id
                    if self.atomic_unit.mode == "extshadow" else 0)
        layout = self.atomic_unit.layout
        n_ops = 1 << layout.op_bits
        for op in range(n_ops):
            for offset in range(0, buffer.size, PAGE_SIZE):
                vaddr = atomic_shadow_vaddr(op, buffer.vaddr + offset)
                if vaddr in proc.page_table:
                    continue
                paddr = layout.shadow_paddr(
                    op, self._globalize(buffer.paddr + offset), ctx_bits)
                proc.page_table.map_range(vaddr, paddr, PAGE_SIZE,
                                          buffer.perm, user=True,
                                          uncached=True)

    def map_remote_atomic_window(self, proc: Process, global_paddr: int,
                                 nbytes: int) -> int:
        """Shadow-only atomic mappings naming remote memory.

        Like :meth:`map_remote_window`, but for the atomic unit: the
        returned virtual base can be used as the target of user-level
        atomic operations executed at the remote node (§3.5 on the NOW).
        """
        if self.atomic_unit is None:
            raise KernelError("this machine has no atomic unit")
        if proc.atomic is None:
            raise KernelError(
                f"{proc.name}: remote atomic windows need an atomic "
                f"binding first")
        if nbytes <= 0 or nbytes % PAGE_SIZE or global_paddr % PAGE_SIZE:
            raise KernelError(
                "remote atomic window must be page-aligned whole pages")
        vaddr = proc.take_vrange(nbytes)
        from .process import atomic_shadow_vaddr as _asv

        binding = proc.atomic
        ctx_bits = (binding.ctx_id
                    if self.atomic_unit.mode == "extshadow" else 0)
        layout = self.atomic_unit.layout
        for op in range(1 << layout.op_bits):
            for offset in range(0, nbytes, PAGE_SIZE):
                proc.page_table.map_range(
                    _asv(op, vaddr + offset),
                    layout.shadow_paddr(op, global_paddr + offset,
                                        ctx_bits),
                    PAGE_SIZE, Perm.RW, user=True, uncached=True)
        return vaddr

    # ------------------------------------------------------------------
    # syscalls (timed — the Fig. 1 baseline path)
    # ------------------------------------------------------------------

    def _register_syscalls(self) -> None:
        self.cpu.register_syscall("dma", self._sys_dma)
        self.cpu.register_syscall("atomic_add", self._sys_atomic_add)
        self.cpu.register_syscall("atomic_fas", self._sys_atomic_fas)
        self.cpu.register_syscall("atomic_cas", self._sys_atomic_cas)

    def _sys_dma(self, thread: Thread, cpu: Cpu) -> int:
        """The Fig. 1 kernel-level DMA: translate, check, poke registers."""
        proc = self._proc_of(thread)
        vsrc = thread.reg("a0")
        vdst = thread.reg("a1")
        size = thread.reg("a2")
        self.charge(self.costs.syscall_dispatch_cycles)
        try:
            if size <= 0:
                raise ProtectionFault(vsrc, "dma-size")
            psrc = self.virtual_to_physical(proc, vsrc, "read")
            global_dst = self._resolve_destination(proc, vdst, size)
            npages = (size + PAGE_SIZE - 1) // PAGE_SIZE
            self.charge(self.costs.range_check_cycles_per_page * npages)
            proc.page_table.check_range(vsrc, size, "read")
        except (PageFault, ProtectionFault):
            return STATUS_FAILURE
        control = self._dma_control_base()
        self.device_write(control + REG_SOURCE, self._globalize(psrc),
                          thread)
        self.device_write(control + REG_DESTINATION, global_dst, thread)
        self.device_write(control + REG_SIZE, size, thread)
        return self.device_read(control + REG_STATUS, thread)

    def _resolve_destination(self, proc: Process, vdst: int,
                             size: int) -> int:
        """Translate a DMA destination, honouring granted remote windows.

        A locally mapped destination is translated and range-checked as
        in Fig. 1.  An unmapped destination inside a remote window the
        kernel granted earlier resolves to its global address (the
        remote node checks nothing further — deposits go straight to
        memory, as in the SHRIMP/Telegraphos model).
        """
        remote = proc.remote_window_at(vdst)
        if remote is not None:
            self.charge(self.costs.translation_cycles)
            # The whole transfer must stay inside ONE granted window —
            # two windows with a gap between them must not be bridged.
            for base, _global, window_size in proc.remote_windows:
                if base <= vdst < base + window_size:
                    if vdst + max(size, 1) > base + window_size:
                        raise ProtectionFault(vdst, "write")
                    break
            return remote
        pdst = self.virtual_to_physical(proc, vdst, "write")
        if size > 0:
            npages = (size + PAGE_SIZE - 1) // PAGE_SIZE
            self.charge(self.costs.range_check_cycles_per_page * npages)
            proc.page_table.check_range(vdst, size, "write")
        return self._globalize(pdst)

    def _sys_atomic_add(self, thread: Thread, cpu: Cpu) -> int:
        return self._sys_atomic(thread, OP_ADD)

    def _sys_atomic_fas(self, thread: Thread, cpu: Cpu) -> int:
        return self._sys_atomic(thread, OP_FETCH_STORE)

    def _sys_atomic_cas(self, thread: Thread, cpu: Cpu) -> int:
        return self._sys_atomic(thread, OP_CAS)

    def _sys_atomic(self, thread: Thread, op: int) -> int:
        """Kernel-level atomic operation (the §3.5 baseline)."""
        if self.atomic_unit is None:
            return STATUS_FAILURE
        proc = self._proc_of(thread)
        vtarget = thread.reg("a0")
        operand = thread.reg("a1")
        operand2 = thread.reg("a2")
        self.charge(self.costs.syscall_dispatch_cycles)
        try:
            ptarget = self.virtual_to_physical(proc, vtarget, "write")
            proc.page_table.translate(vtarget, "read")
        except (PageFault, ProtectionFault):
            return STATUS_FAILURE
        control = (self.atomic_unit.layout.window_base
                   + self.atomic_unit.layout.control_page * PAGE_SIZE)
        self.device_write(control + REG_TARGET, self._globalize(ptarget),
                          thread)
        self.device_write(control + REG_OPERAND, operand, thread)
        if op == OP_CAS:
            self.device_write(control + REG_OPERAND2, operand2, thread)
        self.device_write(control + REG_OPCODE, op, thread)
        return self.device_read(control + REG_RESULT, thread)

    # ------------------------------------------------------------------
    # context-switch hooks: the kernel modifications our methods avoid
    # ------------------------------------------------------------------

    def shrimp_abort_hook(self) -> SwitchHook:
        """Build the SHRIMP-2 kernel modification (§2.5).

        "The operating system must invalidate any partially initiated
        user-level DMA transfer on every context switch."
        """
        control = self._dma_control_base()

        def hook(old: Optional[Process], new: Process) -> None:
            self.charge(self.costs.hook_call_cycles)
            self.device_write(control + REG_ABORT, 1, None)

        return hook

    def flash_current_pid_hook(self) -> SwitchHook:
        """Build the FLASH kernel modification (§2.6).

        "The context switch handler informs the DMA engine about which
        process is currently running."
        """
        control = self._dma_control_base()

        def hook(old: Optional[Process], new: Process) -> None:
            self.charge(self.costs.hook_call_cycles)
            self.device_write(control + REG_CURRENT_PID, new.pid, None)

        return hook

    # ------------------------------------------------------------------
    # timed kernel primitives
    # ------------------------------------------------------------------

    def charge(self, cycles: float) -> None:
        """Spend *cycles* of CPU time on kernel work."""
        self.sim.advance(self.cpu.clock.cycles(cycles))

    def virtual_to_physical(self, proc: Process, vaddr: int,
                            access: str) -> int:
        """Fig. 1's software translation with access-rights check."""
        self.charge(self.costs.translation_cycles)
        return proc.page_table.translate(vaddr, access, user_mode=True)

    def device_write(self, paddr: int, value: int,
                     thread: Optional[Thread]) -> None:
        """An uncached privileged register write, fully timed."""
        self.charge(self.cpu.costs.uncached_issue_cycles)
        ctx = AccessContext(
            issuer=thread.pid if thread is not None else None,
            kernel=True, when=self.sim.now)
        cost: Time = self.bus.write_word(paddr, value, ctx)
        self.sim.advance(cost)

    def device_read(self, paddr: int, thread: Optional[Thread]) -> int:
        """An uncached privileged register read, fully timed."""
        self.charge(self.cpu.costs.uncached_issue_cycles)
        ctx = AccessContext(
            issuer=thread.pid if thread is not None else None,
            kernel=True, when=self.sim.now)
        value, cost = self.bus.read_word(paddr, ctx)
        self.sim.advance(cost)
        return value

    # ------------------------------------------------------------------

    def _dma_control_base(self) -> int:
        return (self.engine.layout.window_base
                + self.engine.layout.control_page_offset)

    def _proc_of(self, thread: Thread) -> Process:
        proc = self.processes.get(thread.pid)
        if proc is None:
            raise KernelError(f"no process with pid {thread.pid}")
        return proc
