"""Processes: address spaces plus the DMA/atomic resources the OS granted.

A :class:`Process` owns a page table, a simple bump allocator for user
virtual addresses, and its threads.  The OS records in the process the
user-level DMA resources it handed out — the method, the register-context
id, the secret key, and where the context page is mapped — because user
code needs those values to build its initiation sequences (the paper:
"The key is given to the user process by the operating system").

Virtual-address layout (all constants page-aligned)::

    USER_BASE          0x0000_0000_0001_0000   data buffers grow upward
    CTX_PAGE_VADDR     0x0000_0400_0000_0000   the register-context page
    ATOMIC_CTX_VADDR   CTX_PAGE_VADDR + PAGE   the atomic-context page
    SHADOW_VOFFSET     0x0000_1000_0000_0000   shadow(v) = v + offset
    ATOMIC_VOFFSET     0x0000_2000_0000_0000   atomic shadow of (op, v) =
                                               v + offset + op * OP_STRIDE

Fixed offsets make shadow addresses *computable* by user code (and by the
two-instruction PAL function, which must derive ``shadow(vaddr)`` from a
register argument with a single displacement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import KernelError
from ..hw.cpu import Thread
from ..hw.isa import Program
from ..hw.pagetable import PAGE_MASK, PAGE_SIZE, PageTable, Perm

USER_BASE = 0x0000_0000_0001_0000
CTX_PAGE_VADDR = 0x0000_0400_0000_0000
ATOMIC_CTX_VADDR = CTX_PAGE_VADDR + PAGE_SIZE
#: Base of the capio offset window: page k maps shadow offset k*PAGE,
#: so a store to ``window + offset`` presents *offset* to the engine.
CAPIO_WINDOW_VADDR = CTX_PAGE_VADDR + 2 * PAGE_SIZE
SHADOW_VOFFSET = 0x0000_1000_0000_0000
ATOMIC_VOFFSET = 0x0000_2000_0000_0000
ATOMIC_OP_STRIDE = 0x0000_0100_0000_0000


def shadow_vaddr(vaddr: int) -> int:
    """The virtual address of the shadow image of *vaddr*."""
    return vaddr + SHADOW_VOFFSET


def atomic_shadow_vaddr(op: int, vaddr: int) -> int:
    """The virtual address of the atomic-unit shadow of (*op*, *vaddr*)."""
    return vaddr + ATOMIC_VOFFSET + op * ATOMIC_OP_STRIDE


@dataclass
class Buffer:
    """A user buffer the kernel allocated.

    Attributes:
        vaddr: user virtual base.
        paddr: physical base (physically contiguous).
        size: bytes (whole pages).
        perm: user permissions on the data pages.
        shadowed: whether shadow mappings were created for it.
    """

    vaddr: int
    paddr: int
    size: int
    perm: Perm
    shadowed: bool = False


@dataclass(frozen=True)
class CapabilityDescriptor:
    """What the kernel hands user code about one minted capability.

    The secret nonce makes tokens built from the descriptor validate;
    ``epoch`` is the epoch the capability was minted under — after a
    revocation the kernel's table moves on and tokens built from this
    (now stale) descriptor stop validating.
    """

    cap_id: int
    nonce: int
    epoch: int
    vaddr: int
    size: int


@dataclass
class DmaBinding:
    """User-level DMA resources granted to a process.

    Attributes:
        method: initiation method name (see repro.core.methods).
        ctx_id: assigned register context, if the method uses one.
        key: the secret key, if the method uses one.
        shadow_ctx_bits: CONTEXT_ID embedded in this process's shadow
            mappings (0 unless the method is extended shadow addressing
            or the iommu method, whose shadow mappings carry it too).
        ctx_page_vaddr: where the context page is mapped, if mapped.
        capabilities: buffer vaddr -> capability descriptor (capio).
        capio_window_vaddr: base of the capio offset window, if mapped.
    """

    method: str
    ctx_id: Optional[int] = None
    key: Optional[int] = None
    shadow_ctx_bits: int = 0
    ctx_page_vaddr: Optional[int] = None
    capabilities: Dict[int, CapabilityDescriptor] = field(
        default_factory=dict)
    capio_window_vaddr: Optional[int] = None

    def capability_for(self, vaddr: int) -> Optional[CapabilityDescriptor]:
        """The descriptor whose buffer range contains *vaddr*, or None."""
        for desc in self.capabilities.values():
            if desc.vaddr <= vaddr < desc.vaddr + desc.size:
                return desc
        return None


@dataclass
class AtomicBinding:
    """User-level atomic-operation resources granted to a process."""

    mode: str
    ctx_id: Optional[int] = None
    key: Optional[int] = None
    ctx_page_vaddr: Optional[int] = None


class Process:
    """One OS process.

    Created through :meth:`repro.os.kernel.Kernel.spawn`; user code then
    asks the kernel for buffers and DMA/atomic bindings, builds programs
    against them, and runs threads.
    """

    def __init__(self, pid: int, name: str = "") -> None:
        self.pid = pid
        self.name = name or f"proc{pid}"
        self.page_table = PageTable(owner=self.name)
        self.buffers: List[Buffer] = []
        self.dma: Optional[DmaBinding] = None
        self.atomic: Optional[AtomicBinding] = None
        self.threads: List[Thread] = []
        #: Remote windows the OS granted: (vaddr, global_paddr, size).
        self.remote_windows: List[tuple] = []
        self._brk = USER_BASE
        self._buffer_by_vaddr: Dict[int, Buffer] = {}

    # -- address space ----------------------------------------------------------

    def take_vrange(self, nbytes: int) -> int:
        """Reserve a page-aligned virtual range; returns its base."""
        if nbytes <= 0 or nbytes & PAGE_MASK:
            raise KernelError(
                f"virtual range must be a positive page multiple: {nbytes}")
        base = self._brk
        self._brk += nbytes
        return base

    def record_buffer(self, buffer: Buffer) -> None:
        """Track a kernel-allocated buffer."""
        self.buffers.append(buffer)
        self._buffer_by_vaddr[buffer.vaddr] = buffer

    def buffer_at(self, vaddr: int) -> Optional[Buffer]:
        """The buffer whose range contains *vaddr*, or None."""
        for buffer in self.buffers:
            if buffer.vaddr <= vaddr < buffer.vaddr + buffer.size:
                return buffer
        return None

    def remote_window_at(self, vaddr: int) -> Optional[int]:
        """The global physical address *vaddr* names through a granted
        remote window, or None."""
        for base, global_paddr, size in self.remote_windows:
            if base <= vaddr < base + size:
                return global_paddr + (vaddr - base)
        return None

    # -- threads -------------------------------------------------------------------

    def new_thread(self, program: Program) -> Thread:
        """Create a thread of this process running *program*."""
        thread = Thread(pid=self.pid, page_table=self.page_table,
                        program=program)
        self.threads.append(thread)
        return thread

    # -- conveniences for user-side code ----------------------------------------------

    @property
    def dma_binding(self) -> DmaBinding:
        """The DMA binding (raises if the OS has not granted one)."""
        if self.dma is None:
            raise KernelError(
                f"{self.name} has no user-level DMA binding; call "
                f"Kernel.enable_user_dma first")
        return self.dma

    @property
    def atomic_binding(self) -> AtomicBinding:
        """The atomic binding (raises if the OS has not granted one)."""
        if self.atomic is None:
            raise KernelError(
                f"{self.name} has no atomic binding; call "
                f"Kernel.enable_user_atomics first")
        return self.atomic

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, name={self.name!r})"
