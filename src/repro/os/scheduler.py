"""The preemptive scheduler.

Interleaves threads from multiple processes on the single CPU,
preempting only *between* instructions (hardware interrupts never split
an instruction, and PAL calls/syscalls execute inside one step).  This is
the exact adversary model of the paper: a process can lose the CPU
between any two instructions of its initiation sequence.

Context switches charge the OS cost model, swap the active page table
(flushing the TLB), drain the write buffer, and then fire any installed
**hooks** — which is where the SHRIMP-2 and FLASH kernel modifications
plug in.  Running without those hooks *is* the paper's "unmodified
kernel".

Policies decide when to preempt and who runs next; the random-preemption
policy (seeded) drives the stress experiments, and the scripted policy
replays exact interleavings such as Figs. 5 and 6 at whole-machine level.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SchedulerError
from ..hw.cpu import Cpu, StepStatus, Thread
from ..sim.engine import Simulator
from ..sim.stats import StatRegistry
from ..sim.trace import TraceLog
from .costs import OsCosts
from .kernel import SwitchHook
from .process import Process


class SchedulingPolicy(ABC):
    """Decides preemption points and the next thread to run."""

    @abstractmethod
    def should_preempt(self, thread: Thread, ran_in_quantum: int) -> bool:
        """Whether to preempt *thread* after *ran_in_quantum* instructions."""

    def choose_next(self, ready: Sequence[Thread],
                    current: Optional[Thread]) -> Thread:
        """Pick the next thread (default: round-robin after current)."""
        if not ready:
            raise SchedulerError("no ready threads")
        if current is None or current not in ready:
            return ready[0]
        index = (list(ready).index(current) + 1) % len(ready)
        return ready[index]


class RoundRobinPolicy(SchedulingPolicy):
    """Fixed instruction quantum, round-robin order."""

    def __init__(self, quantum: int = 50) -> None:
        if quantum <= 0:
            raise SchedulerError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum

    def should_preempt(self, thread: Thread, ran_in_quantum: int) -> bool:
        return ran_in_quantum >= self.quantum


class RandomPreemptionPolicy(SchedulingPolicy):
    """Preempt after each instruction with probability *p* (seeded).

    This is the adversarially dense interleaving generator for the stress
    experiments: every instruction boundary is a potential switch point.
    """

    def __init__(self, p: float, rng: random.Random) -> None:
        if not 0 <= p <= 1:
            raise SchedulerError(f"probability must be in [0,1], got {p}")
        self.p = p
        self.rng = rng

    def should_preempt(self, thread: Thread, ran_in_quantum: int) -> bool:
        return self.rng.random() < self.p

    def choose_next(self, ready: Sequence[Thread],
                    current: Optional[Thread]) -> Thread:
        return self.rng.choice(list(ready))


class ScriptedPolicy(SchedulingPolicy):
    """Replay an exact interleaving, given as a list of thread indices.

    ``script[k]`` is the index (into the scheduler's thread list) of the
    thread that must execute the k-th instruction.  Used to reproduce the
    paper's Fig. 5 / Fig. 6 attack interleavings on the full machine.
    """

    def __init__(self, script: Sequence[int]) -> None:
        self.script = list(script)
        self._cursor = 0
        self._order: List[Thread] = []

    def bind(self, threads: Sequence[Thread]) -> None:
        """Associate script indices with concrete threads."""
        self._order = list(threads)

    def should_preempt(self, thread: Thread, ran_in_quantum: int) -> bool:
        return True  # re-decide after every instruction

    def choose_next(self, ready: Sequence[Thread],
                    current: Optional[Thread]) -> Thread:
        while self._cursor < len(self.script):
            wanted = self._order[self.script[self._cursor]]
            self._cursor += 1
            if wanted in ready:
                return wanted
            # Scripted thread already finished; skip its slot.
        # Script exhausted: fall back to round-robin over what is left.
        return super().choose_next(ready, current)


class Scheduler:
    """Runs threads preemptively on one CPU."""

    def __init__(self, sim: Simulator, cpu: Cpu, costs: OsCosts,
                 policy: SchedulingPolicy,
                 trace: Optional[TraceLog] = None) -> None:
        self.sim = sim
        self.cpu = cpu
        self.costs = costs
        self.policy = policy
        self.trace = trace if trace is not None else TraceLog()
        self.stats = StatRegistry("sched")
        self.hooks: List[SwitchHook] = []
        self._threads: List[Thread] = []
        self._owner: Dict[int, Process] = {}

    # -- configuration --------------------------------------------------------

    def install_hook(self, hook: SwitchHook) -> None:
        """Install a context-switch hook (the kernel-modification model)."""
        self.hooks.append(hook)

    def add(self, proc: Process, thread: Thread) -> None:
        """Add *thread* (owned by *proc*) to the run queue."""
        if thread.pid != proc.pid:
            raise SchedulerError(
                f"thread pid {thread.pid} does not match {proc}")
        self._threads.append(thread)
        self._owner[id(thread)] = proc
        if isinstance(self.policy, ScriptedPolicy):
            self.policy.bind(self._threads)

    # -- the run loop ---------------------------------------------------------------

    def run(self, max_instructions: int = 1_000_000
            ) -> Tuple[int, List[Thread]]:
        """Run until every thread halts/faults or the budget is spent.

        Returns:
            (context switches performed, threads in completion order).
        """
        completed: List[Thread] = []
        switches = 0
        current: Optional[Thread] = None
        ran_in_quantum = 0
        budget = max_instructions
        while budget > 0:
            ready = [t for t in self._threads if not t.done]
            if not ready:
                break
            if current is None or current.done or (
                    ran_in_quantum > 0
                    and self.policy.should_preempt(current, ran_in_quantum)):
                chosen = self.policy.choose_next(ready, current)
                if chosen is not current:
                    self._context_switch(current, chosen)
                    switches += 1
                current = chosen
                ran_in_quantum = 0
            status = self.cpu.step(current)
            ran_in_quantum += 1
            budget -= 1
            if status is not StepStatus.RUNNING:
                completed.append(current)
                self.stats.counter("threads_completed").add()
        if budget <= 0 and any(not t.done for t in self._threads):
            raise SchedulerError(
                f"instruction budget {max_instructions} exhausted with "
                f"threads still runnable")
        return switches, completed

    # -- internals ------------------------------------------------------------------------

    def _context_switch(self, old: Optional[Thread], new: Thread) -> None:
        self.stats.counter("context_switches").add()
        self.sim.advance(
            self.cpu.clock.cycles(self.costs.context_switch_cycles))
        if old is not None:
            # The hardware drains posted stores while state is saved.
            self.cpu.drain_write_buffer(old)
        if self.cpu.cache is not None:
            # Cold-cache context-switch model (the OS locality effect
            # Ousterhout and Rosenblum measured).
            self.cpu.cache.flush()
        self.cpu.mmu.activate(new.page_table, flush=True)
        new_proc = self._owner[id(new)]
        old_proc = self._owner.get(id(old)) if old is not None else None
        for hook in self.hooks:
            hook(old_proc, new_proc)
        self.trace.emit(self.sim.now, "sched", "switch",
                        old=old_proc.pid if old_proc else None,
                        new=new_proc.pid)
