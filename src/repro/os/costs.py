"""The OS cost model.

The paper's quantitative claim rests on two observations it cites from
Ousterhout and from lmbench: operating systems do not speed up as fast as
hardware, and "the overhead of an empty system call of commercial
UNIX-like operating systems ranges between 1,000 and 5,000 processor
cycles".  The trap entry/exit cycles live in
:class:`repro.hw.cpu.CpuCosts`; this module prices the work the kernel
does *inside* the DMA syscall (Fig. 1) and on the context-switch path.

All values are CPU cycles; DESIGN.md §6 records the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OsCosts:
    """Cycle costs of kernel work.

    Attributes:
        translation_cycles: one software ``virtual_to_physical`` walk with
            its access-rights check (Fig. 1 does two of these).
        range_check_cycles_per_page: per-page cost of ``check_size()``
            validating the whole transfer range.
        syscall_dispatch_cycles: argument copy-in and handler dispatch.
        context_switch_cycles: save/restore register state, switch address
            space, scheduler bookkeeping (TLB refill costs accrue
            separately through the MMU model).
        hook_call_cycles: invoking one installed context-switch hook (the
            incremental cost of the SHRIMP/FLASH kernel modification,
            excluding its device accesses).
    """

    translation_cycles: float = 100.0
    range_check_cycles_per_page: float = 20.0
    syscall_dispatch_cycles: float = 40.0
    context_switch_cycles: float = 600.0
    hook_call_cycles: float = 10.0
