"""The kernel's virtual-memory manager.

Allocates physically contiguous user buffers (DMA engines speak physical
addresses, so a multi-page transfer needs contiguous frames — the same
simplification real drivers make with pinned, contiguous DMA buffers) and
creates the *shadow mappings* of §2.3: for every data page, a second
uncached mapping at a fixed virtual offset whose physical side is the
``shadow()`` image of the data frame.

Shadow permissions mirror the data page's permissions.  This is what makes
the MMU the protection check: a process can only ever present the engine
with shadow addresses of frames it has rights on, with the right kind of
access (a store-passed argument needs write permission, a load-passed one
needs read permission — hence the paper's note that the key-based method,
which passes the source by store, requires read *and* write access to the
source).
"""

from __future__ import annotations

from typing import Callable

from ..errors import KernelError
from ..hw.memory import FrameAllocator
from ..hw.pagetable import PAGE_MASK, PAGE_SIZE, Perm
from .process import Buffer, Process, shadow_vaddr

#: Maps a data-frame physical address to its shadow physical address.
ShadowEncoder = Callable[[int], int]


class VirtualMemoryManager:
    """Buffer allocation and mapping services used by the kernel."""

    def __init__(self, allocator: FrameAllocator) -> None:
        self.allocator = allocator

    def alloc_buffer(self, proc: Process, nbytes: int,
                     perm: Perm = Perm.RW) -> Buffer:
        """Allocate a physically contiguous buffer and map it for *proc*.

        *nbytes* is rounded up to whole pages.

        Raises:
            KernelError: for a non-positive size.
        """
        if nbytes <= 0:
            raise KernelError(f"buffer size must be positive, got {nbytes}")
        size = (nbytes + PAGE_MASK) & ~PAGE_MASK
        paddr = self.allocator.alloc_contiguous(size // PAGE_SIZE)
        vaddr = proc.take_vrange(size)
        proc.page_table.map_range(vaddr, paddr, size, perm, user=True)
        buffer = Buffer(vaddr=vaddr, paddr=paddr, size=size, perm=perm)
        proc.record_buffer(buffer)
        return buffer

    def map_shadow(self, proc: Process, buffer: Buffer,
                   encode: ShadowEncoder) -> None:
        """Create the shadow mappings for every page of *buffer*.

        The virtual side is ``shadow_vaddr(data_vaddr)``; the physical
        side is ``encode(data_paddr)``; permissions mirror the data
        page's; the mapping is uncached (it reaches a device).

        Raises:
            KernelError: if the buffer is already shadowed.
        """
        if buffer.shadowed:
            raise KernelError(
                f"buffer at {buffer.vaddr:#x} is already shadowed")
        for offset in range(0, buffer.size, PAGE_SIZE):
            data_v = buffer.vaddr + offset
            data_p = buffer.paddr + offset
            proc.page_table.map_range(
                shadow_vaddr(data_v), encode(data_p), PAGE_SIZE,
                buffer.perm, user=True, uncached=True)
        buffer.shadowed = True

    def map_device_page(self, proc: Process, vaddr: int,
                        device_paddr: int, perm: Perm = Perm.RW) -> None:
        """Map one device page (e.g. a register-context page) for *proc*."""
        proc.page_table.map_range(vaddr, device_paddr, PAGE_SIZE, perm,
                                  user=True, uncached=True)
