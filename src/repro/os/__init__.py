"""The operating-system substrate.

Models exactly as much OS as the paper's argument needs: a kernel with a
costly syscall path (the Fig. 1 baseline), software virtual-to-physical
translation with access checks, allocation of buffers / shadow mappings /
register contexts / keys, and a preemptive scheduler whose context-switch
path can optionally run the SHRIMP-2 or FLASH *kernel modifications* as
plug-in hooks — the modifications the paper's own methods make unnecessary.
"""

from .costs import OsCosts
from .kernel import Kernel
from .process import DmaBinding, Process
from .scheduler import (
    RandomPreemptionPolicy,
    RoundRobinPolicy,
    Scheduler,
    SchedulingPolicy,
)
from .vm import VirtualMemoryManager

__all__ = [
    "DmaBinding",
    "Kernel",
    "OsCosts",
    "Process",
    "RandomPreemptionPolicy",
    "RoundRobinPolicy",
    "Scheduler",
    "SchedulingPolicy",
    "VirtualMemoryManager",
]
