"""One service shard: a Workstation serving many tenant processes.

A :class:`ServiceShard` owns a single simulated machine seeded
deterministically from ``(service seed, shard index)``, registers tenant
processes lazily (process + pinned buffers + the best available DMA
channel — §3.2's "the rest will have to go through the kernel" applies
when register contexts run out), and executes requests **serially in
simulated time**: each request runs to completion (including bounded
retry, backoff, and kernel fallback) before the next starts, so shard
state between requests is always quiescent and content checks are
exact.

Every DMA's landed bytes are verified against the source pattern, every
destination is re-armed with a tenant-specific canary afterwards, and
:meth:`wrong_page_sweep` re-checks *all* canaries at shutdown — a
transfer that strayed outside its destination page anywhere during the
soak leaves a tamper mark the sweep finds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.api import DmaChannel, open_channel
from ..core.machine import MachineConfig, Workstation
from ..errors import KernelError
from ..faults.injector import Injector
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..obs.flightrec import REASON_WRONG_DATA, FlightRecorder
from ..os.process import Process
from ..units import Time, to_us, us
from .requests import (
    KIND_ATOMIC,
    KIND_DMA,
    KIND_MESSAGE,
    OUTCOME_ABORTED,
    OUTCOME_COMPLETED,
    OUTCOME_FELL_BACK,
    OUTCOME_RETRIED,
    OUTCOME_WRONG_DATA,
    Completion,
    Request,
)

#: Per-tenant buffer geometry: two pages each for source/destination.
TENANT_BUFFER_BYTES = 8192
#: Largest single transfer (one page — the page-bounded engine's limit).
MAX_TRANSFER_BYTES = 4096
#: Hot-receiver buffer: slots of one page each.
HOT_SLOT_BYTES = 4096

#: Bounded-wait policy tuned like the fault benchmark: the completion
#: timeout comfortably exceeds a one-page transfer, and backoff stays in
#: the microsecond range so a soak's simulated time is dominated by
#: useful work.
SERVICE_RETRY_POLICY = RetryPolicy(max_attempts=4, base_backoff=us(2),
                                   completion_timeout=us(500))


@dataclass
class ShardConfig:
    """Configuration of one shard.

    Attributes:
        method: initiation method of the shard's machine.
        seed: *service* seed; the shard derives its own machine and
            fault seeds from ``(seed, index)``.
        n_contexts: DMA register contexts — tenants beyond this fall
            back to kernel-initiated channels.
        atomics: build an atomic unit (keyed mode) so tenants can issue
            remote atomic requests.
        hot_slots: slots in the shared hot-receiver buffer.
        max_message_channels: ring channels built per shard before
            further message requests degrade to plain DMAs (bounds ring
            memory on huge tenant counts).
        spans_enabled: record causal spans (merged into the fleet
            Perfetto trace).
        metrics_interval: simulated cadence of the shard's sampler.
        retry_policy: hardened-path policy for every data-path DMA.
    """

    method: str = "keyed"
    seed: int = 7
    n_contexts: int = 8
    atomics: bool = False
    hot_slots: int = 4
    max_message_channels: int = 16
    spans_enabled: bool = False
    metrics_interval: Optional[Time] = None
    retry_policy: RetryPolicy = field(
        default_factory=lambda: SERVICE_RETRY_POLICY)


@dataclass
class _Tenant:
    """A registered tenant's shard-local state."""

    index: int
    proc: Process
    channel: DmaChannel
    src_vaddr: int
    src_paddr: int
    dst_vaddr: int
    dst_paddr: int
    pattern: bytes
    canary: bytes
    hot_vaddr: Optional[int] = None
    atomic_via_kernel: bool = False
    message_channel: object = None


def shard_seed(service_seed: int, index: int) -> int:
    """The deterministic machine seed of shard *index*."""
    return (service_seed * 1_000_003 + index * 7_919 + 11) & 0x7FFFFFFF


class ServiceShard:
    """One shard of the always-on service."""

    def __init__(self, index: int, config: Optional[ShardConfig] = None
                 ) -> None:
        self.index = index
        self.config = config if config is not None else ShardConfig()
        cfg = self.config
        machine = MachineConfig(
            method=cfg.method, seed=shard_seed(cfg.seed, index),
            n_contexts=cfg.n_contexts, page_bounded=True,
            atomic_mode="keyed" if cfg.atomics else None,
            spans_enabled=cfg.spans_enabled,
            metrics_interval=cfg.metrics_interval)
        self.ws = Workstation(machine)
        #: Trace-context process name — every span this shard records
        #: while executing a request is stamped with it.
        self.process = f"shard{index}"
        #: Always-on flight recorder: completion ring + postmortems.
        self.flightrec = FlightRecorder(self.process)
        self._tenants: Dict[str, _Tenant] = {}
        self._injector: Optional[Injector] = None
        self._faults_fired_detached = 0
        self._message_channels = 0
        self.requests_executed = 0
        self.bytes_moved = 0
        #: Detected in-region corruption: a fault perturbed a transfer's
        #: size/offset so the wrong bytes landed *inside* memory the
        #: tenant was authorized to write.  Detected per request,
        #: restored, and the request fails with ``outcome="wrong-data"``.
        self.wrong_data = 0
        #: Isolation violations: bytes landed in memory the issuing
        #: tenant was NOT authorized to write (another tenant's buffer,
        #: an unshared page).  The paper's protection argument says the
        #: MMU/key checks make this impossible — the sweep proves it.
        self.wrong_transfers = 0

        # The shared hot receiver: one process, one multi-slot buffer,
        # mapped into every tenant that issues hot requests.
        self._recv_proc = self.ws.kernel.spawn(f"recv{index}")
        self._recv_channel = open_channel(self.ws, self._recv_proc)
        self._hot_buffer = self.ws.kernel.alloc_buffer(
            self._recv_proc, cfg.hot_slots * HOT_SLOT_BYTES)
        self._hot_canary = self._make_canary(0xC3)
        #: The hot buffer's quiescent content (every slot canaried).
        self._hot_baseline = b"".join(
            self._hot_canary[:HOT_SLOT_BYTES]
            for _ in range(cfg.hot_slots))
        self.ws.ram.write(self._hot_buffer.paddr, self._hot_baseline)

    # ------------------------------------------------------------------
    # tenant registration
    # ------------------------------------------------------------------

    def tenant(self, name: str) -> _Tenant:
        """The tenant's shard-local state, registering on first sight."""
        state = self._tenants.get(name)
        if state is None:
            state = self._register(name)
            self._tenants[name] = state
        return state

    def _register(self, name: str) -> _Tenant:
        index = len(self._tenants)
        proc = self.ws.kernel.spawn(f"{name}@s{self.index}")
        channel = open_channel(self.ws, proc)
        atomic_via_kernel = False
        if self.config.atomics:
            try:
                self.ws.kernel.enable_user_atomics(proc)
            except KernelError:
                atomic_via_kernel = True
        src = self.ws.kernel.alloc_buffer(proc, TENANT_BUFFER_BYTES)
        dst = self.ws.kernel.alloc_buffer(proc, TENANT_BUFFER_BYTES)
        pattern = bytes((index * 31 + i) % 256
                        for i in range(TENANT_BUFFER_BYTES))
        canary = self._make_canary(index * 17 + 0x5A)
        self.ws.ram.write(src.paddr, pattern)
        self.ws.ram.write(dst.paddr, canary)
        return _Tenant(index=index, proc=proc, channel=channel,
                       src_vaddr=src.vaddr, src_paddr=src.paddr,
                       dst_vaddr=dst.vaddr, dst_paddr=dst.paddr,
                       pattern=pattern, canary=canary,
                       atomic_via_kernel=atomic_via_kernel)

    def _make_canary(self, salt: int) -> bytes:
        return bytes((salt + i * 13) % 256
                     for i in range(TENANT_BUFFER_BYTES))

    @property
    def n_tenants(self) -> int:
        """Tenants registered on this shard."""
        return len(self._tenants)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def attach_faults(self, plan: FaultPlan) -> None:
        """Attach a fault injector driving *plan* (reversible)."""
        self._injector = Injector(plan, self.ws.sim,
                                  trace=self.ws.trace).attach(self.ws)

    def detach_faults(self) -> None:
        """Detach the injector, restoring clean operation."""
        if self._injector is not None:
            self._faults_fired_detached += self._injector.plan.total_fired
            self._injector.detach()
            self._injector = None

    @property
    def faults_injected(self) -> int:
        """Faults fired on this shard so far (survives detach)."""
        live = (self._injector.plan.total_fired
                if self._injector is not None else 0)
        return self._faults_fired_detached + live

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, request: Request) -> Completion:
        """Run one request to completion on this shard (serial).

        The request's trace context (if any) is activated on the
        shard's span tracer for the whole execution, so every span the
        data path records — initiation, retries, backoff, kernel
        fallback, fault injections — carries the request's trace id and
        hangs off one ``shard.execute`` root with a cross-process link
        back to the front end.
        """
        tenant = self.tenant(request.tenant)
        start = self.ws.sim.now
        spans = self.ws.spans
        with spans.activate(request.trace, process=self.process):
            root = spans.begin("shard.execute", track=self.process,
                               kind=request.kind, req_id=request.req_id)
            if request.kind == KIND_DMA:
                completion = self._execute_dma(request, tenant)
            elif request.kind == KIND_ATOMIC:
                completion = self._execute_atomic(request, tenant)
            elif request.kind == KIND_MESSAGE:
                completion = self._execute_message(request, tenant)
            else:  # pragma: no cover - Request.__post_init__ rejects these
                raise KernelError(f"unknown kind {request.kind!r}")
            self.ws.drain()
            spans.end(root, outcome=completion.outcome,
                      attempts=completion.attempts)
        self.requests_executed += 1
        self.bytes_moved += completion.bytes_moved
        if self.ws.metrics.enabled:
            self.ws.metrics.poll()
        latency = to_us(self.ws.sim.now - start)
        final = Completion(
            request=request, ok=completion.ok, outcome=completion.outcome,
            latency_us=latency, attempts=completion.attempts,
            fell_back=completion.fell_back, shard=self.index,
            bytes_moved=completion.bytes_moved)
        self.flightrec.note(final)
        if final.outcome == OUTCOME_WRONG_DATA:
            self.flightrec.bundle(
                REASON_WRONG_DATA, ws=self.ws, seed=self.config.seed,
                tick=request.tick, offending=[final.to_dict()],
                fault_plan=self.fault_plan_dict(),
                counters=self.counters(),
                detail=f"request {request.req_id} landed wrong bytes "
                       f"inside its authorized region")
        return final

    def fault_plan_dict(self) -> Optional[Dict[str, object]]:
        """The active fault plan's JSON rendering, if one is attached."""
        if self._injector is None:
            return None
        return self._injector.plan.to_dict()

    def _execute_dma(self, request: Request, tenant: _Tenant) -> Completion:
        size = min(request.size, MAX_TRANSFER_BYTES)
        if request.hot:
            if tenant.hot_vaddr is None:
                tenant.hot_vaddr = self.ws.kernel.share_buffer(
                    self._recv_proc, self._hot_buffer, tenant.proc)
            slot = tenant.index % self.config.hot_slots
            dst_vaddr = tenant.hot_vaddr + slot * HOT_SLOT_BYTES
            # The whole shared hot buffer is this tenant's authorized
            # region — verify all of it, so a fault that lands bytes in
            # a *neighbouring slot* is still caught and restored.
            region_paddr = self._hot_buffer.paddr
            baseline = self._hot_baseline
            offset = slot * HOT_SLOT_BYTES
        else:
            dst_vaddr = tenant.dst_vaddr
            region_paddr = tenant.dst_paddr
            baseline = tenant.canary
            offset = 0
        result = tenant.channel.dma_reliable(
            tenant.src_vaddr, dst_vaddr, size,
            policy=self.config.retry_policy)
        # Flush delayed/duplicated completions BEFORE verifying: a
        # fault-delayed transfer may land its bytes only now, and the
        # canary must be re-armed after the last write, not before.
        self.ws.drain()
        if not result.ok:
            self.ws.ram.write(region_paddr, baseline)
            return Completion(request, ok=False, outcome=OUTCOME_ABORTED,
                              attempts=result.attempts,
                              fell_back=result.fell_back)
        # Verify the FULL authorized region, not just the requested
        # bytes: a bit-flipped size or offset word can land the wrong
        # bytes inside the region while the completion still reports
        # success (the page-bounded engine and key checks only stop it
        # escaping the region).
        landed = self.ws.ram.read(region_paddr, len(baseline))
        expected = (baseline[:offset] + tenant.pattern[:size]
                    + baseline[offset + size:])
        self.ws.ram.write(region_paddr, baseline)
        if landed != expected:
            self.wrong_data += 1
            return Completion(request, ok=False,
                              outcome=OUTCOME_WRONG_DATA,
                              attempts=result.attempts,
                              fell_back=result.fell_back)
        outcome = OUTCOME_COMPLETED
        if result.fell_back:
            outcome = OUTCOME_FELL_BACK
        elif result.attempts > 1:
            outcome = OUTCOME_RETRIED
        return Completion(request, ok=True, outcome=outcome,
                          attempts=result.attempts,
                          fell_back=result.fell_back, bytes_moved=size)

    def _execute_atomic(self, request: Request,
                        tenant: _Tenant) -> Completion:
        if not self.config.atomics:
            # No atomic unit on this shard: serve it as a small DMA so
            # mixed workloads still make progress.
            return self._execute_dma(request, tenant)
        from ..core.atomics import AtomicChannel

        channel = AtomicChannel(self.ws, tenant.proc)
        result = channel.atomic_add(tenant.dst_vaddr, 1,
                                    via_kernel=tenant.atomic_via_kernel)
        self.ws.drain()
        # Re-arm the whole canary: a fault-perturbed atomic may have
        # touched a different offset of the (authorized) page.
        self.ws.ram.write(tenant.dst_paddr, tenant.canary)
        if not result.ok:
            return Completion(request, ok=False, outcome=OUTCOME_ABORTED,
                              attempts=1)
        return Completion(request, ok=True, outcome=OUTCOME_COMPLETED,
                          attempts=1, bytes_moved=8)

    def _execute_message(self, request: Request,
                         tenant: _Tenant) -> Completion:
        channel = self._message_channel(tenant)
        if channel is None:
            return self._execute_dma(request, tenant)
        payload_len = min(request.size, channel.sender.layout.max_payload)
        payload = tenant.pattern[:payload_len]
        if not channel.send(payload):
            return Completion(request, ok=False, outcome=OUTCOME_ABORTED,
                              attempts=1)
        received = channel.recv()
        if received != payload:
            self.wrong_data += 1
            return Completion(request, ok=False,
                              outcome=OUTCOME_WRONG_DATA, attempts=1)
        return Completion(request, ok=True, outcome=OUTCOME_COMPLETED,
                          attempts=1, bytes_moved=payload_len)

    def _message_channel(self, tenant: _Tenant):
        """The tenant's ring channel to the shard receiver (lazy, capped)."""
        if tenant.message_channel is not None:
            return tenant.message_channel
        if self._message_channels >= self.config.max_message_channels:
            return None
        from ..msg.channel import MessageChannel

        channel = MessageChannel.create(
            self.ws, tenant.proc, self.ws, self._recv_proc,
            retry_policy=self.config.retry_policy)
        tenant.message_channel = channel
        self._message_channels += 1
        return channel

    # ------------------------------------------------------------------
    # verification + accounting
    # ------------------------------------------------------------------

    def wrong_page_sweep(self) -> List[str]:
        """Verify every canary and source pattern; list violations.

        Run at shutdown (and by tests): any transfer that wrote outside
        its destination — a stray page, a neighbour's buffer, the hot
        buffer's wrong slot — left a mark this sweep reports.
        """
        problems: List[str] = []
        for name, tenant in self._tenants.items():
            if self.ws.ram.read(tenant.src_paddr,
                                TENANT_BUFFER_BYTES) != tenant.pattern:
                problems.append(f"{name}: source pattern tampered")
            if self.ws.ram.read(tenant.dst_paddr,
                                TENANT_BUFFER_BYTES) != tenant.canary:
                problems.append(f"{name}: destination canary tampered")
        for slot in range(self.config.hot_slots):
            landed = self.ws.ram.read(
                self._hot_buffer.paddr + slot * HOT_SLOT_BYTES,
                HOT_SLOT_BYTES)
            if landed != self._hot_canary[:HOT_SLOT_BYTES]:
                problems.append(f"hot slot {slot}: canary tampered")
        self.wrong_transfers = max(self.wrong_transfers, len(problems))
        return problems

    def drain(self) -> None:
        """Let all background activity on this shard complete."""
        self.ws.drain()

    @property
    def sim_elapsed_us(self) -> float:
        """Simulated time this shard has consumed, in microseconds."""
        return to_us(self.ws.sim.now)

    def counters(self) -> Dict[str, int]:
        """Retry/fallback/abort counters from the machine's registry."""
        stats = self.ws.stats
        return {
            "retries": stats.counter("dma.retries").value,
            "completion_timeouts":
                stats.counter("dma.completion_timeouts").value,
            "kernel_fallbacks":
                stats.counter("dma.kernel_fallbacks").value,
            "retry_exhausted":
                stats.counter("dma.retry_exhausted").value,
        }

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready shard summary."""
        out: Dict[str, object] = {
            "shard": self.index,
            "tenants": self.n_tenants,
            "requests": self.requests_executed,
            "bytes_moved": self.bytes_moved,
            "sim_elapsed_us": round(self.sim_elapsed_us, 3),
            "wrong_data": self.wrong_data,
            "wrong_transfers": self.wrong_transfers,
            "faults_injected": self.faults_injected,
            "postmortems": len(self.flightrec.bundles),
        }
        out.update(self.counters())
        return out
