"""The asyncio front end: ``repro serve`` and the in-process service.

A :class:`DmaService` multiplexes many tenants onto a pool of
:class:`~repro.service.shard.ServiceShard` machines:

* **routing** — a tenant's requests land on ``crc32(tenant) % shards``
  (stable across runs and processes); a request may override the shard
  explicitly (incast bursts aim many tenants at one shard);
* **admission** — per-tenant token buckets plus per-shard queue-depth
  backpressure (:mod:`repro.service.admission`); shed requests complete
  immediately with ``outcome="rejected"``;
* **execution** — one worker task per shard drains that shard's queue,
  executing each request to completion in the shard's simulated time;
* **telemetry** — every completion streams into
  :class:`~repro.service.telemetry.FleetTelemetry`; the service closes
  a trend window every ``telemetry_window_ticks`` ticks;
* **graceful shutdown** — :meth:`DmaService.shutdown` stops intake,
  drains every queue, lets in-flight DMAs complete, runs the wrong-page
  sweep, and cancels the workers.

Determinism: the event loop is single-threaded, the service never
consults the wall clock, and workers execute requests in queue order —
so a scripted request schedule (the soak driver) produces an identical
completion stream on every run with the same seed.

``serve_forever`` exposes the same service over a TCP JSON-lines
socket: one request object per line in, one completion object per line
out.
"""

from __future__ import annotations

import asyncio
import json
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Set

from ..errors import ConfigError
from ..faults.plan import FaultPlan
from ..obs.context import TraceContext, make_trace_id
from ..obs.flightrec import REASON_SLO_BREACH, REASON_WRONG_PAGE
from ..obs.slo import SloBreach, SloEngine, load_slo_spec
from ..obs.spans import Span, SpanTracer
from ..units import Time
from .admission import REASON_SHUTDOWN, AdmissionController
from .requests import OUTCOME_REJECTED, Completion, Request
from .shard import ServiceShard, ShardConfig
from .telemetry import FleetTelemetry


@dataclass
class ServiceConfig:
    """Configuration of the front end.

    Attributes:
        shards: shard (machine) count.
        method: initiation method every shard runs.
        seed: service seed (shards derive their own).
        n_contexts: DMA register contexts per shard.
        atomics: build atomic units so "atomic" requests run natively.
        tick_hz: service ticks per second (admission time base).
        admission_rate: per-tenant sustained requests/second.
        admission_burst: per-tenant burst allowance.
        max_queue_depth: per-shard queue bound (backpressure).
        spans_enabled: record causal spans on every shard.
        metrics_interval: shard metrics cadence (simulated ps).
        telemetry_window_ticks: ticks per trend window.
        fault_plan: optional fault plan template — each shard gets its
            own deterministic copy (seed offset by shard index).
        slo: optional SLO spec (the parsed ``slo.json`` — a list of
            rule objects or ``{"slos": [...]}``); None evaluates
            :func:`~repro.obs.slo.default_slos`.
    """

    shards: int = 4
    method: str = "keyed"
    seed: int = 7
    n_contexts: int = 8
    atomics: bool = False
    tick_hz: int = 10
    admission_rate: float = 5.0
    admission_burst: float = 10.0
    max_queue_depth: int = 64
    spans_enabled: bool = False
    metrics_interval: Optional[Time] = None
    telemetry_window_ticks: int = 10
    fault_plan: Optional[Dict[str, Any]] = None
    hot_slots: int = 4
    max_message_channels: int = 16
    slo: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.tick_hz < 1:
            raise ConfigError(f"tick_hz must be >= 1, got {self.tick_hz}")


@dataclass
class _Job:
    """One queued request plus its completion future and open spans."""

    request: Request
    future: "asyncio.Future[Completion]" = field(repr=False, default=None)
    #: The request's frontend root span (ended at completion).
    root: Optional[Span] = field(repr=False, default=None)
    #: The queue-wait span (ended when a worker dequeues the job).
    queued: Optional[Span] = field(repr=False, default=None)


def shard_of(tenant: str, n_shards: int) -> int:
    """Stable tenant -> shard mapping (crc32, not the salted hash())."""
    return zlib.crc32(tenant.encode("utf-8")) % n_shards


class DmaService:
    """The always-on multi-tenant DMA service."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        cfg = self.config
        self.shards: List[ServiceShard] = [
            ServiceShard(index, ShardConfig(
                method=cfg.method, seed=cfg.seed,
                n_contexts=cfg.n_contexts, atomics=cfg.atomics,
                hot_slots=cfg.hot_slots,
                max_message_channels=cfg.max_message_channels,
                spans_enabled=cfg.spans_enabled,
                metrics_interval=cfg.metrics_interval))
            for index in range(cfg.shards)]
        if cfg.fault_plan is not None:
            for shard in self.shards:
                plan = FaultPlan.from_dict(
                    cfg.fault_plan,
                    seed=int(cfg.fault_plan.get("seed", 0)) * 31
                    + shard.index)
                shard.attach_faults(plan)
        self.admission = AdmissionController(
            rate=cfg.admission_rate, burst=cfg.admission_burst,
            max_queue_depth=cfg.max_queue_depth)
        self.telemetry = FleetTelemetry(
            tick_hz=cfg.tick_hz,
            window_ticks=cfg.telemetry_window_ticks)
        #: The front end's own span tracer.  Its clock is the service
        #: tick converted to simulated picoseconds, so frontend spans
        #: (admission, queue wait) share a time axis with shard spans
        #: in the merged fleet trace.
        self._tick_ps = int(1e12) // cfg.tick_hz
        self.spans = SpanTracer(clock=lambda: self.tick * self._tick_ps,
                                enabled=cfg.spans_enabled,
                                max_spans=200_000)
        #: Burn-rate SLO evaluation, one observe() per closed window.
        self.slo = SloEngine(load_slo_spec(cfg.slo)
                             if cfg.slo is not None else None)
        self._slo_dumped: Set[str] = set()
        self._queues: List["asyncio.Queue[_Job]"] = []
        self._workers: List["asyncio.Task[None]"] = []
        self._accepting = False
        self._started = False
        self.tick = 0
        self._next_req_id = 0
        self.completions: List[Completion] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the per-shard worker tasks and open intake."""
        if self._started:
            raise ConfigError("service already started")
        self._queues = [asyncio.Queue() for _ in self.shards]
        self._workers = [
            asyncio.get_running_loop().create_task(
                self._worker(index), name=f"shard{index}-worker")
            for index in range(len(self.shards))]
        self._accepting = True
        self._started = True

    async def _worker(self, index: int) -> None:
        """Drain shard *index*'s queue, one request at a time."""
        queue = self._queues[index]
        shard = self.shards[index]
        while True:
            job = await queue.get()
            try:
                if job.queued is not None:
                    self.spans.end(job.queued)
                completion = shard.execute(job.request)
                completion = Completion(
                    request=job.request, ok=completion.ok,
                    outcome=completion.outcome,
                    latency_us=completion.latency_us,
                    attempts=completion.attempts,
                    fell_back=completion.fell_back, shard=index,
                    bytes_moved=completion.bytes_moved,
                    finished_tick=self.tick)
                self._complete(job, completion)
            except Exception as exc:  # pragma: no cover - defensive
                if not job.future.done():
                    job.future.set_exception(exc)
            finally:
                queue.task_done()

    def _complete(self, job: _Job, completion: Completion) -> None:
        if job.root is not None:
            self.spans.end(job.root, outcome=completion.outcome,
                           ok=completion.ok)
        self.telemetry.record(completion)
        self.completions.append(completion)
        if not job.future.done():
            job.future.set_result(completion)

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------

    def route(self, request: Request) -> int:
        """The shard index this request executes on."""
        if request.shard is not None:
            if not 0 <= request.shard < len(self.shards):
                raise ConfigError(
                    f"shard {request.shard} out of range "
                    f"(0..{len(self.shards) - 1})")
            return request.shard
        return shard_of(request.tenant, len(self.shards))

    def _with_trace(self, request: Request) -> Request:
        """The request with a trace context (minted here if absent).

        Trace ids are a pure function of ``(service seed, req_id)``, so
        a same-seed re-run mints identical ids — postmortem bundles and
        exemplars are reproducible by construction.
        """
        if request.trace is not None:
            return request
        trace = TraceContext(
            trace_id=make_trace_id(self.config.seed, request.req_id),
            tenant=request.tenant, request_id=request.req_id)
        return replace(request, trace=trace)

    async def submit(self, request: Request
                     ) -> "asyncio.Future[Completion]":
        """Admit and enqueue one request.

        Returns a future resolving to the request's
        :class:`Completion`.  Shed requests (throttled, backpressure,
        or shutdown) resolve immediately with ``outcome="rejected"``.
        """
        if not self._started:
            raise ConfigError("service not started")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Completion]" = loop.create_future()
        request = self._with_trace(request)
        shard_index = self.route(request)
        if not self._accepting:
            reason: Optional[str] = REASON_SHUTDOWN
            admitted = False
        else:
            admitted, reason = self.admission.admit(
                request.tenant, now_s=self.tick / self.config.tick_hz,
                queue_depth=self._queues[shard_index].qsize())
        job = _Job(request, future)
        trace = request.trace
        if self.spans.enabled and trace is not None:
            with self.spans.activate(trace, process="frontend"):
                job.root = self.spans.begin(
                    "request", track="frontend", stack=False,
                    kind=request.kind, shard=shard_index)
                gate = self.spans.begin(
                    "admission", track="frontend", parent=job.root,
                    stack=False, admitted=admitted,
                    **({"reason": reason} if reason else {}))
                self.spans.end(gate)
                if admitted:
                    job.queued = self.spans.begin(
                        "queue", track=f"shard{shard_index}-queue",
                        parent=job.root, stack=False,
                        depth=self._queues[shard_index].qsize())
            # The shard's spans hang off this root via the cross-process
            # parent link the context now carries.
            job.request = request = replace(
                request, trace=trace.child(job.root.span_id, "frontend"))
        if not admitted:
            completion = Completion(
                request=request, ok=False, outcome=OUTCOME_REJECTED,
                shard=shard_index, finished_tick=self.tick,
                reason=reason)
            self._complete(job, completion)
            return future
        await self._queues[shard_index].put(job)
        return future

    def next_req_id(self) -> int:
        """A fresh request id."""
        self._next_req_id += 1
        return self._next_req_id

    # ------------------------------------------------------------------
    # the service clock
    # ------------------------------------------------------------------

    async def advance_tick(self) -> None:
        """Advance service time by one tick.

        Yields to the event loop so workers run, then closes a trend
        window when the cadence point passes.
        """
        self.tick += 1
        await asyncio.sleep(0)
        if self.tick % self.config.telemetry_window_ticks == 0:
            self._close_window()

    def _close_window(self) -> None:
        counters = self.fleet_counters()
        point = self.telemetry.close_window(
            self.tick,
            queue_depths=[q.qsize() for q in self._queues],
            retries=counters["retries"], faults=counters["faults"])
        for breach in self.slo.observe(
                point, wrong_transfers=counters["wrong_transfers"]):
            self._slo_postmortem(breach)

    def _slo_postmortem(self, breach: SloBreach) -> None:
        """Dump per-shard flight-recorder bundles for a breach.

        Only the first breach of each rule dumps (breaches of a
        sustained burn repeat every window; the evidence does not).
        """
        if breach.rule in self._slo_dumped:
            return
        self._slo_dumped.add(breach.rule)
        for shard in self.shards:
            shard.flightrec.bundle(
                REASON_SLO_BREACH, ws=shard.ws, seed=self.config.seed,
                tick=self.tick, fault_plan=shard.fault_plan_dict(),
                counters=shard.counters(),
                detail=f"{breach.rule}: {breach.detail}")

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    async def shutdown(self, drain: bool = True) -> List[str]:
        """Stop intake, drain in-flight work, verify, stop workers.

        Args:
            drain: process everything already queued (graceful); False
                abandons queued requests (they stay unresolved) but
                still lets the *currently executing* request finish.

        Returns:
            The wrong-page sweep's problem list (empty = clean).
        """
        self._accepting = False
        if drain and self._queues:
            await asyncio.gather(*(q.join() for q in self._queues))
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        problems: List[str] = []
        for shard in self.shards:
            shard.drain()
            shard_problems = shard.wrong_page_sweep()
            if shard_problems:
                shard.flightrec.bundle(
                    REASON_WRONG_PAGE, ws=shard.ws,
                    seed=self.config.seed, tick=self.tick,
                    offending=[{"problem": p} for p in shard_problems],
                    fault_plan=shard.fault_plan_dict(),
                    counters=shard.counters(),
                    detail=f"{len(shard_problems)} isolation "
                           f"violation(s) found by the sweep")
            problems.extend(f"shard{shard.index}: {p}"
                            for p in shard_problems)
            shard.detach_faults()
        if self.tick % self.config.telemetry_window_ticks != 0:
            self._close_window()
        else:
            # The sweep runs after the last aligned window closed; the
            # budgetless wrong-page SLO must still see its result.
            counters = self.fleet_counters()
            for breach in self.slo.observe_wrong_transfers(
                    counters["wrong_transfers"],
                    t_s=self.tick / self.config.tick_hz):
                self._slo_postmortem(breach)
        return problems

    # ------------------------------------------------------------------
    # fleet accounting
    # ------------------------------------------------------------------

    def fleet_counters(self) -> Dict[str, int]:
        """Summed per-shard retry/fault/abort counters."""
        totals = {"retries": 0, "completion_timeouts": 0,
                  "kernel_fallbacks": 0, "retry_exhausted": 0,
                  "faults": 0, "wrong_data": 0, "wrong_transfers": 0}
        for shard in self.shards:
            for key, value in shard.counters().items():
                totals[key] += value
            totals["faults"] += shard.faults_injected
            totals["wrong_data"] += shard.wrong_data
            totals["wrong_transfers"] += shard.wrong_transfers
        return totals

    def goodput_mbytes_per_s(self) -> float:
        """Fleet goodput: payload bytes over the *slowest* shard's
        simulated time — the wall-clock rate of shards running in
        parallel, so a single hot shard bounds the fleet (exactly the
        skew effect the soak measures)."""
        slowest_us = max((s.sim_elapsed_us for s in self.shards),
                        default=0.0)
        if slowest_us <= 0.0:
            return 0.0
        return self.telemetry.bytes_moved / (slowest_us / 1e6) / 1e6

    def postmortems(self) -> List[Dict[str, Any]]:
        """Every flight-recorder bundle dumped so far, shard order."""
        bundles: List[Dict[str, Any]] = []
        for shard in self.shards:
            bundles.extend(shard.flightrec.bundles)
        return bundles

    def fleet_trace(self) -> Dict[str, Any]:
        """The merged fleet Chrome trace: frontend process + every
        shard process, deterministically ordered."""
        return self.telemetry.fleet_chrome_trace(
            self.shards, frontend_spans=self.spans.finished())

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready service summary."""
        return {
            "tick": self.tick,
            "shards": [shard.snapshot() for shard in self.shards],
            "admission": self.admission.snapshot(),
            "telemetry": {
                "completed": self.telemetry.completed,
                "failed": self.telemetry.failed,
                "rejected": self.telemetry.rejected,
                "bytes_moved": self.telemetry.bytes_moved,
                "latency_us": self.telemetry.latency(),
                "fairness": self.telemetry.fairness(),
            },
            "goodput_mbytes_per_s": round(self.goodput_mbytes_per_s(), 4),
            "slo": self.slo.snapshot(),
            "postmortems": len(self.postmortems()),
        }


# ----------------------------------------------------------------------
# the TCP JSON-lines front end (`repro serve`)
# ----------------------------------------------------------------------

async def handle_connection(service: DmaService,
                            reader: "asyncio.StreamReader",
                            writer: "asyncio.StreamWriter") -> None:
    """One client connection: a request object per line, completions out.

    ``{"op": "stats"}`` returns the service snapshot instead.
    """
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                response: Dict[str, Any] = {"error": f"bad json: {exc}"}
            else:
                if isinstance(data, dict) and data.get("op") == "stats":
                    response = service.snapshot()
                else:
                    try:
                        request = Request.from_dict(data)
                    except (ConfigError, TypeError) as exc:
                        response = {"error": str(exc)}
                    else:
                        request = Request(
                            tenant=request.tenant, kind=request.kind,
                            size=request.size, hot=request.hot,
                            shard=request.shard, tick=service.tick,
                            req_id=service.next_req_id(),
                            trace=request.trace)
                        future = await service.submit(request)
                        completion = await future
                        response = completion.to_dict()
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
    finally:
        writer.close()


async def serve_forever(config: Optional[ServiceConfig] = None,
                        host: str = "127.0.0.1", port: int = 0,
                        ready: Optional["asyncio.Event"] = None,
                        max_connections: Optional[int] = None,
                        tick_wall: bool = False) -> None:
    """Run the TCP front end until cancelled.

    Args:
        ready: set (with ``server.port`` stored on it as ``port``)
            once the socket is listening — tests use this to connect.
        max_connections: stop after serving this many connections
            (None = run forever).
        tick_wall: advance the service tick on a wall-clock timer —
            the interactive ``repro serve`` mode, where token buckets
            refill in real time.  Off for deterministic drivers.
    """
    service = DmaService(config)
    await service.start()
    served = 0
    done = asyncio.Event()

    async def _handler(reader: "asyncio.StreamReader",
                       writer: "asyncio.StreamWriter") -> None:
        nonlocal served
        await handle_connection(service, reader, writer)
        served += 1
        if max_connections is not None and served >= max_connections:
            done.set()

    async def _tick_driver() -> None:
        while True:
            await asyncio.sleep(1.0 / service.config.tick_hz)
            await service.advance_tick()

    server = await asyncio.start_server(_handler, host=host, port=port)
    ticker = (asyncio.get_running_loop().create_task(_tick_driver())
              if tick_wall else None)
    if ready is not None:
        ready.port = server.sockets[0].getsockname()[1]  # type: ignore
        ready.set()
    try:
        async with server:
            if max_connections is None:
                await asyncio.Event().wait()  # run until cancelled
            else:
                await done.wait()
    finally:
        if ticker is not None:
            ticker.cancel()
        await service.shutdown(drain=True)
