"""Admission control: per-tenant token buckets + queue-depth shedding.

The front end cannot let one hot tenant starve the fleet (the zipf soak
exists precisely to try).  Two independent mechanisms gate every
request:

* a per-tenant :class:`TokenBucket` — sustained rate plus a burst
  allowance, refilled in *service time* so admission decisions are a
  pure function of the request schedule (deterministic replay);
* queue-depth backpressure — a request aimed at a shard whose queue is
  already ``max_queue_depth`` deep is shed rather than buffered without
  bound (incast protection).

Rejections are cheap and visible: they complete immediately with
``outcome="rejected"`` and a reason, and the controller keeps per-tenant
admit/reject counts so the telemetry layer can report fairness over
*offered* as well as *served* load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..analysis.trends import jain_index
from ..errors import ConfigError

#: Rejection reasons.
REASON_THROTTLED = "throttled"
REASON_BACKPRESSURE = "backpressure"
REASON_SHUTDOWN = "shutdown"


@dataclass
class TokenBucket:
    """A token bucket over service-time seconds.

    Attributes:
        rate: tokens added per second of service time.
        burst: bucket capacity (also the initial fill).
    """

    rate: float
    burst: float
    tokens: float = field(init=False)
    _last: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ConfigError(f"rate must be positive, got {self.rate}")
        if self.burst < 1.0:
            raise ConfigError(f"burst must be >= 1, got {self.burst}")
        self.tokens = self.burst

    def refill(self, now_s: float) -> None:
        """Accrue tokens for the service time elapsed since last refill."""
        if now_s > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now_s - self._last) * self.rate)
            self._last = now_s

    def take(self, now_s: float) -> bool:
        """Consume one token if available; False means throttled."""
        self.refill(now_s)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Admit or shed requests; keep the fairness ledger.

    Args:
        rate: per-tenant sustained request rate (requests per second of
            service time).
        burst: per-tenant burst allowance.
        max_queue_depth: per-shard queue bound; deeper queues shed.
    """

    def __init__(self, rate: float = 5.0, burst: float = 10.0,
                 max_queue_depth: int = 64) -> None:
        if max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.rate = rate
        self.burst = burst
        self.max_queue_depth = max_queue_depth
        self._buckets: Dict[str, TokenBucket] = {}
        self.admitted: Dict[str, int] = {}
        self.rejected: Dict[str, int] = {}
        self.rejections_by_reason: Dict[str, int] = {}

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's bucket (created on first sight)."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(rate=self.rate, burst=self.burst)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, now_s: float,
              queue_depth: int) -> Tuple[bool, Optional[str]]:
        """Decide one request.

        Returns:
            ``(True, None)`` when admitted; ``(False, reason)`` when
            shed.  Backpressure is checked first — a full shard sheds
            even compliant tenants, but without charging their bucket.
        """
        if queue_depth >= self.max_queue_depth:
            self._reject(tenant, REASON_BACKPRESSURE)
            return False, REASON_BACKPRESSURE
        if not self.bucket(tenant).take(now_s):
            self._reject(tenant, REASON_THROTTLED)
            return False, REASON_THROTTLED
        self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
        return True, None

    def _reject(self, tenant: str, reason: str) -> None:
        self.rejected[tenant] = self.rejected.get(tenant, 0) + 1
        self.rejections_by_reason[reason] = (
            self.rejections_by_reason.get(reason, 0) + 1)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    @property
    def total_admitted(self) -> int:
        """Requests admitted so far."""
        return sum(self.admitted.values())

    @property
    def total_rejected(self) -> int:
        """Requests shed so far."""
        return sum(self.rejected.values())

    def admitted_fairness(self) -> float:
        """Jain index over per-tenant admitted counts."""
        return jain_index(list(self.admitted.values()))

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready admission summary."""
        return {
            "admitted": self.total_admitted,
            "rejected": self.total_rejected,
            "by_reason": dict(sorted(self.rejections_by_reason.items())),
            "tenants_seen": len(self._buckets),
            "admitted_fairness": self.admitted_fairness(),
        }
