"""The always-on DMA service.

Wraps the simulated machine in a long-running, multi-tenant traffic
system:

* :mod:`repro.service.requests` — the request/completion wire types;
* :mod:`repro.service.admission` — per-tenant token buckets plus
  queue-depth backpressure and fairness accounting;
* :mod:`repro.service.shard` — one :class:`~repro.core.machine.
  Workstation` per shard, deterministic seed-per-shard, executing
  DMA / atomic / message requests with wrong-page verification;
* :mod:`repro.service.frontend` — the asyncio front end
  (``repro serve``): admits, multiplexes onto the shard pool, and
  completes requests; graceful shutdown drains in-flight DMAs;
* :mod:`repro.service.telemetry` — the fleet monitor loop: rolling
  trend windows (goodput, tail latency, fairness, faults) and merged
  Perfetto traces across every shard;
* :mod:`repro.service.soak` — the soak driver (``repro soak``):
  zipf-skewed multi-tenant traffic with hot-receiver and incast mixes,
  optional fault plans, and the ``BENCH_service.json`` report.
"""

from .admission import AdmissionController, TokenBucket
from .frontend import DmaService, ServiceConfig
from .requests import Completion, Request
from .shard import ServiceShard, ShardConfig
from .soak import SoakConfig, run_soak
from .telemetry import (FLEET_FRONTEND_PID, FLEET_SHARD_PID_BASE,
                        FleetTelemetry)

__all__ = [
    "AdmissionController",
    "Completion",
    "DmaService",
    "FLEET_FRONTEND_PID",
    "FLEET_SHARD_PID_BASE",
    "FleetTelemetry",
    "Request",
    "ServiceConfig",
    "ServiceShard",
    "ShardConfig",
    "SoakConfig",
    "TokenBucket",
    "run_soak",
]
