"""Fleet telemetry: rolling trend windows + merged Perfetto traces.

The monitor loop of the always-on service.  Completions stream in via
:meth:`FleetTelemetry.record`; once per cadence interval the front end
calls :meth:`FleetTelemetry.close_window`, which folds the interval's
completions into one :class:`~repro.analysis.trends.ServiceTrendPoint`
and appends it to a bounded :class:`~repro.analysis.trends.TrendHistory`
— the in-memory equivalent of a dashboard's retention window.

Two export paths:

* :meth:`trend_report` — the JSON trend report
  (:func:`repro.analysis.trends.service_trend_report`) CI uploads and
  the nightly soak appends to its history artifact;
* :meth:`fleet_chrome_trace` — every shard's causal spans and metric
  series merged into one Chrome/Perfetto trace, one *process* per
  shard, so a single trace file shows the whole fleet's timeline.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..analysis.trends import (
    ServiceTrendPoint,
    TrendHistory,
    jain_index,
    latency_summary,
    percentile,
    service_trend_report,
)
from ..obs.export import chrome_trace, ensure_valid_chrome_trace
from .requests import OUTCOME_REJECTED, Completion


class FleetTelemetry:
    """Aggregates completions into rolling trend windows.

    Args:
        tick_hz: service ticks per second (converts ticks to seconds).
        window_ticks: ticks per trend window.
        max_points: retention bound of the rolling history.
    """

    def __init__(self, tick_hz: int = 10, window_ticks: int = 10,
                 max_points: int = 720) -> None:
        self.tick_hz = tick_hz
        self.window_ticks = window_ticks
        self.history = TrendHistory(max_points=max_points)
        self._window: List[Completion] = []
        self._window_end_tick = window_ticks
        #: Per-tenant completed-request counts over the whole run.
        self.per_tenant_completed: Dict[str, int] = {}
        self.per_tenant_bytes: Dict[str, int] = {}
        self._all_latencies: List[float] = []
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._bytes = 0
        self._last_counters: Dict[str, int] = {"retries": 0, "faults": 0}

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def record(self, completion: Completion) -> None:
        """Fold one completion into the current window and the totals."""
        self._window.append(completion)
        tenant = completion.request.tenant
        if completion.outcome == OUTCOME_REJECTED:
            self._rejected += 1
        elif completion.ok:
            self._completed += 1
            self._bytes += completion.bytes_moved
            self.per_tenant_completed[tenant] = (
                self.per_tenant_completed.get(tenant, 0) + 1)
            self.per_tenant_bytes[tenant] = (
                self.per_tenant_bytes.get(tenant, 0)
                + completion.bytes_moved)
            self._all_latencies.append(completion.latency_us)
        else:
            self._failed += 1
            self._all_latencies.append(completion.latency_us)

    def close_window(self, tick: int,
                     queue_depths: Optional[Sequence[int]] = None,
                     retries: int = 0, faults: int = 0) -> ServiceTrendPoint:
        """Close the current window at *tick* and append a trend point.

        Args:
            queue_depths: current per-shard queue depths (mean reported).
            retries: cumulative fleet retry count (delta computed here).
            faults: cumulative faults injected (delta computed here).
        """
        window = self._window
        self._window = []
        completed = [c for c in window
                     if c.ok and c.outcome != OUTCOME_REJECTED]
        failed = [c for c in window
                  if not c.ok and c.outcome != OUTCOME_REJECTED]
        rejected = [c for c in window if c.outcome == OUTCOME_REJECTED]
        latencies = [c.latency_us for c in completed + failed]
        bytes_moved = sum(c.bytes_moved for c in completed)
        window_s = self.window_ticks / self.tick_hz
        retry_delta = max(0, retries - self._last_counters["retries"])
        fault_delta = max(0, faults - self._last_counters["faults"])
        self._last_counters = {"retries": retries, "faults": faults}
        by_tenant: Dict[str, int] = {}
        for c in completed:
            by_tenant[c.request.tenant] = (
                by_tenant.get(c.request.tenant, 0) + 1)
        point = ServiceTrendPoint(
            t_s=tick / self.tick_hz,
            completed=len(completed),
            failed=len(failed),
            rejected=len(rejected),
            bytes_moved=bytes_moved,
            goodput_mbytes_per_s=(bytes_moved / window_s / 1e6
                                  if window_s else 0.0),
            p50_us=percentile(latencies, 50.0),
            p95_us=percentile(latencies, 95.0),
            p99_us=percentile(latencies, 99.0),
            retries=retry_delta,
            faults=fault_delta,
            fairness=jain_index(list(by_tenant.values())),
            queue_depth=(sum(queue_depths) / len(queue_depths)
                         if queue_depths else 0.0),
        )
        self.history.append(point)
        return point

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------

    @property
    def completed(self) -> int:
        """Requests completed OK over the whole run."""
        return self._completed

    @property
    def failed(self) -> int:
        """Requests that aborted over the whole run."""
        return self._failed

    @property
    def rejected(self) -> int:
        """Requests shed by admission over the whole run."""
        return self._rejected

    @property
    def bytes_moved(self) -> int:
        """Payload bytes landed over the whole run."""
        return self._bytes

    def latency(self) -> Dict[str, float]:
        """p50/p95/p99/mean/max completion latency over the whole run."""
        return latency_summary(self._all_latencies)

    def fairness(self) -> Dict[str, Any]:
        """Jain indices over per-tenant completions and bytes."""
        return {
            "jain_completions":
                jain_index(list(self.per_tenant_completed.values())),
            "jain_bytes": jain_index(list(self.per_tenant_bytes.values())),
            "tenants_served": len(self.per_tenant_completed),
        }

    def trend_report(self, meta: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
        """The rolling-window trend report (see analysis.trends)."""
        return service_trend_report(self.history.points, meta=meta)

    # ------------------------------------------------------------------
    # Perfetto export
    # ------------------------------------------------------------------

    def fleet_chrome_trace(self, shards: Sequence[Any]) -> Dict[str, Any]:
        """Merge every shard's spans + metrics into one Chrome trace.

        Each shard becomes its own trace *process* (``pid = index + 1``)
        so Perfetto renders the fleet side by side on one timeline.
        """
        merged: List[Dict[str, Any]] = []
        for shard in shards:
            spans = shard.ws.spans.finished()
            trace = chrome_trace(
                spans, metrics=(shard.ws.metrics
                                if shard.ws.metrics.enabled else None),
                process_name=f"shard{shard.index}", pid=shard.index + 1)
            merged.extend(trace["traceEvents"])
        out = {"traceEvents": merged, "displayTimeUnit": "ns"}
        ensure_valid_chrome_trace(out)
        return out
