"""Fleet telemetry: rolling trend windows + merged Perfetto traces.

The monitor loop of the always-on service.  Completions stream in via
:meth:`FleetTelemetry.record`; once per cadence interval the front end
calls :meth:`FleetTelemetry.close_window`, which folds the interval's
completions into one :class:`~repro.analysis.trends.ServiceTrendPoint`
and appends it to a bounded :class:`~repro.analysis.trends.TrendHistory`
— the in-memory equivalent of a dashboard's retention window.

Latency aggregation runs on log-bucketed
:class:`~repro.obs.histogram.LatencyHistogram` objects (one per window,
one for the whole run) instead of raw sample lists: memory per window is
bounded by the bucket count, not the request count, and the p99+ buckets
retain **exemplar trace ids** so any tail latency on a dashboard links
straight back to its full distributed trace.  Every window close
cross-checks the histogram's percentiles against the exact
sample-interpolated values and raises if they disagree beyond the
histogram's provable error bound.

Two export paths:

* :meth:`trend_report` — the JSON trend report
  (:func:`repro.analysis.trends.service_trend_report`) CI uploads and
  the nightly soak appends to its history artifact;
* :meth:`fleet_chrome_trace` — the front end's spans plus every shard's
  spans, trace events, and metric series merged into one Chrome/Perfetto
  trace: the front end is process 1, shard *i* is process ``i + 2``, and
  the merged stream is deterministically ordered with a stable global
  ``(process, seq)`` tie-break so two same-seed runs export
  byte-identical traces.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..analysis.trends import (
    ServiceTrendPoint,
    TrendHistory,
    jain_index,
    service_trend_report,
)
from ..errors import ObservabilityError
from ..obs.export import chrome_trace, ensure_valid_chrome_trace
from ..obs.histogram import LatencyHistogram
from ..sim.stats import LatencyStat
from ..units import us
from .requests import OUTCOME_REJECTED, Completion

#: The merged fleet trace's process ids: the front end is process 1,
#: shard *i* is process ``i + FLEET_SHARD_PID_BASE``.
FLEET_FRONTEND_PID = 1
FLEET_SHARD_PID_BASE = 2


def _fleet_order(event: Dict[str, Any]) -> tuple:
    """Deterministic global ordering of merged trace events.

    Metadata first (grouped by process), then everything else by
    timestamp with a stable ``(pid, tid, seq-or-span_id)`` tie-break —
    per-process ``seq`` counters collide after a merge, so the process
    id is part of the key.
    """
    args = event.get("args") or {}
    tie = args.get("seq", args.get("span_id", 0))
    if event.get("ph") == "M":
        return (0, 0.0, event["pid"], event.get("tid", 0), 0, event["name"])
    return (1, event.get("ts", 0.0), event["pid"], event.get("tid", 0),
            tie if isinstance(tie, (int, float)) else 0, event["name"])


class FleetTelemetry:
    """Aggregates completions into rolling trend windows.

    Args:
        tick_hz: service ticks per second (converts ticks to seconds).
        window_ticks: ticks per trend window.
        max_points: retention bound of the rolling history.
        exemplars: tail exemplars (trace ids) kept per histogram bucket.
    """

    def __init__(self, tick_hz: int = 10, window_ticks: int = 10,
                 max_points: int = 720, exemplars: int = 4) -> None:
        self.tick_hz = tick_hz
        self.window_ticks = window_ticks
        self.history = TrendHistory(max_points=max_points)
        self._window: List[Completion] = []
        self._exemplars_per_bucket = exemplars
        self._window_hist = LatencyHistogram(
            exemplars_per_bucket=exemplars)
        #: Exact per-window latencies, kept only until the window
        #: closes — the histogram cross-check needs ground truth.
        self._window_latencies: List[float] = []
        self._run_hist = LatencyHistogram(exemplars_per_bucket=exemplars)
        self._window_end_tick = window_ticks
        #: Per-tenant completed-request counts over the whole run.
        self.per_tenant_completed: Dict[str, int] = {}
        self.per_tenant_bytes: Dict[str, int] = {}
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._bytes = 0
        self._last_counters: Dict[str, int] = {"retries": 0, "faults": 0}

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def record(self, completion: Completion) -> None:
        """Fold one completion into the current window and the totals."""
        self._window.append(completion)
        tenant = completion.request.tenant
        if completion.outcome == OUTCOME_REJECTED:
            self._rejected += 1
            return
        trace = completion.request.trace
        trace_id = trace.trace_id if trace is not None else None
        self._window_hist.record(completion.latency_us, trace_id)
        self._window_latencies.append(completion.latency_us)
        self._run_hist.record(completion.latency_us, trace_id)
        if completion.ok:
            self._completed += 1
            self._bytes += completion.bytes_moved
            self.per_tenant_completed[tenant] = (
                self.per_tenant_completed.get(tenant, 0) + 1)
            self.per_tenant_bytes[tenant] = (
                self.per_tenant_bytes.get(tenant, 0)
                + completion.bytes_moved)
        else:
            self._failed += 1

    def close_window(self, tick: int,
                     queue_depths: Optional[Sequence[int]] = None,
                     retries: int = 0, faults: int = 0) -> ServiceTrendPoint:
        """Close the current window at *tick* and append a trend point.

        Percentiles come from the window's histogram; before they are
        trusted, :meth:`LatencyHistogram.verify_against_stat` compares
        them against the exact sample-interpolated values and an
        :class:`ObservabilityError` is raised if any disagrees beyond
        the histogram's per-quantile error bound.

        Args:
            queue_depths: current per-shard queue depths (mean reported).
            retries: cumulative fleet retry count (delta computed here).
            faults: cumulative faults injected (delta computed here).
        """
        window = self._window
        self._window = []
        hist = self._window_hist
        self._window_hist = LatencyHistogram(
            exemplars_per_bucket=self._exemplars_per_bucket)
        latencies = self._window_latencies
        self._window_latencies = []
        exact = LatencyStat("window", keep_samples=True)
        for value in latencies:
            exact.record(us(value))
        problems = hist.verify_against_stat(exact)
        if problems:
            raise ObservabilityError(
                "window histogram disagrees with exact percentiles: "
                + "; ".join(problems))
        completed = [c for c in window
                     if c.ok and c.outcome != OUTCOME_REJECTED]
        failed = [c for c in window
                  if not c.ok and c.outcome != OUTCOME_REJECTED]
        rejected = [c for c in window if c.outcome == OUTCOME_REJECTED]
        bytes_moved = sum(c.bytes_moved for c in completed)
        window_s = self.window_ticks / self.tick_hz
        retry_delta = max(0, retries - self._last_counters["retries"])
        fault_delta = max(0, faults - self._last_counters["faults"])
        self._last_counters = {"retries": retries, "faults": faults}
        by_tenant: Dict[str, int] = {}
        for c in completed:
            by_tenant[c.request.tenant] = (
                by_tenant.get(c.request.tenant, 0) + 1)
        point = ServiceTrendPoint(
            t_s=tick / self.tick_hz,
            completed=len(completed),
            failed=len(failed),
            rejected=len(rejected),
            bytes_moved=bytes_moved,
            goodput_mbytes_per_s=(bytes_moved / window_s / 1e6
                                  if window_s else 0.0),
            p50_us=round(hist.percentile(50.0), 3),
            p95_us=round(hist.percentile(95.0), 3),
            p99_us=round(hist.percentile(99.0), 3),
            retries=retry_delta,
            faults=fault_delta,
            fairness=jain_index(list(by_tenant.values())),
            queue_depth=(sum(queue_depths) / len(queue_depths)
                         if queue_depths else 0.0),
            p99_exemplars=tuple(e["trace_id"]
                                for e in hist.exemplars(99.0)),
        )
        self.history.append(point)
        return point

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------

    @property
    def completed(self) -> int:
        """Requests completed OK over the whole run."""
        return self._completed

    @property
    def failed(self) -> int:
        """Requests that aborted over the whole run."""
        return self._failed

    @property
    def rejected(self) -> int:
        """Requests shed by admission over the whole run."""
        return self._rejected

    @property
    def bytes_moved(self) -> int:
        """Payload bytes landed over the whole run."""
        return self._bytes

    def latency(self) -> Dict[str, float]:
        """p50/p95/p99/mean/max completion latency over the whole run
        (histogram-derived; relative error bounded by the bucket
        geometry)."""
        return self._run_hist.summary()

    def latency_exemplars(self, q: float = 99.0) -> List[Dict[str, Any]]:
        """Run-level tail exemplars: trace ids at or above quantile *q*."""
        return self._run_hist.exemplars(q)

    def fairness(self) -> Dict[str, Any]:
        """Jain indices over per-tenant completions and bytes."""
        return {
            "jain_completions":
                jain_index(list(self.per_tenant_completed.values())),
            "jain_bytes": jain_index(list(self.per_tenant_bytes.values())),
            "tenants_served": len(self.per_tenant_completed),
        }

    def trend_report(self, meta: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
        """The rolling-window trend report (see analysis.trends)."""
        return service_trend_report(self.history.points, meta=meta)

    # ------------------------------------------------------------------
    # Perfetto export
    # ------------------------------------------------------------------

    def fleet_chrome_trace(self, shards: Sequence[Any],
                           frontend_spans: Optional[Sequence[Any]] = None
                           ) -> Dict[str, Any]:
        """Merge the fleet's observability into one Chrome trace.

        The front end's spans (admission, queue wait, request roots)
        become process :data:`FLEET_FRONTEND_PID`; each shard's spans,
        trace-log events, and metric series become process
        ``shard.index + FLEET_SHARD_PID_BASE``.  The merged stream is
        sorted with :func:`_fleet_order` — per-shard ``seq`` counters
        collide after a merge, so ordering ties break on the stable
        global ``(pid, tid, seq)`` key and every instant event also
        carries a globally unique ``gseq`` in its args.
        """
        merged: List[Dict[str, Any]] = []
        if frontend_spans:
            trace = chrome_trace(list(frontend_spans),
                                 process_name="frontend",
                                 pid=FLEET_FRONTEND_PID)
            merged.extend(trace["traceEvents"])
        for shard in shards:
            pid = shard.index + FLEET_SHARD_PID_BASE
            events = (shard.ws.trace.events()
                      if shard.ws.trace.enabled else None)
            trace = chrome_trace(
                shard.ws.spans.finished(), events=events,
                metrics=(shard.ws.metrics
                         if shard.ws.metrics.enabled else None),
                process_name=f"shard{shard.index}", pid=pid)
            for event in trace["traceEvents"]:
                if event["ph"] == "i":
                    event["args"]["gseq"] = (
                        pid * 1_000_000 + event["args"]["seq"])
            merged.extend(trace["traceEvents"])
        merged.sort(key=_fleet_order)
        out = {"traceEvents": merged, "displayTimeUnit": "ns"}
        ensure_valid_chrome_trace(out)
        return out
