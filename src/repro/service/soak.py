"""The soak driver: scripted multi-tenant load against the service.

``repro soak`` generates a *deterministic* request schedule — a pure
function of the :class:`SoakConfig` (tenant count, duration, skew,
traffic mix, seed) — and plays it through a :class:`DmaService`.  The
same seed therefore yields the identical completion stream, report, and
trend history on every run, which is what lets CI diff soak reports
across commits.

Traffic shaping:

* **skew** — tenants are drawn zipf-weighted (``weight ∝ 1/rank^s``) so
  a handful of hot tenants dominate the offered load, or uniformly;
* **hot-receiver** — a fraction of DMAs target the shard's shared
  hot-receiver buffer rather than the tenant's private destination;
* **incast** — every ``incast_period_ticks`` a burst of distinct
  tenants all aims at one rotating shard, overriding the hash routing.

When faults are enabled the driver replays the *same schedule* through
a fault-free control service and reports the goodput and p99 ratios —
the "≥95 % of fault-free" CI gate reads ``vs_faultfree``.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..faults.plan import bernoulli_plan
from ..obs.flightrec import REASON_UNSAFE_VERDICT
from .frontend import DmaService, ServiceConfig
from .requests import (
    KIND_ATOMIC,
    KIND_DMA,
    KIND_MESSAGE,
    OUTCOME_ABORTED,
    OUTCOME_FELL_BACK,
    OUTCOME_RETRIED,
    OUTCOME_WRONG_DATA,
    Request,
)

#: Payload sizes the mix draws from (word, typical, one full page).
SIZE_CHOICES = (256, 1024, 4096)

#: Fault-recovery verdicts, best to worst.
VERDICT_CLEAN = "CLEAN"
VERDICT_RECOVERED = "RECOVERED"
VERDICT_DEGRADED = "DEGRADED"
VERDICT_UNSAFE = "UNSAFE"

#: One schedule entry: (tenant, kind, size, hot, shard-override).
ScheduleEntry = Tuple[str, str, int, bool, Optional[int]]


@dataclass
class SoakConfig:
    """Configuration of one soak run.

    Attributes:
        tenants: simulated tenant count.
        duration_s: soak length in *service* seconds (virtual time).
        tick_hz: service ticks per second.
        rate: offered load, requests per tenant-second (mean across the
            fleet; skew concentrates it).
        skew: ``"zipf"`` or ``"uniform"`` tenant selection.
        zipf_s: zipf exponent (higher = hotter head).
        shards: machine pool size.
        method: initiation method every shard runs.
        seed: master seed — schedule, shard machines, and fault streams
            all derive from it.
        fault_rate: Bernoulli fault rate (builds the benchmark's
            standard plan); 0 disables injection.
        fault_plan: explicit plan dict (``FaultPlan.to_dict`` format /
            ``--faults plan.json``); overrides ``fault_rate``.
        atomic_frac / message_frac: traffic-mix fractions (the rest is
            plain DMA).
        hot_frac: fraction of DMAs aimed at the hot receiver.
        incast_period_ticks: ticks between incast bursts (0 disables).
        incast_burst: requests per incast burst.
        control_run: replay the schedule fault-free for the
            ``vs_faultfree`` comparison (only when faults are on).
        spans: record causal spans (enables the fleet Perfetto trace).
        admission_rate / admission_burst / max_queue_depth: front-end
            admission knobs (see :mod:`repro.service.admission`).
        slo: optional SLO spec (parsed ``slo.json``); None evaluates
            the default rule set.  Breaches are always reported under
            ``report["slo"]``; ``repro soak --slo`` makes them fatal.
    """

    tenants: int = 200
    duration_s: int = 20
    tick_hz: int = 10
    rate: float = 0.2
    skew: str = "zipf"
    zipf_s: float = 1.1
    shards: int = 4
    method: str = "keyed"
    seed: int = 7
    fault_rate: float = 0.0
    fault_plan: Optional[Dict[str, Any]] = None
    atomic_frac: float = 0.05
    message_frac: float = 0.10
    hot_frac: float = 0.25
    incast_period_ticks: int = 50
    incast_burst: int = 12
    control_run: bool = True
    spans: bool = False
    admission_rate: float = 5.0
    admission_burst: float = 10.0
    max_queue_depth: int = 64
    slo: Optional[Any] = None
    size_choices: Sequence[int] = field(default=SIZE_CHOICES)

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ConfigError(f"tenants must be >= 1, got {self.tenants}")
        if self.duration_s < 1:
            raise ConfigError(
                f"duration_s must be >= 1, got {self.duration_s}")
        if self.skew not in ("zipf", "uniform"):
            raise ConfigError(f"unknown skew {self.skew!r}")
        if self.rate <= 0.0:
            raise ConfigError(f"rate must be positive, got {self.rate}")

    def to_dict(self) -> Dict[str, Any]:
        """The config block of the soak report."""
        return {
            "tenants": self.tenants, "duration_s": self.duration_s,
            "tick_hz": self.tick_hz, "rate": self.rate,
            "skew": self.skew, "zipf_s": self.zipf_s,
            "shards": self.shards, "method": self.method,
            "seed": self.seed, "fault_rate": self.fault_rate,
            "fault_plan": self.fault_plan,
            "atomic_frac": self.atomic_frac,
            "message_frac": self.message_frac,
            "hot_frac": self.hot_frac,
            "incast_period_ticks": self.incast_period_ticks,
            "incast_burst": self.incast_burst,
            **({"slo": self.slo} if self.slo is not None else {}),
        }


# ----------------------------------------------------------------------
# schedule generation (pure function of config)
# ----------------------------------------------------------------------

def tenant_weights(config: SoakConfig) -> List[float]:
    """Per-tenant selection weights (zipf or uniform)."""
    if config.skew == "uniform":
        return [1.0] * config.tenants
    return [1.0 / (rank + 1) ** config.zipf_s
            for rank in range(config.tenants)]


def build_schedule(config: SoakConfig) -> List[List[ScheduleEntry]]:
    """The per-tick request schedule — deterministic given the config.

    Offered load per tick is ``tenants * rate / tick_hz``, carried as a
    fractional accumulator so low rates still emit requests.  Incast
    bursts are appended on their cadence, aimed at a rotating shard.
    """
    rng = random.Random(config.seed)
    weights = tenant_weights(config)
    names = [f"t{i:04d}" for i in range(config.tenants)]
    ticks = config.duration_s * config.tick_hz
    per_tick = config.tenants * config.rate / config.tick_hz
    schedule: List[List[ScheduleEntry]] = []
    carry = 0.0
    for tick in range(ticks):
        carry += per_tick
        n = int(carry)
        carry -= n
        entries: List[ScheduleEntry] = []
        for tenant in rng.choices(names, weights=weights, k=n):
            draw = rng.random()
            if draw < config.atomic_frac:
                kind = KIND_ATOMIC
            elif draw < config.atomic_frac + config.message_frac:
                kind = KIND_MESSAGE
            else:
                kind = KIND_DMA
            size = rng.choice(list(config.size_choices))
            hot = (kind == KIND_DMA
                   and rng.random() < config.hot_frac)
            entries.append((tenant, kind, size, hot, None))
        if (config.incast_period_ticks > 0 and config.incast_burst > 0
                and tick > 0 and tick % config.incast_period_ticks == 0):
            target = (tick // config.incast_period_ticks) % config.shards
            burst = rng.sample(range(config.tenants),
                               k=min(config.incast_burst, config.tenants))
            entries.extend((names[i], KIND_DMA, 4096, True, target)
                           for i in burst)
        schedule.append(entries)
    return schedule


# ----------------------------------------------------------------------
# the drive loop
# ----------------------------------------------------------------------

async def _drive(service: DmaService,
                 schedule: List[List[ScheduleEntry]]) -> List[str]:
    """Play *schedule* through *service*; return sweep problems."""
    await service.start()
    futures = []
    for entries in schedule:
        for tenant, kind, size, hot, shard in entries:
            request = Request(tenant=tenant, kind=kind, size=size,
                              hot=hot, shard=shard, tick=service.tick,
                              req_id=service.next_req_id())
            futures.append(await service.submit(request))
        await service.advance_tick()
    problems = await service.shutdown(drain=True)
    if futures:
        await asyncio.gather(*futures)
    return problems


def _run_service(config: SoakConfig, schedule: List[List[ScheduleEntry]],
                 with_faults: bool) -> Tuple[DmaService, List[str]]:
    """One full pass of the schedule; returns (service, sweep problems)."""
    plan = None
    if with_faults:
        if config.fault_plan is not None:
            plan = config.fault_plan
        elif config.fault_rate > 0.0:
            plan = bernoulli_plan(config.fault_rate,
                                  seed=config.seed).to_dict()
    service = DmaService(ServiceConfig(
        shards=config.shards, method=config.method, seed=config.seed,
        atomics=config.atomic_frac > 0.0, tick_hz=config.tick_hz,
        admission_rate=config.admission_rate,
        admission_burst=config.admission_burst,
        max_queue_depth=config.max_queue_depth,
        spans_enabled=config.spans, fault_plan=plan, slo=config.slo))
    problems = asyncio.run(_drive(service, schedule))
    return service, problems


def _outcome_counts(service: DmaService) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for completion in service.completions:
        counts[completion.outcome] = counts.get(completion.outcome, 0) + 1
    return counts


def _verdict(wrong: int, problems: List[str], faults: int,
             goodput_ratio: Optional[float], aborted: int) -> str:
    """Grade the run's fault recovery."""
    if wrong > 0 or problems:
        return VERDICT_UNSAFE
    if faults == 0:
        return VERDICT_CLEAN
    if goodput_ratio is not None:
        return (VERDICT_RECOVERED if goodput_ratio >= 0.95
                else VERDICT_DEGRADED)
    return VERDICT_RECOVERED if aborted == 0 else VERDICT_DEGRADED


def run_soak(config: Optional[SoakConfig] = None) -> Dict[str, Any]:
    """Run one soak and return the ``BENCH_service.json`` report.

    Everything in the report except the ``wall`` block is a
    deterministic function of the config — CI compares reports with
    ``wall`` stripped.
    """
    config = config if config is not None else SoakConfig()
    wall_start = time.time()
    schedule = build_schedule(config)
    generated = sum(len(entries) for entries in schedule)
    faults_on = config.fault_plan is not None or config.fault_rate > 0.0

    service, problems = _run_service(config, schedule, with_faults=faults_on)
    fleet = service.fleet_counters()
    outcomes = _outcome_counts(service)
    goodput = service.goodput_mbytes_per_s()
    latency = service.telemetry.latency()

    vs_faultfree: Optional[Dict[str, float]] = None
    goodput_ratio: Optional[float] = None
    if faults_on and config.control_run:
        control, _ = _run_service(config, schedule, with_faults=False)
        control_goodput = control.goodput_mbytes_per_s()
        control_p99 = control.telemetry.latency()["p99"]
        goodput_ratio = (goodput / control_goodput
                         if control_goodput > 0.0 else 1.0)
        vs_faultfree = {
            "goodput_ratio": round(goodput_ratio, 4),
            "p99_ratio": round(latency["p99"] / control_p99, 4)
            if control_p99 > 0.0 else 1.0,
            "faultfree_goodput_mbytes_per_s": round(control_goodput, 4),
            "faultfree_p99_us": round(control_p99, 3),
        }

    aborted = outcomes.get(OUTCOME_ABORTED, 0)
    verdict = _verdict(fleet["wrong_transfers"], problems,
                       fleet["faults"], goodput_ratio, aborted)
    if verdict == VERDICT_UNSAFE:
        # Freeze the evidence on every shard before reporting: the
        # UNSAFE verdict is one of the flight recorder's triggers.
        for shard in service.shards:
            shard.flightrec.bundle(
                REASON_UNSAFE_VERDICT, ws=shard.ws, seed=config.seed,
                tick=service.tick,
                offending=[{"problem": p} for p in problems],
                fault_plan=service.config.fault_plan,
                counters=shard.counters(),
                detail="soak verdict UNSAFE")
    bundles = service.postmortems()
    by_reason: Dict[str, int] = {}
    for bundle in bundles:
        by_reason[bundle["reason"]] = by_reason.get(bundle["reason"], 0) + 1
    report: Dict[str, Any] = {
        "benchmark": "service_soak",
        "config": config.to_dict(),
        "requests": {
            "generated": generated,
            "admitted": service.admission.total_admitted,
            "rejected": service.admission.total_rejected,
            "rejected_by_reason": dict(sorted(
                service.admission.rejections_by_reason.items())),
            "completed": service.telemetry.completed,
            "retried": outcomes.get(OUTCOME_RETRIED, 0),
            "fell_back": outcomes.get(OUTCOME_FELL_BACK, 0),
            "aborted": aborted,
            "wrong_data": outcomes.get(OUTCOME_WRONG_DATA, 0),
            "wrong_transfers": fleet["wrong_transfers"],
        },
        "goodput_mbytes_per_s": round(goodput, 4),
        "latency_us": {k: round(v, 3) for k, v in latency.items()},
        "fairness": {
            k: (round(v, 4) if isinstance(v, float) else v)
            for k, v in service.telemetry.fairness().items()},
        "admission_fairness": round(
            service.admission.admitted_fairness(), 4),
        "counters": fleet,
        "per_shard": [shard.snapshot() for shard in service.shards],
        "faults": {
            "enabled": faults_on,
            "injected": fleet["faults"],
            "sweep_problems": problems,
            "verdict": verdict,
        },
        "slo": service.slo.snapshot(),
        "postmortems": {
            "count": len(bundles),
            "by_reason": dict(sorted(by_reason.items())),
        },
        "trend": service.telemetry.trend_report(
            meta={"benchmark": "service_soak", "seed": config.seed}),
    }
    if vs_faultfree is not None:
        report["vs_faultfree"] = vs_faultfree
    report["wall"] = {"wall_s": round(time.time() - wall_start, 3)}
    report["_service"] = service  # stripped before serialization
    report["_postmortems"] = bundles  # full bundles (``--postmortem``)
    return report


def strip_runtime(report: Dict[str, Any]) -> Dict[str, Any]:
    """Drop non-serializable / non-deterministic fields for JSON output."""
    out = {k: v for k, v in report.items()
           if k not in ("_service", "_postmortems")}
    return out


def deterministic_view(report: Dict[str, Any]) -> Dict[str, Any]:
    """The report minus wall-clock fields — identical across same-seed
    runs; what determinism tests and CI diffs compare."""
    return {k: v for k, v in strip_runtime(report).items() if k != "wall"}
