"""Request and completion types of the always-on DMA service.

A :class:`Request` is what a tenant submits (over the in-process API or
the ``repro serve`` JSON-lines socket); a :class:`Completion` is what
comes back.  Both are plain dataclasses with ``to_dict`` renderings so
the front end can speak JSON without a serialization layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import ConfigError
from ..obs.context import TraceContext

#: Operation kinds a shard can execute.
KIND_DMA = "dma"
KIND_ATOMIC = "atomic"
KIND_MESSAGE = "message"
REQUEST_KINDS = (KIND_DMA, KIND_ATOMIC, KIND_MESSAGE)

#: Completion outcomes, roughly ordered from best to worst.
OUTCOME_COMPLETED = "completed"
OUTCOME_RETRIED = "retried"
OUTCOME_FELL_BACK = "fell-back"
OUTCOME_ABORTED = "aborted"
OUTCOME_WRONG_DATA = "wrong-data"
OUTCOME_REJECTED = "rejected"


@dataclass(frozen=True)
class Request:
    """One tenant operation.

    Attributes:
        tenant: tenant name (stable across the service's lifetime; the
            shard mapping hashes it).
        kind: ``"dma"`` (default), ``"atomic"``, or ``"message"``.
        size: payload bytes for DMA/message requests (capped by the
            shard's buffer geometry); ignored for atomics.
        hot: target the shard's shared hot-receiver buffer instead of
            the tenant's private destination — the skewed-traffic knob.
        shard: route to this shard index instead of the tenant-hash
            shard (incast bursts aim many tenants at one shard).
        tick: submit time in service ticks (filled by the driver).
        req_id: unique id within one service lifetime.
        trace: the distributed-tracing context (minted at admission if
            the client did not send one) — every span this request
            touches, in any process, carries its ``trace_id``.
    """

    tenant: str
    kind: str = KIND_DMA
    size: int = 1024
    hot: bool = False
    shard: Optional[int] = None
    tick: int = 0
    req_id: int = 0
    trace: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ConfigError(f"unknown request kind {self.kind!r}")
        if self.size <= 0:
            raise ConfigError(f"size must be positive, got {self.size}")
        if not self.tenant:
            raise ConfigError("tenant name must be non-empty")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering."""
        out: Dict[str, Any] = {
            "tenant": self.tenant, "kind": self.kind,
            "size": self.size, "hot": self.hot, "shard": self.shard,
            "tick": self.tick, "req_id": self.req_id}
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Request":
        """Parse a request object (the ``repro serve`` wire format)."""
        known = {"tenant", "kind", "size", "hot", "shard", "tick",
                 "req_id", "trace"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown request field(s): {sorted(unknown)}")
        if "tenant" not in data:
            raise ConfigError("request needs a 'tenant'")
        kwargs = dict(data)
        trace = kwargs.get("trace")
        if isinstance(trace, dict):
            kwargs["trace"] = TraceContext.from_dict(trace)
        return cls(**kwargs)


@dataclass(frozen=True)
class Completion:
    """The outcome of one request.

    Attributes:
        request: the request this answers.
        ok: whether the operation ultimately succeeded *and* moved the
            right bytes.
        outcome: one of the OUTCOME_* strings.
        latency_us: simulated time the operation occupied its shard,
            in microseconds (0 for rejections).
        attempts: initiation attempts (retries + fallback included).
        fell_back: degraded to the kernel syscall path.
        shard: shard index that executed (or would have executed) it.
        bytes_moved: payload bytes landed (0 unless ``ok``).
        finished_tick: service tick at completion.
        reason: rejection reason for ``outcome == "rejected"``.
    """

    request: Request
    ok: bool
    outcome: str
    latency_us: float = 0.0
    attempts: int = 0
    fell_back: bool = False
    shard: int = -1
    bytes_moved: int = 0
    finished_tick: int = 0
    reason: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (request inlined)."""
        out: Dict[str, Any] = {
            "tenant": self.request.tenant,
            "kind": self.request.kind,
            "req_id": self.request.req_id,
            "ok": self.ok,
            "outcome": self.outcome,
            "latency_us": round(self.latency_us, 3),
            "attempts": self.attempts,
            "fell_back": self.fell_back,
            "shard": self.shard,
            "bytes_moved": self.bytes_moved,
        }
        if self.reason is not None:
            out["reason"] = self.reason
        if self.request.trace is not None:
            out["trace_id"] = self.request.trace.trace_id
        return out
