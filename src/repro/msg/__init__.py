"""A user-level message-passing library built on the paper's primitives.

This is the downstream payoff the paper's introduction promises: once
DMA initiation and atomic operations run from user level, a messaging
layer needs *no* kernel involvement on its data path at all.

* :mod:`repro.msg.ring` — a single-producer/single-consumer ring in the
  receiver's memory, filled by remote DMA, with credit-based flow
  control returned by reverse DMA;
* :mod:`repro.msg.channel` — :class:`MessageChannel`, the user-facing
  send/receive API over a ring (one per direction for duplex);
* :mod:`repro.msg.barrier` — a cluster-wide sense-reversing barrier
  built on user-level remote ``atomic_add``;
* :mod:`repro.msg.rpc` — request/reply RPC whose whole round trip runs
  on user-level DMA.
"""

from .barrier import ClusterBarrier
from .channel import MessageChannel
from .ring import RingLayout, RingReceiver, RingSender
from .rpc import RpcClient, RpcServer, make_rpc_pair

__all__ = [
    "ClusterBarrier",
    "MessageChannel",
    "RingLayout",
    "RingReceiver",
    "RingSender",
    "RpcClient",
    "RpcServer",
    "make_rpc_pair",
]
