"""A remote ring buffer fed by user-level DMA.

The classic NOW message channel (SHRIMP, Hamlyn, Telegraphos all built
variants): the receiver owns a ring of fixed-size slots in its own
memory; the sender deposits messages into the slots by remote DMA and
advances a *tail* counter, also by remote DMA; the receiver consumes
slots and returns *credits* (its head counter) by reverse DMA.  After
the one-time kernel setup (buffers, shadow mappings, remote windows),
**no kernel is involved in any send or receive** — this is precisely the
workload the paper's user-level initiation exists for, and with the
kernel path each message would eat 2 × 18.6 µs of syscalls instead of a
few microseconds of shadow accesses.

Memory layout (all in the receiver's physical memory)::

    ring base:  +0x00   tail word   (written remotely by the sender)
                +0x08.. reserved header space (one page)
    slots:      header_page + k * slot_size, k in [0, n_slots)
                each slot: [length:8][payload: slot_size-8]

Sender-side mirror (in the sender's memory)::

    +0x00   head word  (written remotely by the receiver: credits)

Ordering note: the tail update must not overtake its payload.  The
sender therefore polls the payload transfer's completion (a §3.1 status
read) before launching the tail update — on same-link FIFO delivery the
tail then always arrives after the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.api import DmaChannel, InitiationResult
from ..core.machine import Workstation
from ..errors import ConfigError
from ..faults.retry import RetryPolicy
from ..hw.pagetable import PAGE_SIZE
from ..os.process import Buffer, Process

_LEN_PREFIX = 8


@dataclass(frozen=True)
class RingLayout:
    """Geometry of one ring.

    Attributes:
        n_slots: slot count (power of two).
        slot_size: bytes per slot including the 8-byte length prefix.
    """

    n_slots: int = 8
    slot_size: int = 1024

    def __post_init__(self) -> None:
        if self.n_slots <= 0 or self.n_slots & (self.n_slots - 1):
            raise ConfigError(
                f"n_slots must be a power of two, got {self.n_slots}")
        if self.slot_size <= _LEN_PREFIX or self.slot_size % 8:
            raise ConfigError(
                f"slot_size must be a multiple of 8 greater than "
                f"{_LEN_PREFIX}, got {self.slot_size}")

    @property
    def max_payload(self) -> int:
        """Largest message the ring can carry."""
        return self.slot_size - _LEN_PREFIX

    @property
    def slots_bytes(self) -> int:
        """Bytes of slot storage (page-rounded)."""
        raw = self.n_slots * self.slot_size
        return (raw + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)

    @property
    def total_bytes(self) -> int:
        """Header page plus slot storage."""
        return PAGE_SIZE + self.slots_bytes

    def slot_offset(self, index: int) -> int:
        """Byte offset of slot ``index % n_slots`` from the ring base."""
        return PAGE_SIZE + (index % self.n_slots) * self.slot_size


class RingReceiver:
    """The consumer side: owns the ring, polls it, returns credits.

    Args:
        retry_policy: when given, the credit-return DMA retries with
            backoff (and optionally degrades to the kernel path) instead
            of raising on the first rejection — required on faulty
            hardware (see repro.faults).
    """

    def __init__(self, ws: Workstation, proc: Process,
                 layout: RingLayout,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.ws = ws
        self.proc = proc
        self.layout = layout
        self.retry_policy = retry_policy
        # The ring itself (local memory, written remotely by the sender;
        # no shadow mappings needed on it).
        self.ring: Buffer = ws.kernel.alloc_buffer(
            proc, layout.total_bytes, shadow=False)
        # Credit staging word, DMA'd back to the sender: needs a shadow
        # mapping because it is a DMA *source*.
        self.credit_buf: Buffer = ws.kernel.alloc_buffer(
            proc, PAGE_SIZE, shadow=proc.dma is not None)
        self.chan = DmaChannel(
            ws, proc, via="user" if proc.dma is not None else "kernel")
        self.head = 0
        self.messages_received = 0
        self._credit_window: Optional[int] = None

    @property
    def ring_global_base(self) -> int:
        """Global address of the ring base (give this to the sender)."""
        return self.ws.nic.global_address(self.ring.paddr)

    def connect_credits(self, sender_mirror_global: int) -> None:
        """Map the sender's head-mirror word for credit returns."""
        self._credit_window = self.ws.kernel.map_remote_window(
            self.proc, sender_mirror_global, PAGE_SIZE)

    def _tail(self) -> int:
        return self.ws.ram.read_word(self.ring.paddr)

    @property
    def available(self) -> int:
        """Messages deposited but not yet consumed."""
        return self._tail() - self.head

    def poll(self) -> Optional[bytes]:
        """Consume one message if present; returns its payload or None.

        Reads are the application's own loads from its ring memory; the
        credit return is one user-level DMA of the head counter back to
        the sender's mirror.
        """
        if self.available <= 0:
            return None
        offset = self.layout.slot_offset(self.head)
        length = self.ws.ram.read_word(self.ring.paddr + offset)
        if length > self.layout.max_payload:
            raise ConfigError(
                f"corrupt slot: length {length} exceeds "
                f"{self.layout.max_payload}")
        payload = self.ws.ram.read(
            self.ring.paddr + offset + _LEN_PREFIX, length)
        self.head += 1
        self.messages_received += 1
        self._return_credit()
        return payload

    def _return_credit(self) -> None:
        if self._credit_window is None:
            return
        self.ws.ram.write_word(self.credit_buf.paddr, self.head)
        result: InitiationResult
        if self.retry_policy is not None:
            result = self.chan.initiate_reliable(
                self.credit_buf.vaddr, self._credit_window, 8,
                policy=self.retry_policy).initiation
        else:
            result = self.chan.initiate(self.credit_buf.vaddr,
                                        self._credit_window, 8)
        if not result.ok:
            raise ConfigError("credit return DMA rejected")


class RingSender:
    """The producer side: deposits messages by remote DMA.

    Args:
        retry_policy: when given, the slot and tail DMAs retry with
            backoff (and optionally degrade to the kernel path) instead
            of raising on the first rejection — required on faulty
            hardware (see repro.faults).
    """

    def __init__(self, ws: Workstation, proc: Process,
                 layout: RingLayout, ring_global_base: int,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.ws = ws
        self.proc = proc
        self.layout = layout
        self.retry_policy = retry_policy
        # Staging buffer: one slot image plus the tail word (staged on
        # its own page after the slot image); a DMA source, so shadowed.
        slot_pages = (layout.slot_size + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        staging_bytes = slot_pages + PAGE_SIZE
        self.staging: Buffer = ws.kernel.alloc_buffer(
            proc, staging_bytes, shadow=proc.dma is not None)
        # The receiver writes credits here (plain local memory).
        self.mirror: Buffer = ws.kernel.alloc_buffer(
            proc, PAGE_SIZE, shadow=False)
        self.chan = DmaChannel(
            ws, proc, via="user" if proc.dma is not None else "kernel")
        self.window = ws.kernel.map_remote_window(
            proc, ring_global_base, layout.total_bytes)
        self.tail = 0
        self.messages_sent = 0
        self.full_rejections = 0
        # The tail word is staged on the page after the slot image.
        self._tail_stage_off = slot_pages

    @property
    def mirror_global(self) -> int:
        """Global address of the credit mirror (give to the receiver)."""
        return self.ws.nic.global_address(self.mirror.paddr)

    @property
    def credits(self) -> int:
        """Free slots according to the latest returned head counter."""
        head = self.ws.ram.read_word(self.mirror.paddr)
        return self.layout.n_slots - (self.tail - head)

    def send(self, payload: bytes) -> bool:
        """Deposit one message; False when the ring is full.

        Two user-level DMAs: slot image, then (after the slot transfer
        completes — a §3.1 status poll) the tail word.

        Raises:
            ConfigError: if the payload exceeds the slot capacity.
        """
        if len(payload) > self.layout.max_payload:
            raise ConfigError(
                f"payload of {len(payload)} bytes exceeds slot "
                f"capacity {self.layout.max_payload}")
        if self.credits <= 0:
            self.full_rejections += 1
            return False
        # Stage [length][payload] — the application's own stores.
        self.ws.ram.write_word(self.staging.paddr, len(payload))
        self.ws.ram.write(self.staging.paddr + _LEN_PREFIX, payload)
        slot_off = self.layout.slot_offset(self.tail)
        image_len = _LEN_PREFIX + len(payload)
        if not self._slot_dma(slot_off, image_len):
            raise ConfigError("slot DMA rejected")
        # Payload has landed (status polled to zero); publish the tail.
        self.tail += 1
        self.ws.ram.write_word(
            self.staging.paddr + self._tail_stage_off, self.tail)
        if not self._tail_dma():
            raise ConfigError("tail DMA rejected")
        self.messages_sent += 1
        return True

    def _slot_dma(self, slot_off: int, image_len: int) -> bool:
        """Move one slot image; hardened when a retry policy is set."""
        if self.retry_policy is not None:
            return self.chan.dma_reliable(
                self.staging.vaddr, self.window + slot_off, image_len,
                policy=self.retry_policy).ok
        return self.chan.dma(self.staging.vaddr, self.window + slot_off,
                             image_len).ok

    def _tail_dma(self) -> bool:
        """Publish the tail word.

        Under a retry policy the tail update is also driven to
        *completion* (not just accepted initiation): a tail whose bytes
        never land would strand the message, and re-running the copy is
        idempotent — the counter value, not an increment, is what moves.
        """
        vsrc = self.staging.vaddr + self._tail_stage_off
        if self.retry_policy is not None:
            return self.chan.dma_reliable(
                vsrc, self.window, 8, policy=self.retry_policy).ok
        return self.chan.initiate(vsrc, self.window, 8).ok
