"""A cluster barrier built on user-level remote atomic operations.

§3.5's atomics exist to support exactly this kind of shared-memory
coordination on a NOW.  The barrier is sense-reversing:

* a *counter* word lives at a home node; every arrival does a remote
  user-level ``atomic_add(counter, 1)``;
* each participant owns a local *sense* word; the **last** arriver
  resets the counter and flips everyone's sense word with remote
  ``fetch_and_store`` operations — all still from user level;
* the others spin on their own local sense word (plain loads — no
  network traffic while waiting).

Because the simulation is single-threaded, ``arrive()`` returns a
:class:`BarrierTicket` whose :attr:`~BarrierTicket.passed` flips once
the release lands, instead of blocking the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.atomics import AtomicChannel
from ..core.machine import Workstation
from ..errors import ConfigError
from ..hw.pagetable import PAGE_SIZE
from ..os.process import Process


@dataclass
class _Participant:
    ws: Workstation
    proc: Process
    chan: AtomicChannel
    counter_window: int   # vaddr naming the home counter
    sense_buf_paddr: int  # local sense word (spun on locally)
    sense_vaddr: int
    sense_windows: List[int]  # windows onto everyone's sense words


class BarrierTicket:
    """Handle returned by :meth:`ClusterBarrier.arrive`."""

    def __init__(self, barrier: "ClusterBarrier", index: int,
                 expected_sense: int) -> None:
        self._barrier = barrier
        self._index = index
        self._expected = expected_sense

    @property
    def passed(self) -> bool:
        """Whether the barrier has released this participant."""
        participant = self._barrier.participants[self._index]
        sense = participant.ws.ram.read_word(participant.sense_buf_paddr)
        return sense == self._expected


class ClusterBarrier:
    """A sense-reversing barrier over user-level remote atomics."""

    def __init__(self, home_ws: Workstation,
                 members: List[Tuple[Workstation, Process]]) -> None:
        if len(members) < 2:
            raise ConfigError("a barrier needs at least two members")
        for ws, _proc in members + [(home_ws, None)]:
            if ws.atomic_unit is None:
                raise ConfigError(
                    "every member machine needs an atomic unit "
                    "(MachineConfig.atomic_mode)")
        self.home_ws = home_ws
        home_owner = home_ws.kernel.spawn("barrier-home")
        self._counter_buf = home_ws.kernel.alloc_buffer(
            home_owner, PAGE_SIZE, shadow=False)
        counter_global = home_ws.nic.global_address(
            self._counter_buf.paddr)

        self.participants: List[_Participant] = []
        sense_globals: List[int] = []
        for ws, proc in members:
            if proc.atomic is None:
                ws.kernel.enable_user_atomics(proc)
            sense_buf = ws.kernel.alloc_buffer(proc, PAGE_SIZE,
                                               shadow=False)
            sense_globals.append(ws.nic.global_address(sense_buf.paddr))
            counter_window = ws.kernel.map_remote_atomic_window(
                proc, counter_global, PAGE_SIZE)
            self.participants.append(_Participant(
                ws=ws, proc=proc, chan=AtomicChannel(ws, proc),
                counter_window=counter_window,
                sense_buf_paddr=sense_buf.paddr,
                sense_vaddr=sense_buf.vaddr,
                sense_windows=[]))
        # Every participant can flip every sense word (any of them may
        # be the last arriver).
        for participant in self.participants:
            for sense_global in sense_globals:
                participant.sense_windows.append(
                    participant.ws.kernel.map_remote_atomic_window(
                        participant.proc, sense_global, PAGE_SIZE))
        self._sense = 0
        self.episodes = 0

    @property
    def size(self) -> int:
        """Number of participants."""
        return len(self.participants)

    def arrive(self, index: int) -> BarrierTicket:
        """Participant *index* arrives; returns its release ticket.

        The last arriver resets the counter and releases everyone with
        remote fetch_and_store operations — all user-level.
        """
        participant = self.participants[index]
        expected = self._sense + 1
        result = participant.chan.atomic_add(participant.counter_window, 1)
        if not result.ok:
            raise ConfigError("barrier arrival atomic_add rejected")
        if result.old_value == self.size - 1:
            # Last arrival: reset the counter, flip all senses.
            reset = participant.chan.fetch_and_store(
                participant.counter_window, 0)
            if not reset.ok:
                raise ConfigError("barrier counter reset rejected")
            for window in participant.sense_windows:
                flip = participant.chan.fetch_and_store(window, expected)
                if not flip.ok:
                    raise ConfigError("barrier sense flip rejected")
            self._sense = expected
            self.episodes += 1
        return BarrierTicket(self, index, expected)
