"""Request/reply RPC over the user-level message channels.

The last rung of the communication stack the paper enables: a remote
procedure call whose entire round trip — request deposit, server poll,
reply deposit — runs on user-level DMA.  With kernel-initiated
transfers the same RPC pays four Fig. 1 syscalls (two sends, two credit
returns) before any server work happens.

Wire format: an 8-byte little-endian correlation id followed by the
payload.  One :class:`RpcEndpoint` per side, built from a channel pair
(A->B requests, B->A replies).
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional, Tuple

from ..errors import ConfigError
from ..faults.retry import RetryPolicy
from ..units import Time, us
from .channel import MessageChannel
from .ring import RingLayout

_HEADER = struct.Struct("<Q")

#: A server handler: request payload -> reply payload.
Handler = Callable[[bytes], bytes]


def _pack(correlation: int, payload: bytes) -> bytes:
    return _HEADER.pack(correlation) + payload


def _unpack(message: bytes) -> Tuple[int, bytes]:
    if len(message) < _HEADER.size:
        raise ConfigError(f"runt RPC message of {len(message)} bytes")
    (correlation,) = _HEADER.unpack(message[:_HEADER.size])
    return correlation, message[_HEADER.size:]


class RpcClient:
    """The caller side: sends requests, waits for matching replies.

    Args:
        retry_policy: when given, a call whose reply does not arrive
            within the (per-attempt) timeout is *retransmitted* up to
            ``max_attempts`` times, with the policy's backoff between
            attempts.  Correlation ids make retransmission safe: the
            server deduplicates and replays its cached reply, so the
            handler still runs at most once per logical call.
    """

    def __init__(self, requests: MessageChannel,
                 replies: MessageChannel,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.requests = requests
        self.replies = replies
        self.retry_policy = retry_policy
        self._next_correlation = 1
        self.calls_completed = 0
        self.retransmissions = 0
        self._rng = (retry_policy.make_rng(0x52504331)  # "RPC1"
                     if retry_policy is not None else None)

    def call(self, payload: bytes, server: "RpcServer",
             timeout: Time = us(50_000)) -> Optional[bytes]:
        """One synchronous RPC: send, let the server run, await reply.

        The simulation is single-threaded, so the server's polling loop
        is driven explicitly between send and receive (*server*).

        Returns the reply payload, or None on timeout (after all
        retransmissions, when a retry policy is set).
        """
        correlation = self._next_correlation
        self._next_correlation += 1
        attempts = (self.retry_policy.max_attempts
                    if self.retry_policy is not None else 1)
        sim = self.requests.sender.ws.sim
        for attempt in range(1, attempts + 1):
            reply = self._one_attempt(correlation, payload, server, timeout)
            if reply is not None:
                self.calls_completed += 1
                return reply
            if attempt < attempts:
                self.retransmissions += 1
                self.requests.sender.ws.stats.counter(
                    "rpc.retransmissions").add()
                assert self.retry_policy is not None
                sim.advance(self.retry_policy.backoff(attempt, self._rng))
        return None

    def _one_attempt(self, correlation: int, payload: bytes,
                     server: "RpcServer",
                     timeout: Time) -> Optional[bytes]:
        if not self.requests.send(_pack(correlation, payload)):
            return None  # request ring full
        server.serve_pending(timeout=timeout)
        reply_message = self.replies.recv(timeout=timeout)
        while reply_message is not None:
            reply_correlation, reply = _unpack(reply_message)
            if reply_correlation == correlation:
                return reply
            reply_message = self.replies.recv(timeout=timeout)
        return None


class RpcServer:
    """The callee side: polls requests, runs the handler, replies.

    Replies are cached by correlation id (a bounded LRU of
    ``dedupe_window`` entries), so a retransmitted request replays the
    cached reply instead of re-running the handler — at-most-once
    execution even when the client retries.
    """

    def __init__(self, requests: MessageChannel,
                 replies: MessageChannel, handler: Handler,
                 dedupe_window: int = 64) -> None:
        self.requests = requests
        self.replies = replies
        self.handler = handler
        self.requests_served = 0
        self.duplicates_replayed = 0
        self.dedupe_window = dedupe_window
        self._replied: Dict[int, bytes] = {}

    def serve_pending(self, timeout: Time = us(50_000)) -> int:
        """Serve every request deliverable within *timeout*.

        Returns the number of requests handled (replayed duplicates
        included).
        """
        handled = 0
        message = self.requests.recv(timeout=timeout)
        while message is not None:
            correlation, payload = _unpack(message)
            if correlation in self._replied:
                reply = self._replied[correlation]
                self.duplicates_replayed += 1
            else:
                reply = self.handler(payload)
                self._remember(correlation, reply)
                self.requests_served += 1
            if not self.replies.send(_pack(correlation, reply)):
                raise ConfigError("reply ring full")
            handled += 1
            message = self.requests.poll()
        return handled

    def _remember(self, correlation: int, reply: bytes) -> None:
        self._replied[correlation] = reply
        while len(self._replied) > self.dedupe_window:
            self._replied.pop(next(iter(self._replied)))


def make_rpc_pair(client_ws, client_proc, server_ws, server_proc,
                  handler: Handler,
                  layout: Optional[RingLayout] = None,
                  retry_policy: Optional[RetryPolicy] = None
                  ) -> Tuple[RpcClient, RpcServer]:
    """Wire a client/server RPC pair between two processes.

    Builds the two underlying message channels (requests and replies)
    and returns the endpoints.

    Args:
        retry_policy: harden both channels' DMAs *and* enable
            client-side retransmission with server-side deduplication.
    """
    ring_layout = layout if layout is not None else RingLayout(
        n_slots=8, slot_size=512)
    requests = MessageChannel.create(client_ws, client_proc,
                                     server_ws, server_proc,
                                     ring_layout,
                                     retry_policy=retry_policy)
    replies = MessageChannel.create(server_ws, server_proc,
                                    client_ws, client_proc,
                                    ring_layout,
                                    retry_policy=retry_policy)
    return (RpcClient(requests, replies, retry_policy=retry_policy),
            RpcServer(requests, replies, handler))
