"""Request/reply RPC over the user-level message channels.

The last rung of the communication stack the paper enables: a remote
procedure call whose entire round trip — request deposit, server poll,
reply deposit — runs on user-level DMA.  With kernel-initiated
transfers the same RPC pays four Fig. 1 syscalls (two sends, two credit
returns) before any server work happens.

Wire format: an 8-byte little-endian correlation id followed by the
payload.  One :class:`RpcEndpoint` per side, built from a channel pair
(A->B requests, B->A replies).
"""

from __future__ import annotations

import struct
from typing import Callable, Optional, Tuple

from ..errors import ConfigError
from ..units import Time, us
from .channel import MessageChannel
from .ring import RingLayout

_HEADER = struct.Struct("<Q")

#: A server handler: request payload -> reply payload.
Handler = Callable[[bytes], bytes]


def _pack(correlation: int, payload: bytes) -> bytes:
    return _HEADER.pack(correlation) + payload


def _unpack(message: bytes) -> Tuple[int, bytes]:
    if len(message) < _HEADER.size:
        raise ConfigError(f"runt RPC message of {len(message)} bytes")
    (correlation,) = _HEADER.unpack(message[:_HEADER.size])
    return correlation, message[_HEADER.size:]


class RpcClient:
    """The caller side: sends requests, waits for matching replies."""

    def __init__(self, requests: MessageChannel,
                 replies: MessageChannel) -> None:
        self.requests = requests
        self.replies = replies
        self._next_correlation = 1
        self.calls_completed = 0

    def call(self, payload: bytes, server: "RpcServer",
             timeout: Time = us(50_000)) -> Optional[bytes]:
        """One synchronous RPC: send, let the server run, await reply.

        The simulation is single-threaded, so the server's polling loop
        is driven explicitly between send and receive (*server*).

        Returns the reply payload, or None on timeout.
        """
        correlation = self._next_correlation
        self._next_correlation += 1
        if not self.requests.send(_pack(correlation, payload)):
            return None  # request ring full
        server.serve_pending(timeout=timeout)
        deadline_reply = self.replies.recv(timeout=timeout)
        while deadline_reply is not None:
            reply_correlation, reply = _unpack(deadline_reply)
            if reply_correlation == correlation:
                self.calls_completed += 1
                return reply
            deadline_reply = self.replies.recv(timeout=timeout)
        return None


class RpcServer:
    """The callee side: polls requests, runs the handler, replies."""

    def __init__(self, requests: MessageChannel,
                 replies: MessageChannel, handler: Handler) -> None:
        self.requests = requests
        self.replies = replies
        self.handler = handler
        self.requests_served = 0

    def serve_pending(self, timeout: Time = us(50_000)) -> int:
        """Serve every request deliverable within *timeout*.

        Returns the number of requests handled.
        """
        handled = 0
        message = self.requests.recv(timeout=timeout)
        while message is not None:
            correlation, payload = _unpack(message)
            reply = self.handler(payload)
            if not self.replies.send(_pack(correlation, reply)):
                raise ConfigError("reply ring full")
            handled += 1
            self.requests_served += 1
            message = self.requests.poll()
        return handled


def make_rpc_pair(client_ws, client_proc, server_ws, server_proc,
                  handler: Handler,
                  layout: Optional[RingLayout] = None
                  ) -> Tuple[RpcClient, RpcServer]:
    """Wire a client/server RPC pair between two processes.

    Builds the two underlying message channels (requests and replies)
    and returns the endpoints.
    """
    ring_layout = layout if layout is not None else RingLayout(
        n_slots=8, slot_size=512)
    requests = MessageChannel.create(client_ws, client_proc,
                                     server_ws, server_proc,
                                     ring_layout)
    replies = MessageChannel.create(server_ws, server_proc,
                                    client_ws, client_proc,
                                    ring_layout)
    return (RpcClient(requests, replies),
            RpcServer(requests, replies, handler))
