"""MessageChannel: the user-facing send/receive API.

One :class:`MessageChannel` is a unidirectional message pipe from a
process on one workstation to a process on another (or the same)
workstation, built from a :class:`~repro.msg.ring.RingSender` /
:class:`~repro.msg.ring.RingReceiver` pair.  Construction performs the
one-time kernel setup on both ends; after that every ``send`` is two
user-level DMA initiations and every ``recv`` is local polling plus one
credit DMA — no syscalls anywhere on the data path.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.machine import Workstation
from ..faults.retry import RetryPolicy
from ..os.process import Process
from ..units import Time, us
from .ring import RingLayout, RingReceiver, RingSender


class MessageChannel:
    """A unidirectional user-level message pipe."""

    def __init__(self, sender: RingSender, receiver: RingReceiver) -> None:
        self.sender = sender
        self.receiver = receiver

    @classmethod
    def create(cls, sender_ws: Workstation, sender_proc: Process,
               receiver_ws: Workstation, receiver_proc: Process,
               layout: Optional[RingLayout] = None,
               retry_policy: Optional[RetryPolicy] = None,
               ) -> "MessageChannel":
        """Wire up a channel between two already-spawned processes.

        Both processes should already hold DMA bindings (use
        ``kernel.enable_user_dma`` or ``open_channel``); processes
        without one fall back to kernel-initiated transfers, which works
        but pays the Fig. 1 price per message.

        Args:
            retry_policy: harden every data-path DMA (slot, tail,
                credit) with bounded retry + backoff — see
                repro.faults.retry.  None keeps the fail-fast behaviour.
        """
        ring_layout = layout if layout is not None else RingLayout()
        receiver = RingReceiver(receiver_ws, receiver_proc, ring_layout,
                                retry_policy=retry_policy)
        sender = RingSender(sender_ws, sender_proc, ring_layout,
                            receiver.ring_global_base,
                            retry_policy=retry_policy)
        receiver.connect_credits(sender.mirror_global)
        return cls(sender, receiver)

    # -- data path -----------------------------------------------------------

    def send(self, payload: bytes) -> bool:
        """Deposit one message; False if the ring is currently full."""
        return self.sender.send(payload)

    def poll(self) -> Optional[bytes]:
        """Non-blocking receive: one message or None."""
        return self.receiver.poll()

    def recv(self, timeout: Time = us(10_000)) -> Optional[bytes]:
        """Receive, driving the simulation until a message lands.

        Args:
            timeout: give up after this much simulated time.
        """
        sim = self.receiver.ws.sim
        sim.wait_for(lambda: self.receiver.available > 0,
                     timeout=timeout)
        return self.poll()

    def drain(self) -> List[bytes]:
        """Receive everything currently deliverable."""
        self.receiver.ws.sim.run()
        out: List[bytes] = []
        while True:
            message = self.poll()
            if message is None:
                return out
            out.append(message)

    # -- introspection ------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet consumed."""
        return self.sender.tail - self.receiver.head

    @property
    def stats(self) -> dict:
        """Counters from both endpoints (plus retry/recovery activity)."""
        sender_stats = self.sender.ws.stats
        return {
            "sent": self.sender.messages_sent,
            "received": self.receiver.messages_received,
            "full_rejections": self.sender.full_rejections,
            "credits": self.sender.credits,
            "retries": sender_stats.counter("dma.retries").value,
            "recoveries": sender_stats.counter("dma.recoveries").value,
            "kernel_fallbacks":
                sender_stats.counter("dma.kernel_fallbacks").value,
        }
