"""Counters and latency statistics.

Every hardware and OS model exposes its activity through a
:class:`StatRegistry` so experiments can report instruction counts, bus
transactions, context switches, DMA initiations, and latency distributions
without the models printing anything themselves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..units import Time, to_us


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by *n* (must be non-negative)."""
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {n}")
        self.value += n

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class LatencyStat:
    """Accumulates a latency distribution in integer picoseconds.

    Keeps count/sum/min/max plus the sum of squares for the standard
    deviation, and optionally retains raw samples for percentile queries.
    """

    def __init__(self, name: str, keep_samples: bool = False) -> None:
        self.name = name
        self.count = 0
        self.total: Time = 0
        self.min: Optional[Time] = None
        self.max: Optional[Time] = None
        self._sum_sq = 0
        self._samples: Optional[List[Time]] = [] if keep_samples else None

    def record(self, latency: Time) -> None:
        """Record one latency sample."""
        if latency < 0:
            raise ValueError(
                f"latency stat {self.name!r}: negative sample {latency}")
        self.count += 1
        self.total += latency
        self._sum_sq += latency * latency
        if self.min is None or latency < self.min:
            self.min = latency
        if self.max is None or latency > self.max:
            self.max = latency
        if self._samples is not None:
            self._samples.append(latency)

    @property
    def mean(self) -> float:
        """Mean latency in picoseconds (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def mean_us(self) -> float:
        """Mean latency in microseconds."""
        return to_us(round(self.mean))

    @property
    def stddev(self) -> float:
        """Population standard deviation in picoseconds."""
        if self.count == 0:
            return 0.0
        mean = self.mean
        variance = self._sum_sq / self.count - mean * mean
        return math.sqrt(max(0.0, variance))

    @property
    def has_samples(self) -> bool:
        """Whether raw samples are retained and at least one exists."""
        return bool(self._samples)

    def percentile(self, p: float) -> Time:
        """The *p*-th percentile (0..100) — always a defined value.

        With retained samples the exact interpolated percentile is
        returned.  Without them (``keep_samples=False``, or nothing
        recorded yet) the query degrades instead of failing:

        * no samples recorded at all -> 0;
        * aggregates only -> a coarse estimate interpolated through the
          running (min, mean, max): min..mean over p in [0, 50], then
          mean..max over p in (50, 100].

        Raises:
            ValueError: only for *p* outside [0, 100].
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            if self.count == 0:
                return 0
            assert self.min is not None and self.max is not None
            if p <= 50:
                return round(self.min + (self.mean - self.min) * (p / 50))
            return round(self.mean + (self.max - self.mean) * (p - 50) / 50)
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return round(ordered[low] * (1 - frac) + ordered[high] * frac)

    def reset(self) -> None:
        """Clear all recorded samples and aggregates."""
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._sum_sq = 0
        if self._samples is not None:
            self._samples.clear()

    def __repr__(self) -> str:
        return (f"LatencyStat({self.name!r}, n={self.count}, "
                f"mean={self.mean_us:.3f}us)")


@dataclass
class StatRegistry:
    """A namespace of counters and latency stats owned by one component."""

    prefix: str = ""
    counters: Dict[str, Counter] = field(default_factory=dict)
    latencies: Dict[str, LatencyStat] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        if name not in self.counters:
            self.counters[name] = Counter(self._qualify(name))
        return self.counters[name]

    def latency(self, name: str, keep_samples: bool = False) -> LatencyStat:
        """Get or create the latency stat *name*."""
        if name not in self.latencies:
            self.latencies[name] = LatencyStat(
                self._qualify(name), keep_samples=keep_samples)
        return self.latencies[name]

    def reset(self) -> None:
        """Reset every counter and latency stat in the registry."""
        for counter in self.counters.values():
            counter.reset()
        for stat in self.latencies.values():
            stat.reset()

    def snapshot(self) -> Dict[str, float]:
        """Flat name -> value dict of all counters and latency means (us)."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[self._qualify(name)] = float(counter.value)
        for name, stat in self.latencies.items():
            out[self._qualify(name) + ".mean_us"] = stat.mean_us
            out[self._qualify(name) + ".count"] = float(stat.count)
        return out

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name


def merge_snapshots(snapshots: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Merge several snapshots; later entries win on key collisions."""
    merged: Dict[str, float] = {}
    for snap in snapshots:
        merged.update(snap)
    return merged
