"""The discrete-event simulation engine.

A :class:`Simulator` owns the global clock (integer picoseconds) and a
pending-event store split into two tiers:

* a **slotted event wheel** — a ring of coarse time buckets covering the
  near future (``wheel_slots * 2**wheel_granularity_bits`` picoseconds
  from the current wheel base).  Scheduling into the wheel is an O(1)
  list append; draining scans forward from the current slot, so densely
  scheduled workloads (the NOW fabric, bulk DMA completions) never pay
  heap maintenance;
* a **far heap** — the classic binary heap, holding only events beyond
  the wheel horizon (long timeouts, the "never" sentinel of dropped
  completions).  As the clock advances the wheel rebase migrates heap
  events that have come within the horizon into the wheel.

Components schedule callbacks with :meth:`Simulator.schedule` /
:meth:`Simulator.call_at`, and the owner of the simulation drives it
with :meth:`Simulator.run` (until the queue drains or a deadline passes)
or :meth:`Simulator.step`.

Two styles of progress coexist:

* **Synchronous components** (the CPU executing an instruction stream)
  advance the clock directly with :meth:`Simulator.advance`; they represent
  the single foreground thread of control.
* **Background activities** (DMA data transfers, network deliveries)
  schedule future events; the foreground can :meth:`Simulator.run_until`
  a timestamp or :meth:`Simulator.wait_for` a predicate to let them complete.

Determinism: events fire in ``(when, seq)`` order (``seq`` is a
monotonically increasing insertion number), so identical inputs replay
identically regardless of which tier an event sat in.

:class:`Event` instances are ``__slots__``-backed, and events scheduled
with ``transient=True`` (fire-and-forget callbacks whose handle nobody
retains) are recycled through a free list after firing, so hot loops do
not allocate one object per event.  Recycling switches itself off as
soon as a snapshot is taken or an undo journal is bound, because both
may legitimately hold references to already-fired events.

Snapshot/restore supports the incremental model checker two ways: the
legacy :meth:`Simulator.snapshot`/:meth:`Simulator.restore` pair copies
the live event list, while :meth:`Simulator.bind_journal` switches the
simulator to O(changes) undo journaling (see :mod:`repro.sim.journal`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError
from ..units import Time
from .journal import UndoJournal


class Event:
    """A scheduled callback.

    Events order by ``(when, seq)``; ``seq`` is assigned by the simulator
    so same-time events fire first-scheduled-first.  Cancelled events stay
    in their bucket (wheel slot or heap) but are skipped when reached; the
    owning simulator is notified through ``on_cancel`` so its live-event
    count stays exact without scanning, and so an undo journal can record
    the flag flip.

    Attributes mirror the former dataclass fields; ``__slots__`` keeps
    the per-event footprint small and attribute access fast on the
    scheduling hot path.
    """

    __slots__ = ("when", "seq", "action", "label", "cancelled",
                 "on_cancel", "transient")

    def __init__(self, when: Time, seq: int,
                 action: Callable[[], None], label: str = "",
                 cancelled: bool = False,
                 on_cancel: Optional[Callable[["Event"], None]] = None,
                 transient: bool = False) -> None:
        self.when = when
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = cancelled
        self.on_cancel = on_cancel
        self.transient = transient

    def __lt__(self, other: "Event") -> bool:
        if self.when != other.when:
            return self.when < other.when
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event when={self.when} seq={self.seq} {self.label!r}{flag}>"

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent.

        The owner notification runs *before* the flag flips so a bound
        undo journal records the pre-cancellation value.
        """
        if self.cancelled:
            return
        if self.on_cancel is not None:
            self.on_cancel(self)
        self.cancelled = True


class Simulator:
    """Event wheel + far heap plus the global simulated clock.

    Args:
        wheel_granularity_bits: log2 of the wheel slot width in
            picoseconds.  The default (2**18 ps ≈ 262 ns per slot) puts
            typical DMA completion latencies a handful of slots out.
        wheel_slots: number of wheel slots (power of two).  With the
            defaults the wheel covers ~67 µs; anything later goes to the
            far heap until the wheel base catches up.

    Attributes:
        now: current simulated time in integer picoseconds.
    """

    def __init__(self, wheel_granularity_bits: int = 18,
                 wheel_slots: int = 256) -> None:
        if wheel_slots <= 0 or wheel_slots & (wheel_slots - 1):
            raise SimulationError(
                f"wheel_slots must be a power of two, got {wheel_slots}")
        if wheel_granularity_bits < 0:
            raise SimulationError(
                f"wheel_granularity_bits must be >= 0, "
                f"got {wheel_granularity_bits}")
        self.now: Time = 0
        self._seq = 0
        self._events_fired = 0
        self._live = 0
        # -- wheel geometry --
        self._gran_bits = wheel_granularity_bits
        self._slot_mask = wheel_slots - 1
        self._n_slots = wheel_slots
        self._span: Time = wheel_slots << wheel_granularity_bits
        self._wheel_base: Time = 0
        self._horizon: Time = self._span
        self._slots: List[List[Event]] = [[] for _ in range(wheel_slots)]
        self._wheel_count = 0   # entries in slots, cancelled included
        self._far: List[Event] = []
        # -- head cache: earliest live event, or None when dirty/empty --
        self._head: Optional[Event] = None
        self._head_dirty = False
        # -- live_event_signature cache: dropped on any queue change --
        self._sig: Optional[Tuple[Tuple[Time, str], ...]] = None
        # -- free list --
        self._free: List[Event] = []
        self._no_recycle = False
        # -- undo journal --
        self._journal: Optional[UndoJournal] = None
        self._j_epoch = 0

    # -- journaling -----------------------------------------------------

    def bind_journal(self, journal: Optional[UndoJournal]) -> None:
        """Attach (or detach, with None) a shared undo journal.

        While bound, every mutation records its undo into the journal, so
        ``journal.mark()`` / ``journal.undo_to(mark)`` replace
        :meth:`snapshot` / :meth:`restore` at O(changes) cost.  Event
        recycling is disabled while a journal is bound (undo entries hold
        references to fired events).
        """
        self._journal = journal
        self._j_epoch = 0

    def _j_state(self) -> None:
        """Once per journal epoch, capture the scalar clock/counter blob."""
        journal = self._journal
        if journal is not None and self._j_epoch != journal.epoch:
            self._j_epoch = journal.epoch
            journal.record_call(self._restore_scalars, (
                self.now, self._seq, self._events_fired, self._live,
                self._wheel_base, self._horizon, self._wheel_count))

    def _restore_scalars(self, blob: Tuple[Any, ...]) -> None:
        (self.now, self._seq, self._events_fired, self._live,
         self._wheel_base, self._horizon, self._wheel_count) = blob
        self._head = None
        self._head_dirty = True

    def _j_unplace(self, event: Event) -> None:
        """Undo of a push: remove *event* from whichever tier holds it."""
        self._discard(event)
        self._head = None
        self._head_dirty = True

    def _j_place(self, event: Event) -> None:
        """Undo of a pop: put *event* back (tier chosen by its when)."""
        self._place(event)
        self._head = None
        self._head_dirty = True

    # -- placement ------------------------------------------------------

    def _place(self, event: Event) -> None:
        """Insert into the wheel (near) or the far heap (beyond horizon)."""
        self._sig = None
        if event.when < self._horizon:
            self._slots[(event.when >> self._gran_bits)
                        & self._slot_mask].append(event)
            self._wheel_count += 1
        else:
            heapq.heappush(self._far, event)
        head = self._head
        if not self._head_dirty and (head is None or event < head):
            self._head = event

    def _discard(self, event: Event) -> None:
        """Remove a specific event from its tier (undo/pop helper)."""
        self._sig = None
        if event.when < self._horizon:
            slot = self._slots[(event.when >> self._gran_bits)
                               & self._slot_mask]
            try:
                slot.remove(event)
                self._wheel_count -= 1
                return
            except ValueError:
                pass  # migrated to the far heap by a rebase race
        try:
            self._far.remove(event)
        except ValueError:
            return
        heapq.heapify(self._far)

    def _rebase(self) -> None:
        """Advance the wheel window to the current clock.

        Live wheel events always sit at ``when >= now`` (the event loop
        never lets the clock pass an unfired live event), so rebasing
        re-places every surviving entry into the new window and migrates
        far-heap events that have come within the horizon.  Cancelled
        stragglers from old laps are dropped here.
        """
        base = (self.now >> self._gran_bits) << self._gran_bits
        if base <= self._wheel_base:
            return
        self._j_state()
        survivors: List[Event] = []
        if self._wheel_count:
            for slot in self._slots:
                if slot:
                    survivors.extend(e for e in slot if not e.cancelled)
                    slot.clear()
        self._wheel_base = base
        self._horizon = base + self._span
        self._wheel_count = 0
        for event in survivors:
            self._slots[(event.when >> self._gran_bits)
                        & self._slot_mask].append(event)
        self._wheel_count = len(survivors)
        far = self._far
        horizon = self._horizon
        while far and far[0].when < horizon:
            event = heapq.heappop(far)
            if event.cancelled:
                continue
            self._slots[(event.when >> self._gran_bits)
                        & self._slot_mask].append(event)
            self._wheel_count += 1
        self._head = None
        self._head_dirty = True

    def _recompute_head(self) -> Optional[Event]:
        """Find the earliest live event across both tiers."""
        if self.now >= self._horizon:
            self._rebase()
        best: Optional[Event] = None
        if self._wheel_count:
            start = max(self.now, self._wheel_base) >> self._gran_bits
            mask = self._slot_mask
            slots = self._slots
            for index in range(start, start + self._n_slots):
                slot = slots[index & mask]
                if not slot:
                    continue
                for event in slot:
                    if not event.cancelled and (best is None
                                                or event < best):
                        best = event
                if best is not None:
                    break
        far = self._far
        while far and far[0].cancelled:
            # Journaled so an undo can revive the (then-cancelled) event.
            dead = heapq.heappop(far)
            if self._journal is not None:
                self._j_state()
                self._journal.record_call(self._j_place, dead)
        if far and (best is None or far[0] < best):
            best = far[0]
        self._head = best
        self._head_dirty = best is None
        return best

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: Time, action: Callable[[], None],
                 label: str = "", transient: bool = False) -> Event:
        """Schedule *action* to run *delay* ps from now.

        Args:
            transient: promise that no caller retains the returned event
                (e.g. to cancel it later); such events are recycled
                through a free list after firing.

        Raises:
            SimulationError: if *delay* is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        return self.call_at(self.now + delay, action, label, transient)

    def call_at(self, when: Time, action: Callable[[], None],
                label: str = "", transient: bool = False) -> Event:
        """Schedule *action* at absolute time *when*.

        Raises:
            SimulationError: if *when* is before the current time.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self.now}")
        if self._free:
            event = self._free.pop()
            event.when = when
            event.seq = self._seq
            event.action = action
            event.label = label
            event.cancelled = False
            event.on_cancel = self._note_cancelled
            event.transient = transient
        else:
            event = Event(when=when, seq=self._seq, action=action,
                          label=label, on_cancel=self._note_cancelled,
                          transient=transient)
        self._seq += 1
        journal = self._journal
        if journal is not None:
            self._j_state()
            journal.record_call(self._j_unplace, event)
        self._place(event)
        self._live += 1
        return event

    def _note_cancelled(self, event: Event) -> None:
        # Runs before the cancelled flag flips, so the journal captures
        # the pre-cancellation state.
        journal = self._journal
        if journal is not None:
            self._j_state()
            journal.record_call(self._j_uncancel, event)
        self._live -= 1
        self._sig = None
        if not self._head_dirty and event is self._head:
            self._head = None
            self._head_dirty = True

    def _j_uncancel(self, event: Event) -> None:
        """Undo of a cancel (the scalar blob restores the counters)."""
        event.cancelled = False
        self._sig = None
        self._head = None
        self._head_dirty = True

    # -- synchronous time ---------------------------------------------------

    def advance(self, delta: Time) -> Time:
        """Advance the clock by *delta* ps, firing any events that become due.

        This is the foreground thread of control "spending" time; background
        events scheduled inside the advanced window fire in timestamp order
        before the clock settles at the new value.

        Returns:
            The new current time.

        Raises:
            SimulationError: if *delta* is negative.
        """
        if delta < 0:
            raise SimulationError(f"cannot advance by negative time: {delta}")
        target = self.now + delta
        self._drain_until(target)
        if self._journal is not None:
            self._j_state()
        self.now = target
        return self.now

    # -- event loop -----------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        event = self._peek()
        if event is None:
            return False
        if event.when < self.now:
            raise SimulationError(
                f"event {event.label!r} scheduled at {event.when} "
                f"popped after now={self.now}")
        journal = self._journal
        if journal is not None:
            self._j_state()
            journal.record_call(self._j_place, event)
        self._remove_head(event)
        self.now = event.when
        self._live -= 1
        self._events_fired += 1
        event.action()
        if (event.transient and journal is None and not self._no_recycle
                and len(self._free) < 1024):
            event.action = _NOOP
            event.on_cancel = None
            self._free.append(event)
        return True

    def _remove_head(self, event: Event) -> None:
        """Pop *event*, known to be the current head, from its tier."""
        if event.when < self._horizon:
            slot = self._slots[(event.when >> self._gran_bits)
                               & self._slot_mask]
            try:
                slot.remove(event)
                self._wheel_count -= 1
            except ValueError:
                heapq.heappop(self._far)
        else:
            heapq.heappop(self._far)
        self._head = None
        self._head_dirty = True

    def run(self, until: Optional[Time] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, *until* passes, or a budget hits.

        Args:
            until: absolute deadline; events after it stay queued and the
                clock is left at the deadline (if any events remain) or at
                the last fired event.
            max_events: stop after firing this many events.

        Returns:
            The number of events fired.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            head = self._peek()
            if head is None:
                break
            if until is not None and head.when > until:
                if self._journal is not None:
                    self._j_state()
                self.now = max(self.now, until)
                break
            if self.step():
                fired += 1
        if until is not None and self._live == 0:
            if self._journal is not None:
                self._j_state()
            self.now = max(self.now, until)
        return fired

    def run_until(self, when: Time) -> int:
        """Run all events up to and including absolute time *when*."""
        fired = self.run(until=when)
        if self._journal is not None:
            self._j_state()
        self.now = max(self.now, when)
        return fired

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: Optional[Time] = None) -> bool:
        """Fire events until *predicate* becomes true.

        Args:
            predicate: checked before any event and after each one.
            timeout: give up after this much simulated time elapses.

        Returns:
            True if the predicate became true, False on timeout or if the
            queue drained without satisfying it.
        """
        deadline = None if timeout is None else self.now + timeout
        if predicate():
            return True
        while True:
            head = self._peek()
            if head is None:
                return predicate()
            if deadline is not None and head.when > deadline:
                if self._journal is not None:
                    self._j_state()
                self.now = deadline
                return predicate()
            self.step()
            if predicate():
                return True

    # -- introspection --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Maintained as a counter updated on push, pop, and cancel, so the
        read is O(1) rather than a scan of the wheel and heap.
        """
        return self._live

    @property
    def events_fired(self) -> int:
        """Total number of events that have fired."""
        return self._events_fired

    def time_source(self) -> Callable[[], Time]:
        """A zero-argument callable reading the current simulated time.

        The observability layer (span tracers, metrics samplers) holds
        this instead of the simulator itself, so it can also be driven
        by synthetic clocks in tests.
        """
        return lambda: self.now

    def live_event_signature(self) -> Tuple[Tuple[Time, str], ...]:
        """(when, label) of every live queued event, in firing order.

        Cached between queue mutations: the checker fingerprints the
        simulator once per tree node but the queue changes far less
        often, so the (wheel-scanning) recomputation is rare.
        """
        sig = self._sig
        if sig is None:
            sig = tuple(sorted((e.when, e.label)
                               for e in self._all_events()
                               if not e.cancelled))
            self._sig = sig
        return sig

    def _all_events(self) -> List[Event]:
        """Every queued event (cancelled included), both tiers, any order."""
        events: List[Event] = []
        for slot in self._slots:
            events.extend(slot)
        events.extend(self._far)
        return events

    def _peek(self) -> Optional[Event]:
        """Return the next live event without popping, or None."""
        if not self._head_dirty and self._head is not None:
            return self._head
        if self._live == 0:
            return None
        return self._recompute_head()

    def _drain_until(self, target: Time) -> None:
        """Fire every live event with timestamp <= target."""
        while True:
            head = self._peek()
            if head is None or head.when > target:
                return
            self.step()

    # -- snapshot/restore -----------------------------------------------------

    def snapshot(self) -> Tuple[Any, ...]:
        """Capture clock, counters, and the queued events, by copy.

        The events are captured as a flat list plus each event's
        ``cancelled`` flag; the Event objects themselves are immutable
        apart from that flag, so re-placing the list and the flags
        reproduces the queue exactly — including events that were popped
        or cancelled after the snapshot was taken.  Taking a snapshot
        permanently disables transient-event recycling (the snapshot
        holds references that a recycler would corrupt).

        Journal-bound simulators should use ``journal.mark()`` /
        ``journal.undo_to`` instead; this copying path remains for
        stand-alone use and differential testing.
        """
        self._no_recycle = True
        events = self._all_events()
        return (self.now, self._seq, self._events_fired, self._live,
                events, [e.cancelled for e in events])

    def restore(self, token: Tuple[Any, ...]) -> None:
        """Return to a state captured by :meth:`snapshot`."""
        now, seq, fired, live, events, flags = token
        self._sig = None
        self.now = now
        self._seq = seq
        self._events_fired = fired
        self._live = live
        for slot in self._slots:
            slot.clear()
        self._far.clear()
        self._wheel_count = 0
        self._wheel_base = (now >> self._gran_bits) << self._gran_bits
        self._horizon = self._wheel_base + self._span
        self._head = None
        self._head_dirty = True
        for event, cancelled in zip(events, flags):
            event.cancelled = cancelled
            self._place(event)
        self._head = None
        self._head_dirty = True


def _NOOP() -> None:  # pragma: no cover - free-list placeholder
    return None
