"""The discrete-event simulation engine.

A :class:`Simulator` owns the global clock (integer picoseconds) and a
priority queue of :class:`Event` objects.  Components schedule callbacks with
:meth:`Simulator.schedule` / :meth:`Simulator.call_at`, and the owner of the
simulation drives it with :meth:`Simulator.run` (until the queue drains or a
deadline passes) or :meth:`Simulator.step`.

Two styles of progress coexist:

* **Synchronous components** (the CPU executing an instruction stream)
  advance the clock directly with :meth:`Simulator.advance`; they represent
  the single foreground thread of control.
* **Background activities** (DMA data transfers, network deliveries)
  schedule future events; the foreground can :meth:`Simulator.run_until`
  a timestamp or :meth:`Simulator.wait_for` a predicate to let them complete.

Determinism: events at equal timestamps fire in insertion order (a
monotonically increasing sequence number breaks ties), so identical inputs
replay identically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from ..errors import SimulationError
from ..units import Time


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(when, seq)``; ``seq`` is assigned by the simulator so
    same-time events fire first-scheduled-first.  Cancelled events stay in
    the heap but are skipped when popped; the owning simulator is notified
    through ``on_cancel`` so its live-event count stays exact without
    scanning the heap.
    """

    when: Time
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    on_cancel: Optional[Callable[[], None]] = field(
        compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()


class Simulator:
    """Event queue plus the global simulated clock.

    Attributes:
        now: current simulated time in integer picoseconds.
    """

    def __init__(self) -> None:
        self.now: Time = 0
        self._queue: list[Event] = []
        self._seq = 0
        self._events_fired = 0
        self._live = 0
        self._running = False

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: Time, action: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule *action* to run *delay* ps from now.

        Raises:
            SimulationError: if *delay* is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        return self.call_at(self.now + delay, action, label)

    def call_at(self, when: Time, action: Callable[[], None],
                label: str = "") -> Event:
        """Schedule *action* at absolute time *when*.

        Raises:
            SimulationError: if *when* is before the current time.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self.now}")
        event = Event(when=when, seq=self._seq, action=action, label=label,
                      on_cancel=self._note_cancelled)
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def _note_cancelled(self) -> None:
        self._live -= 1

    # -- synchronous time ---------------------------------------------------

    def advance(self, delta: Time) -> Time:
        """Advance the clock by *delta* ps, firing any events that become due.

        This is the foreground thread of control "spending" time; background
        events scheduled inside the advanced window fire in timestamp order
        before the clock settles at the new value.

        Returns:
            The new current time.

        Raises:
            SimulationError: if *delta* is negative.
        """
        if delta < 0:
            raise SimulationError(f"cannot advance by negative time: {delta}")
        target = self.now + delta
        self._drain_until(target)
        self.now = target
        return self.now

    # -- event loop -----------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.when < self.now:
                raise SimulationError(
                    f"event {event.label!r} scheduled at {event.when} "
                    f"popped after now={self.now}")
            self.now = event.when
            self._live -= 1
            self._events_fired += 1
            event.action()
            return True
        return False

    def run(self, until: Optional[Time] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, *until* passes, or a budget hits.

        Args:
            until: absolute deadline; events after it stay queued and the
                clock is left at the deadline (if any events remain) or at
                the last fired event.
            max_events: stop after firing this many events.

        Returns:
            The number of events fired.
        """
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                break
            head = self._peek()
            if head is None:
                break
            if until is not None and head.when > until:
                self.now = max(self.now, until)
                break
            if self.step():
                fired += 1
        if until is not None and not self._queue:
            self.now = max(self.now, until)
        return fired

    def run_until(self, when: Time) -> int:
        """Run all events up to and including absolute time *when*."""
        fired = self.run(until=when)
        self.now = max(self.now, when)
        return fired

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: Optional[Time] = None) -> bool:
        """Fire events until *predicate* becomes true.

        Args:
            predicate: checked before any event and after each one.
            timeout: give up after this much simulated time elapses.

        Returns:
            True if the predicate became true, False on timeout or if the
            queue drained without satisfying it.
        """
        deadline = None if timeout is None else self.now + timeout
        if predicate():
            return True
        while True:
            head = self._peek()
            if head is None:
                return predicate()
            if deadline is not None and head.when > deadline:
                self.now = deadline
                return predicate()
            self.step()
            if predicate():
                return True

    # -- introspection --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Maintained as a counter updated on push, pop, and cancel, so the
        read is O(1) rather than an O(n) heap scan.
        """
        return self._live

    @property
    def events_fired(self) -> int:
        """Total number of events that have fired."""
        return self._events_fired

    def time_source(self) -> Callable[[], Time]:
        """A zero-argument callable reading the current simulated time.

        The observability layer (span tracers, metrics samplers) holds
        this instead of the simulator itself, so it can also be driven
        by synthetic clocks in tests.
        """
        return lambda: self.now

    def live_event_signature(self) -> Tuple[Tuple[Time, str], ...]:
        """(when, label) of every live queued event, in firing order."""
        return tuple(sorted((e.when, e.label) for e in self._queue
                            if not e.cancelled))

    def _peek(self) -> Optional[Event]:
        """Return the next live event without popping, or None."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def _drain_until(self, target: Time) -> None:
        """Fire every live event with timestamp <= target."""
        while True:
            head = self._peek()
            if head is None or head.when > target:
                return
            self.step()

    # -- snapshot/restore -----------------------------------------------------

    def snapshot(self) -> Tuple[Any, ...]:
        """Capture clock, counters, and the event queue.

        The queue is captured as a shallow list copy (it is already a
        valid heap) plus each event's ``cancelled`` flag; the Event
        objects themselves are immutable apart from that flag, so
        restoring the list and the flags reproduces the queue exactly —
        including events that were popped or cancelled after the
        snapshot was taken.
        """
        return (self.now, self._seq, self._events_fired, self._live,
                list(self._queue), [e.cancelled for e in self._queue])

    def restore(self, token: Tuple[Any, ...]) -> None:
        """Return to a state captured by :meth:`snapshot`."""
        now, seq, fired, live, queue, flags = token
        self.now = now
        self._seq = seq
        self._events_fired = fired
        self._live = live
        self._queue = list(queue)
        for event, cancelled in zip(self._queue, flags):
            event.cancelled = cancelled
