"""Structured trace log.

Components append :class:`TraceEvent` records (timestamp, source, kind,
detail dict) to a shared :class:`TraceLog`.  Tests assert on trace contents
(e.g. "the DMA engine saw exactly this access sequence"), and experiments
can dump traces for debugging.  Tracing is off by default and costs one
branch per call when disabled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

from ..units import Time, fmt_time


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes:
        when: simulated timestamp (ps).
        source: emitting component (e.g. ``"dma"``, ``"cpu0"``).
        kind: event kind within the source (e.g. ``"shadow-store"``).
        detail: free-form payload fields.
        seq: monotonic emission number assigned by the owning log —
            events at equal timestamps sort deterministically by
            ``(when, seq)`` in dumps and exports.
    """

    when: Time
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    def format(self) -> str:
        """One-line rendering for dumps."""
        fields = " ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[{fmt_time(self.when):>12}] {self.source}/{self.kind} {fields}"


class TraceLog:
    """An append-only, filterable event log.

    Attributes:
        enabled: when False (the default), :meth:`emit` is a no-op.
        max_events: ring-buffer style cap; oldest events are dropped once
            exceeded (None means unbounded).
    """

    def __init__(self, enabled: bool = False,
                 max_events: Optional[int] = None) -> None:
        self.enabled = enabled
        self.max_events = max_events
        # A bounded deque makes the cap drop O(1) per emit; the unbounded
        # case stays a deque too so every other method is shape-agnostic.
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._seq = 0

    def emit(self, when: Time, source: str, kind: str, **detail: Any) -> None:
        """Append an event if tracing is enabled.

        With a ``max_events`` cap the oldest event is evicted in O(1)
        (deque ring buffer) — a capped log on a hot path costs the same
        as an uncapped one.  Each event gets the next monotonic ``seq``
        so same-timestamp events keep a deterministic total order.
        """
        if not self.enabled:
            return
        self._events.append(TraceEvent(when, source, kind, detail, self._seq))
        self._seq += 1

    def clear(self) -> None:
        """Drop all recorded events (the seq counter keeps rising)."""
        self._events.clear()

    def snapshot(self):
        """Capture the log state for later :meth:`restore`.

        Without a ring-buffer cap the log is append-only, so a length
        marker (plus the seq counter) suffices; with a cap, old events
        may be dropped between snapshot and restore, so the full list
        is copied.
        """
        if self.max_events is None:
            return (len(self._events), self._seq)
        return (list(self._events), self._seq)

    def restore(self, token) -> None:
        """Return to a state captured by :meth:`snapshot`."""
        marker, self._seq = token
        if isinstance(marker, int):
            while len(self._events) > marker:
                self._events.pop()
        else:
            self._events = deque(marker, maxlen=self.max_events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, source: Optional[str] = None,
               kind: Optional[str] = None,
               where: Optional[Callable[[TraceEvent], bool]] = None,
               ) -> List[TraceEvent]:
        """Return events matching the given filters, in order."""
        out = []
        for event in self._events:
            if source is not None and event.source != source:
                continue
            if kind is not None and event.kind != kind:
                continue
            if where is not None and not where(event):
                continue
            out.append(event)
        return out

    def kinds(self, source: Optional[str] = None) -> List[str]:
        """The sequence of event kinds, optionally filtered by source."""
        return [e.kind for e in self.events(source=source)]

    def dump(self) -> str:
        """Multi-line human-readable rendering of the whole log."""
        return "\n".join(event.format() for event in self._events)
