"""Clock domains.

A :class:`Clock` binds a frequency to the picosecond time base and converts
between cycle counts and durations.  The CPU, the I/O bus, and the DMA
engine each run in their own domain (e.g. a 150 MHz Alpha talking to a
12.5 MHz TurboChannel), matching the paper's prototype where the FPGA board
ran at 12.5 MHz while the host CPU ran an order of magnitude faster.
"""

from __future__ import annotations

from ..errors import ClockError
from ..units import Time, period_ps


class Clock:
    """A named clock domain with a fixed frequency.

    Attributes:
        name: human-readable domain name (e.g. ``"cpu"``, ``"tc-bus"``).
        frequency_hz: the domain frequency in Hz.
        period: one cycle, in integer picoseconds.
    """

    def __init__(self, name: str, frequency_hz: float) -> None:
        if frequency_hz <= 0:
            raise ClockError(
                f"clock {name!r}: frequency must be positive, "
                f"got {frequency_hz}")
        self.name = name
        self.frequency_hz = frequency_hz
        self.period: Time = period_ps(frequency_hz)

    def cycles(self, n: float) -> Time:
        """Duration of *n* cycles (fractional cycles allowed), in ps."""
        if n < 0:
            raise ClockError(f"clock {self.name!r}: negative cycles {n}")
        return round(n * self.period)

    def cycles_in(self, duration: Time) -> float:
        """How many cycles of this domain fit in *duration* ps."""
        if duration < 0:
            raise ClockError(
                f"clock {self.name!r}: negative duration {duration}")
        return duration / self.period

    def align_up(self, t: Time) -> Time:
        """Round *t* up to the next cycle boundary of this domain."""
        if t < 0:
            raise ClockError(f"clock {self.name!r}: negative time {t}")
        remainder = t % self.period
        return t if remainder == 0 else t + (self.period - remainder)

    def __repr__(self) -> str:
        mhz_value = self.frequency_hz / 1e6
        return f"Clock({self.name!r}, {mhz_value:g} MHz)"
