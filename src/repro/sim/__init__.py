"""Discrete-event simulation kernel.

The simulator is deliberately small: an event queue ordered by integer
picosecond timestamps, clock domains for cycle/time conversion, counters and
latency statistics, and a structured trace log.  Hardware and OS models in
:mod:`repro.hw` and :mod:`repro.os` are built on top of it.
"""

from .clock import Clock
from .engine import Event, Simulator
from .rng import make_rng, make_secret_stream
from .stats import Counter, LatencyStat, StatRegistry
from .trace import TraceEvent, TraceLog

__all__ = [
    "Clock",
    "Counter",
    "Event",
    "LatencyStat",
    "Simulator",
    "StatRegistry",
    "TraceEvent",
    "TraceLog",
    "make_rng",
    "make_secret_stream",
]
