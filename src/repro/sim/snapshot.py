"""Snapshot/restore support for incremental re-exploration.

The exhaustive interleaving checker (:mod:`repro.verify.incremental`)
walks the tree of stream choices depth-first and, instead of replaying
every interleaving from a cold engine, delivers each access **once per
tree edge**: it snapshots the component stack before the delivery and
restores the parent state on backtrack.  Every component that holds
mutable state the checker can touch implements the small
:class:`Snapshottable` protocol below.

Snapshot discipline (shared by all implementations):

* ``snapshot()`` returns an opaque token capturing the component's
  mutable state.  Tokens are cheap — append-only structures are
  captured as *lengths* and truncated on restore, small scalars are
  copied, and objects that are never mutated after creation (frozen
  dataclasses, latched argument records) are captured by reference.
* ``restore(token)`` returns the component to exactly the captured
  state.  Restoring an older token after a newer one is legal (the DFS
  backtracks through snapshots in LIFO order, but the tokens themselves
  are not order-dependent).
* Tokens are only valid for the component instance that produced them.

:func:`freeze` converts a nest of snapshot-ish values into a hashable
canonical form — the transposition table uses it to detect that two
different prefixes converged on the same engine state.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class Snapshottable(Protocol):
    """A component whose mutable state can be captured and restored."""

    def snapshot(self) -> Any:
        """Capture the current mutable state as an opaque token."""
        ...

    def restore(self, token: Any) -> None:
        """Return to the state captured by *token*."""
        ...


def freeze(value: Any) -> Any:
    """Recursively convert *value* into a hashable canonical form.

    Handles the shapes snapshot state is made of: scalars pass through,
    dicts become sorted item tuples, lists/tuples/sets become tuples,
    and dataclass instances become ``(type-name, frozen field items)``
    pairs so two distinct-but-equal latch objects hash identically.
    """
    if value is None or isinstance(value, (int, float, str, bool, bytes)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = tuple((f.name, freeze(getattr(value, f.name)))
                       for f in dataclasses.fields(value))
        return (type(value).__name__, fields)
    if isinstance(value, dict):
        return tuple(sorted((freeze(k), freeze(v))
                            for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(freeze(item) for item in value))
    raise TypeError(f"cannot freeze value of type {type(value).__name__}")
