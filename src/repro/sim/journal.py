"""Shared undo journal: O(changes) snapshot/restore for the checker.

The incremental checker's snapshot/restore protocol originally captured
every component's state by value on each snapshot — O(total state) per
tree edge even when a delivery touched two scalars.  The
:class:`UndoJournal` inverts that: components *record the old value of
whatever they are about to mutate* into one shared journal, a snapshot
is just a mark (the current journal length), and restore replays the
entries recorded since the mark, newest first.  Cost is proportional to
what actually changed, not to what exists.

Two recording disciplines coexist, chosen per mutation site:

* **Per-mutation entries** for state that changes rarely (key-table
  writes, initiation-record appends, heap pushes): one entry per
  mutation, zero cost when the mutation never happens.
* **Per-epoch capture** for small hot state blobs (a protocol FSM's
  scalar tuple, a register context, the simulator clock): the first
  mutation after each :meth:`mark`/:meth:`undo_to` captures the whole
  blob once, and later mutations inside the same epoch are free.  The
  :attr:`epoch` counter increments on every mark *and* every undo, so a
  component comparing its stamped epoch against the journal's knows
  whether the current blob is already safely captured.

Entries are ``(kind, a, b, c)`` tuples dispatched by integer op code —
cheaper to record and replay than closures.  Correctness relies only on
replay happening newest-first, which makes redundant captures harmless.

Components opt in through ``bind_journal(journal)`` and must keep
working when no journal is bound (``None`` — the default everywhere
outside the checker, costing one branch per mutation site).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

#: Op codes (module-level ints: fastest dispatch in the replay loop).
OP_ATTR = 0      #: ``setattr(a, b, c)``
OP_ITEM = 1      #: ``a[b] = c``
OP_DELITEM = 2   #: ``del a[b]`` (ignore if missing)
OP_POP = 3       #: ``a.pop()`` — undo of a list append
OP_CALL = 4      #: ``a(b)`` — component-provided restore callable


class UndoJournal:
    """One shared mutation journal per checked component stack."""

    __slots__ = ("_ops", "epoch", "entries_recorded", "entries_replayed")

    def __init__(self) -> None:
        self._ops: List[Tuple[int, Any, Any, Any]] = []
        #: Bumped on every mark and every undo; components stamp their
        #: per-epoch captures against it.
        self.epoch = 1
        self.entries_recorded = 0
        self.entries_replayed = 0

    def __len__(self) -> int:
        return len(self._ops)

    # -- marks ----------------------------------------------------------

    def mark(self) -> int:
        """O(1) snapshot: remember the journal length, open a new epoch."""
        self.epoch += 1
        return len(self._ops)

    def undo_to(self, mark: int) -> None:
        """Replay (and drop) every entry recorded since *mark*."""
        ops = self._ops
        count = len(ops) - mark
        if count > 0:
            self.entries_replayed += count
            for _ in range(count):
                kind, a, b, c = ops.pop()
                if kind == OP_ATTR:
                    setattr(a, b, c)
                elif kind == OP_CALL:
                    a(b)
                elif kind == OP_ITEM:
                    a[b] = c
                elif kind == OP_DELITEM:
                    a.pop(b, None)
                else:  # OP_POP
                    a.pop()
        self.epoch += 1

    # -- recording ------------------------------------------------------

    def record_attr(self, obj: Any, name: str) -> None:
        """Arrange for ``obj.<name>`` to be reset to its current value."""
        self.entries_recorded += 1
        self._ops.append((OP_ATTR, obj, name, getattr(obj, name)))

    def record_item(self, mapping: Dict[Any, Any], key: Any) -> None:
        """Arrange for ``mapping[key]`` to be restored (or re-deleted)."""
        self.entries_recorded += 1
        if key in mapping:
            self._ops.append((OP_ITEM, mapping, key, mapping[key]))
        else:
            self._ops.append((OP_DELITEM, mapping, key, None))

    def record_append(self, lst: List[Any]) -> None:
        """Arrange for the append about to happen to be popped again."""
        self.entries_recorded += 1
        self._ops.append((OP_POP, lst, None, None))

    def record_call(self, fn: Callable[[Any], None], arg: Any) -> None:
        """Arrange for ``fn(arg)`` to run on undo (component restore)."""
        self.entries_recorded += 1
        self._ops.append((OP_CALL, fn, arg, None))
