"""Calibrated machine timing presets.

The reproduction target is Table 1, measured on a DEC Alpha 3000 model 300
(150 MHz 21064) with the prototype board on a 12.5 MHz TurboChannel.  Two
knobs were calibrated once against two of the four rows (see DESIGN.md §6):

* the uncached device store/write cycle counts on the bus (7 and 6 bus
  cycles), pinned by the extended-shadow row (1 store + 1 load = 1.1 us);
* the syscall entry/exit cost (1,100 + 1,100 CPU cycles — inside the
  paper's cited 1,000-5,000-cycle range for an empty syscall), pinned by
  the kernel-level row (18.6 us).

Every other row, and every other experiment, is *predicted* from
instruction counts through the same model.

The PCI presets answer the paper's §3.4 remark that faster buses (PCI at
33/66 MHz) shrink user-level initiation further; they reuse the identical
protocol cycle counts at the higher clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.bus import BusTiming, PCI_33, PCI_66, TURBOCHANNEL_12_5
from ..hw.cpu import CpuCosts
from ..os.costs import OsCosts
from ..units import Time, mbps, mhz, ns


@dataclass(frozen=True)
class MachineTiming:
    """Everything time-related about one machine configuration.

    Attributes:
        name: preset name.
        cpu_hz: CPU clock.
        bus: I/O bus timing preset.
        cpu_costs: per-instruction cycle costs.
        os_costs: kernel work cycle costs.
        dma_bandwidth_bps: the engine's data-mover bandwidth.
        dma_startup: fixed per-transfer engine latency.
        tlb_capacity: data TLB entries.
        tlb_walk_cycles: TLB-miss refill cost in CPU cycles.
        write_buffer_capacity: posted-store entries.
    """

    name: str
    cpu_hz: float
    bus: BusTiming
    cpu_costs: CpuCosts = field(default_factory=CpuCosts)
    os_costs: OsCosts = field(default_factory=OsCosts)
    dma_bandwidth_bps: float = mbps(400.0)
    dma_startup: Time = ns(400)
    tlb_capacity: int = 32
    tlb_walk_cycles: float = 30.0
    write_buffer_capacity: int = 4


#: The paper's measured configuration (Table 1).
ALPHA3000_TURBOCHANNEL = MachineTiming(
    name="alpha3000-300/turbochannel",
    cpu_hz=mhz(150.0),
    bus=TURBOCHANNEL_12_5,
)

#: Same host, PCI at 33 MHz (§3.4: "recent buses, like the PCI bus").
ALPHA_PCI_33 = MachineTiming(
    name="alpha/pci-33",
    cpu_hz=mhz(150.0),
    bus=PCI_33,
)

#: Same host, PCI at 66 MHz — the fastest bus the paper names.
ALPHA_PCI_66 = MachineTiming(
    name="alpha/pci-66",
    cpu_hz=mhz(150.0),
    bus=PCI_66,
)

#: A "what if the host also got faster" configuration used by the trend
#: analysis: a 400 MHz CPU on PCI-66 with the *same* OS cycle counts —
#: the paper's core observation is that OS cycle counts do not shrink
#: with clock speed, so the kernel path improves only linearly while the
#: network got an order of magnitude faster.
FAST_HOST_PCI_66 = MachineTiming(
    name="fast-host/pci-66",
    cpu_hz=mhz(400.0),
    bus=PCI_66,
)

TIMING_PRESETS = {
    preset.name: preset
    for preset in (ALPHA3000_TURBOCHANNEL, ALPHA_PCI_33, ALPHA_PCI_66,
                   FAST_HOST_PCI_66)
}
