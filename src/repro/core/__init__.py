"""The paper's contribution, packaged: machines, methods, and channels.

* :mod:`repro.core.timing` — calibrated machine timing presets.
* :mod:`repro.core.methods` — the registry of every initiation method.
* :mod:`repro.core.machine` — :class:`Workstation`, which wires the whole
  hardware and OS substrate together from one config.
* :mod:`repro.core.api` — :class:`DmaChannel`, the user-facing handle that
  builds and runs initiation sequences.
* :mod:`repro.core.atomics` — :class:`AtomicChannel` for §3.5.
"""

from .api import DmaChannel, InitiationResult, open_channel
from .atomics import AtomicChannel
from .machine import MachineConfig, Workstation
from .methods import METHODS, MethodInfo, make_protocol
from .timing import (
    ALPHA3000_TURBOCHANNEL,
    ALPHA_PCI_33,
    ALPHA_PCI_66,
    MachineTiming,
    TIMING_PRESETS,
)

__all__ = [
    "ALPHA3000_TURBOCHANNEL",
    "ALPHA_PCI_33",
    "ALPHA_PCI_66",
    "AtomicChannel",
    "DmaChannel",
    "InitiationResult",
    "METHODS",
    "MachineConfig",
    "MachineTiming",
    "MethodInfo",
    "open_channel",
    "TIMING_PRESETS",
    "Workstation",
    "make_protocol",
]
