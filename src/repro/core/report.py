"""Machine-wide statistics reporting.

Aggregates the counters scattered across one workstation's components —
CPU, TLB, write buffer, bus, DMA engine, atomic unit — into one
dictionary / text table.  Examples and debugging sessions use it to see
what a run actually did ("how many uncached stores?  how many TLB
flushes?  how many initiations were rejected?").
"""

from __future__ import annotations

from typing import Dict

from ..analysis.report import Table
from .machine import Workstation


def machine_stats(ws: Workstation) -> Dict[str, float]:
    """A flat snapshot of every interesting counter on *ws*."""
    stats: Dict[str, float] = {}
    stats.update(ws.cpu.stats.snapshot())
    stats.update(ws.bus.stats.snapshot())
    stats["tlb.hits"] = float(ws.tlb.hits)
    stats["tlb.misses"] = float(ws.tlb.misses)
    stats["tlb.flushes"] = float(ws.tlb.flushes)
    stats["tlb.hit_rate"] = ws.tlb.hit_rate
    stats["wb.stores_posted"] = float(ws.write_buffer.stores_posted)
    stats["wb.stores_collapsed"] = float(
        ws.write_buffer.stores_collapsed)
    stats["wb.loads_forwarded"] = float(ws.write_buffer.loads_forwarded)
    stats["dma.initiations"] = float(len(ws.engine.initiations))
    stats["dma.started"] = float(len(ws.engine.started_transfers()))
    stats["dma.rejected"] = (stats["dma.initiations"]
                             - stats["dma.started"])
    stats["dma.bytes_moved"] = float(
        ws.engine.transfer_engine.bytes_moved)
    stats["dma.protocol_violations"] = float(
        ws.engine.protocol_violations)
    stats["dma.remote_sends"] = float(ws.engine.remote_sends)
    if ws.atomic_unit is not None:
        stats["atomic.operations"] = float(
            len(ws.atomic_unit.operations))
        stats["atomic.key_rejections"] = float(
            ws.atomic_unit.key_rejections)
    return stats


def stats_table(ws: Workstation, title: str = "Machine statistics",
                nonzero_only: bool = True) -> Table:
    """Render :func:`machine_stats` as a text table."""
    table = Table(title, ["counter", "value"])
    for name, value in sorted(machine_stats(ws).items()):
        if nonzero_only and value == 0:
            continue
        rendered = (f"{value:.3f}" if isinstance(value, float)
                    and value != int(value) else f"{int(value)}")
        table.add_row(name, rendered)
    return table
