"""The registry of DMA-initiation methods.

One :class:`MethodInfo` per method the paper discusses, carrying the
protocol factory for the engine side plus the metadata the OS and the
user-side sequence builder need: does the method consume a register
context?  a key?  CONTEXT_ID address bits?  a PAL call?  — and, crucially
for the paper's thesis, *which kernel modification it requires* (only the
prior-work baselines require any).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ConfigError
from ..hw.dma.recognizer import InitiationProtocol
from ..hw.dma.protocols import (
    CapioProtocol,
    ExtendedShadowProtocol,
    FlashProtocol,
    IommuProtocol,
    KernelOnlyProtocol,
    KeyedProtocol,
    MappedOutProtocol,
    PalProtocol,
    PendingPairProtocol,
    RepeatedPassingProtocol,
)


@dataclass(frozen=True)
class MethodInfo:
    """Metadata for one initiation method.

    Attributes:
        name: registry key ("keyed", "repeated5", ...).
        title: display name.
        section: where the paper defines it.
        protocol_factory: builds the engine-side FSM.
        uses_context: consumes a register context (and a mapped page).
        uses_key: consumes a secret key.
        uses_ext_bits: shadow mappings embed the CONTEXT_ID.
        uses_pal: the user sequence is a PAL call.
        kernel_hook: which context-switch hook the method *requires* to be
            race-free — None for the paper's contributions, "shrimp_abort"
            or "flash_pid" for the prior-work baselines.
        memory_accesses: uncached accesses per initiation (the paper's
            "2 to 5 assembly instructions"; kernel-level reported as 0
            user-level accesses).
        kernel_free: True when the method needs no kernel modification —
            the paper's headline property.
    """

    name: str
    title: str
    section: str
    protocol_factory: Callable[[], InitiationProtocol]
    uses_context: bool = False
    uses_key: bool = False
    uses_ext_bits: bool = False
    uses_pal: bool = False
    kernel_hook: Optional[str] = None
    memory_accesses: int = 0

    @property
    def kernel_free(self) -> bool:
        """Whether the method works on an unmodified kernel."""
        return self.kernel_hook is None and self.name != "kernel"


METHODS: Dict[str, MethodInfo] = {
    info.name: info for info in (
        MethodInfo(
            name="kernel",
            title="Kernel-level DMA",
            section="2.2 / Fig. 1",
            protocol_factory=KernelOnlyProtocol,
            memory_accesses=0,
        ),
        MethodInfo(
            name="shrimp1",
            title="SHRIMP-1 (mapped-out pages)",
            section="2.4",
            protocol_factory=MappedOutProtocol,
            memory_accesses=1,
        ),
        MethodInfo(
            name="shrimp2",
            title="SHRIMP-2 (store+load pair)",
            section="2.5 / Fig. 2",
            protocol_factory=PendingPairProtocol,
            kernel_hook="shrimp_abort",
            memory_accesses=2,
        ),
        MethodInfo(
            name="flash",
            title="FLASH (current-process register)",
            section="2.6",
            protocol_factory=FlashProtocol,
            kernel_hook="flash_pid",
            memory_accesses=2,
        ),
        MethodInfo(
            name="pal",
            title="PAL code",
            section="2.7",
            protocol_factory=PalProtocol,
            uses_pal=True,
            memory_accesses=2,
        ),
        MethodInfo(
            name="keyed",
            title="Key-based DMA",
            section="3.1 / Fig. 3",
            protocol_factory=KeyedProtocol,
            uses_context=True,
            uses_key=True,
            memory_accesses=4,
        ),
        MethodInfo(
            name="extshadow",
            title="Extended shadow addressing",
            section="3.2 / Fig. 4",
            protocol_factory=ExtendedShadowProtocol,
            uses_context=True,
            uses_ext_bits=True,
            memory_accesses=2,
        ),
        MethodInfo(
            name="repeated3",
            title="Repeated passing (3 instructions, insecure)",
            section="3.3 / Fig. 5",
            protocol_factory=lambda: RepeatedPassingProtocol(3),
            memory_accesses=3,
        ),
        MethodInfo(
            name="repeated4",
            title="Repeated passing (4 instructions, insecure)",
            section="3.3 / Fig. 6",
            protocol_factory=lambda: RepeatedPassingProtocol(4),
            memory_accesses=4,
        ),
        MethodInfo(
            name="repeated5",
            title="Repeated passing of arguments (5 instructions)",
            section="3.3 / Fig. 7",
            protocol_factory=lambda: RepeatedPassingProtocol(5),
            memory_accesses=5,
        ),
        MethodInfo(
            name="iommu",
            title="IOMMU virtual-address DMA",
            section="modern (IOMMU remote DMA)",
            protocol_factory=lambda: IommuProtocol(shootdown=True),
            uses_context=True,
            uses_ext_bits=True,
            memory_accesses=2,
        ),
        MethodInfo(
            name="iommu_noshootdown",
            title="IOMMU without IOTLB shoot-down (insecure)",
            section="modern (weakened variant)",
            protocol_factory=lambda: IommuProtocol(shootdown=False),
            uses_context=True,
            uses_ext_bits=True,
            memory_accesses=2,
        ),
        MethodInfo(
            name="capio",
            title="Capability-checked DMA (CAPIO)",
            section="modern (capability kernel bypass)",
            protocol_factory=lambda: CapioProtocol(epoch_check=True),
            uses_context=True,
            memory_accesses=4,
        ),
        MethodInfo(
            name="capio_noepoch",
            title="Capability DMA without epoch check (insecure)",
            section="modern (weakened variant)",
            protocol_factory=lambda: CapioProtocol(epoch_check=False),
            uses_context=True,
            memory_accesses=4,
        ),
    )
}

#: The four rows of Table 1, in the paper's order.
TABLE1_METHODS: List[str] = ["kernel", "extshadow", "repeated5", "keyed"]

#: The methods the paper proposes (its contribution).
PAPER_METHODS: List[str] = ["pal", "keyed", "extshadow", "repeated5"]

#: The prior-work user-level baselines.
BASELINE_METHODS: List[str] = ["shrimp1", "shrimp2", "flash"]

#: Post-paper methods that inherit the verification pipeline unchanged
#: (docs/methods-modern.md); the ``*_noshootdown`` / ``*_noepoch``
#: variants are their deliberately-weakened counterparts, registered —
#: like repeated3/repeated4 — so the synthesis hunt can rediscover why
#: the hardening steps are load-bearing.
MODERN_METHODS: List[str] = ["iommu", "capio"]


def get_method(name: str) -> MethodInfo:
    """Look up a method by name.

    Raises:
        ConfigError: for an unknown name.
    """
    if name not in METHODS:
        known = ", ".join(sorted(METHODS))
        raise ConfigError(f"unknown DMA method {name!r}; known: {known}")
    return METHODS[name]


def make_protocol(name: str) -> InitiationProtocol:
    """Build a fresh engine-side protocol FSM for method *name*."""
    return get_method(name).protocol_factory()
