"""The Workstation: one fully wired simulated machine.

Builds, from a single :class:`MachineConfig`, the whole substrate the
paper's prototype ran on: CPU + MMU/TLB + write buffer, the I/O bus, the
DMA/network-interface engine running the chosen initiation protocol, the
optional atomic unit, the kernel, and (on demand) a preemptive scheduler
with or without the SHRIMP/FLASH context-switch hooks.

Typical use::

    ws = Workstation(MachineConfig(method="keyed"))
    proc = ws.kernel.spawn("app")
    ws.kernel.enable_user_dma(proc)
    src = ws.kernel.alloc_buffer(proc, 8192)
    dst = ws.kernel.alloc_buffer(proc, 8192)
    chan = DmaChannel(ws, proc)            # from repro.core.api
    result = chan.dma(src.vaddr, dst.vaddr, 4096)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigError
from ..hw.atomic_unit import AtomicShadowLayout, AtomicUnit
from ..hw.bus import Bus
from ..hw.cpu import Cpu, StepStatus, Thread
from ..hw.dma.shadow import ShadowLayout
from ..hw.isa import Addr, Load, Program, Store, assemble
from ..hw.memory import FrameAllocator, PhysicalMemory
from ..hw.mmu import Mmu
from ..hw.nic import Fabric, GlobalAddressMap, NetworkInterface
from ..hw.tlb import Tlb
from ..hw.writebuffer import WriteBuffer
from ..obs.metrics import MetricsSampler
from ..obs.spans import SpanTracer
from ..os.costs import OsCosts
from ..os.kernel import Kernel
from ..os.process import SHADOW_VOFFSET, Process
from ..os.scheduler import Scheduler, SchedulingPolicy
from ..sim.clock import Clock
from ..sim.engine import Simulator
from ..sim.stats import StatRegistry
from ..sim.trace import TraceLog
from ..units import Time, mib
from .methods import get_method, make_protocol
from .timing import ALPHA3000_TURBOCHANNEL, MachineTiming

#: Name of the PAL call installed for the §2.7 method.
PAL_DMA_FUNCTION = "user_level_dma"


@dataclass
class MachineConfig:
    """Configuration of one workstation.

    Attributes:
        method: initiation method the engine is wired for (see
            repro.core.methods.METHODS).
        timing: timing preset.
        ram_size: bytes of physical memory (page multiple).
        n_contexts: register contexts in the DMA engine.
        seed: master seed for keys and any stochastic policy.
        relaxed_write_buffer: enable the footnote-6 write-buffer
            behaviour (load bypassing + forwarding).
        write_buffer_collapsing: allow same-address store collapsing.
        node_id: this workstation's id in the cluster address map.
        atomic_mode: build an atomic unit in this mode ("keyed" /
            "extshadow"), or None for no atomic unit.
        trace_enabled: record a structured trace.
        data_cache: model a direct-mapped write-through data cache for
            cached RAM accesses (off by default — the calibrated flat
            RAM cost reproduces Table 1; see repro.hw.cache).
        page_bounded: harden the engine against corrupted size words by
            rejecting user-level transfers that cross a page boundary
            (see :class:`repro.hw.dma.engine.DmaEngine`); fault-tolerant
            configurations enable this.
        spans_enabled: record causal spans across the DMA stack (see
            repro.obs.spans); off by default — disabled tracing costs a
            single branch on each hot path.
        metrics_interval: simulated-time cadence for the metrics sampler
            (see repro.obs.metrics), or None to disable sampling.
    """

    method: str = "keyed"
    timing: MachineTiming = field(default_factory=lambda: ALPHA3000_TURBOCHANNEL)
    ram_size: int = mib(16)
    n_contexts: int = 4
    seed: int = 42
    relaxed_write_buffer: bool = False
    write_buffer_collapsing: bool = True
    node_id: int = 0
    atomic_mode: Optional[str] = None
    trace_enabled: bool = False
    data_cache: bool = False
    page_bounded: bool = False
    spans_enabled: bool = False
    metrics_interval: Optional[Time] = None


class Workstation:
    """One simulated workstation (node) built from a config."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 fabric: Optional[Fabric] = None,
                 sim: Optional[Simulator] = None) -> None:
        self.config = config if config is not None else MachineConfig()
        cfg = self.config
        self.method = get_method(cfg.method)
        timing = cfg.timing

        self.sim = sim if sim is not None else Simulator()
        self.trace = TraceLog(enabled=cfg.trace_enabled, max_events=100_000)
        #: Machine-level counters and latencies (retry/fallback activity
        #: of the reliable DMA paths lands here; see repro.core.api).
        self.stats = StatRegistry("ws")
        #: Causal span tracer shared by the API layer, the engine, and
        #: the transfer engine (one tracer → one coherent span tree).
        self.spans = SpanTracer(clock=self.sim.time_source(),
                                enabled=cfg.spans_enabled,
                                max_spans=200_000)
        #: Time-series sampler over the stat registry and engine gauges;
        #: pull-based — the API layer calls ``self.metrics.poll()``.
        self.metrics = MetricsSampler(
            clock=self.sim.time_source(),
            sources=[self._stat_gauges, self._engine_gauges],
            interval=cfg.metrics_interval)
        self.cpu_clock = Clock("cpu", timing.cpu_hz)

        self.ram = PhysicalMemory(cfg.ram_size)
        self.allocator = FrameAllocator(0, cfg.ram_size)
        self.bus = Bus(self.ram, timing.bus)

        ctx_bits = max(1, (cfg.n_contexts - 1).bit_length())
        layout = ShadowLayout(n_contexts=cfg.n_contexts, ctx_bits=ctx_bits)
        protocol = make_protocol(cfg.method)
        self.nic = NetworkInterface(
            self.sim, self.ram, protocol, node_id=cfg.node_id,
            fabric=fabric, addr_map=GlobalAddressMap(), layout=layout,
            bandwidth_bps=timing.dma_bandwidth_bps,
            startup=timing.dma_startup, trace=self.trace,
            page_bounded=cfg.page_bounded, spans=self.spans)
        self.bus.attach(self.nic, layout.window_base, layout.window_size)

        self.atomic_unit: Optional[AtomicUnit] = None
        if cfg.atomic_mode is not None:
            alayout = AtomicShadowLayout()
            self.atomic_unit = AtomicUnit(
                self.sim, self.ram, layout=alayout, mode=cfg.atomic_mode,
                node_id=cfg.node_id, fabric=fabric,
                addr_map=self.nic.addr_map, trace=self.trace)
            self.bus.attach(self.atomic_unit, alayout.window_base,
                            alayout.window_size)

        self.tlb = Tlb(capacity=timing.tlb_capacity)
        self.mmu = Mmu(self.tlb,
                       walk_cost=self.cpu_clock.cycles(
                           timing.tlb_walk_cycles))
        self.write_buffer = WriteBuffer(
            capacity=timing.write_buffer_capacity,
            collapsing=cfg.write_buffer_collapsing,
            relaxed=cfg.relaxed_write_buffer)
        self.data_cache = None
        if cfg.data_cache:
            from ..hw.cache import DataCache

            self.data_cache = DataCache()
            self.nic.coherence_hook = self.data_cache.invalidate_range
        self.cpu = Cpu(self.sim, self.cpu_clock, self.mmu, self.bus,
                       self.write_buffer, timing.cpu_costs,
                       trace=self.trace, cache=self.data_cache)

        from ..os.vm import VirtualMemoryManager

        self.vmm = VirtualMemoryManager(self.allocator)
        self.kernel = Kernel(self.sim, self.cpu, self.bus, self.nic,
                             self.vmm, timing.os_costs, seed=cfg.seed,
                             atomic_unit=self.atomic_unit)
        if self.method.uses_pal:
            self._install_pal_dma()

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    @property
    def engine(self) -> NetworkInterface:
        """The DMA engine (alias for the NIC)."""
        return self.nic

    @property
    def os_costs(self) -> OsCosts:
        """The OS cost model in force."""
        return self.config.timing.os_costs

    @property
    def now(self) -> Time:
        """Current simulated time in ps."""
        return self.sim.now

    # ------------------------------------------------------------------
    # running code
    # ------------------------------------------------------------------

    def run_thread(self, thread: Thread,
                   max_instructions: int = 1_000_000) -> StepStatus:
        """Run *thread* alone to completion (no preemption)."""
        return self.cpu.run(thread, max_instructions=max_instructions)

    def run_program(self, proc: Process, program: Program,
                    max_instructions: int = 1_000_000) -> Thread:
        """Spawn a thread of *proc* for *program* and run it alone."""
        thread = proc.new_thread(program)
        self.run_thread(thread, max_instructions=max_instructions)
        return thread

    def make_scheduler(self, policy: SchedulingPolicy,
                       with_required_hooks: bool = True) -> Scheduler:
        """Build a scheduler; optionally install the kernel modification
        this machine's method *requires* (SHRIMP-2 / FLASH baselines).

        Passing ``with_required_hooks=False`` models running those
        baselines on an **unmodified kernel** — the failure mode the
        paper's methods exist to avoid.
        """
        scheduler = Scheduler(self.sim, self.cpu, self.os_costs, policy,
                              trace=self.trace)
        if with_required_hooks and self.method.kernel_hook is not None:
            if self.method.kernel_hook == "shrimp_abort":
                scheduler.install_hook(self.kernel.shrimp_abort_hook())
            elif self.method.kernel_hook == "flash_pid":
                scheduler.install_hook(self.kernel.flash_current_pid_hook())
            else:
                raise ConfigError(
                    f"unknown kernel hook {self.method.kernel_hook!r}")
        return scheduler

    def drain(self, timeout: Optional[Time] = None) -> None:
        """Let background activity (DMA transfers, network) complete."""
        if timeout is None:
            self.sim.run()
        else:
            self.sim.run_until(self.sim.now + timeout)

    # ------------------------------------------------------------------
    # metrics sources
    # ------------------------------------------------------------------

    def _stat_gauges(self) -> "dict[str, float]":
        """Every StatRegistry counter and latency, as sampler gauges."""
        return self.stats.snapshot()

    def _engine_gauges(self) -> "dict[str, float]":
        """Engine and simulator activity gauges for the sampler."""
        return {
            "engine.transfers_started":
                float(self.nic.transfer_engine.transfers_started),
            "engine.bytes_moved":
                float(self.nic.transfer_engine.bytes_moved),
            "engine.initiations": float(len(self.nic.initiations)),
            "engine.protocol_violations":
                float(self.nic.protocol_violations),
            "engine.remote_sends": float(self.nic.remote_sends),
            "sim.events_fired": float(self.sim.events_fired),
        }

    # ------------------------------------------------------------------

    def _install_pal_dma(self) -> None:
        """Install the §2.7 two-instruction PAL function.

        DMA(vsource=a0, vdestination=a1, size=a2):
            STORE size TO shadow(vdestination)
            LOAD  status FROM shadow(vsource)
        """
        program = assemble([
            Store(Addr("a1", SHADOW_VOFFSET), "a2"),
            Load("v0", Addr("a0", SHADOW_VOFFSET)),
        ], name=PAL_DMA_FUNCTION)
        self.cpu.install_pal_function(PAL_DMA_FUNCTION, program)
