"""User-level atomic operations (§3.5).

An :class:`AtomicChannel` issues ``atomic_add``, ``fetch_and_store``, and
``compare_and_swap`` either through the kernel (the costly baseline) or
from user level via the keyed / extended-shadow adaptations of the DMA
methods — "a similar problem to user-level DMA, albeit somewhat simpler,
since only one physical address is needed" (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigError, KernelError
from ..hw.atomic_unit import OP_ADD, OP_CAS, OP_CAS_SWAP, OP_FETCH_STORE
from ..hw.cpu import StepStatus, Thread
from ..hw.dma.status import STATUS_FAILURE, is_failure
from ..hw.dma.protocols.keyed import pack_key_word
from ..hw.isa import (
    Addr,
    Halt,
    Instruction,
    Load,
    Mov,
    Program,
    Store,
    Syscall,
    assemble,
)
from ..hw.atomic_unit import CTX_OPERAND, CTX_OPERAND2
from ..os.process import Process, atomic_shadow_vaddr
from ..units import Time, to_us
from .machine import Workstation

_SYSCALL_OF_OP = {OP_ADD: "atomic_add", OP_FETCH_STORE: "atomic_fas",
                  OP_CAS: "atomic_cas"}


@dataclass(frozen=True)
class AtomicResult:
    """Outcome of one atomic operation.

    Attributes:
        old_value: the value the target word held before the operation
            (STATUS_FAILURE when the operation was rejected).
        elapsed: simulated time for the whole user sequence.
    """

    old_value: int
    elapsed: Time
    thread: Thread

    @property
    def ok(self) -> bool:
        """Whether the unit executed the operation."""
        return not is_failure(self.old_value)

    @property
    def elapsed_us(self) -> float:
        """Elapsed time in microseconds."""
        return to_us(self.elapsed)


class AtomicChannel:
    """A process's handle for issuing atomic operations."""

    def __init__(self, ws: Workstation, proc: Process) -> None:
        if ws.atomic_unit is None:
            raise ConfigError(
                "this workstation was built without an atomic unit; set "
                "MachineConfig.atomic_mode")
        self.ws = ws
        self.proc = proc
        self.unit = ws.atomic_unit

    # ------------------------------------------------------------------
    # sequence construction
    # ------------------------------------------------------------------

    def sequence(self, op: int, vtarget: int, operand: int,
                 operand2: int = 0,
                 via_kernel: bool = False) -> List[Instruction]:
        """Build the instruction sequence for one atomic operation."""
        if via_kernel:
            return [Mov("a0", vtarget), Mov("a1", operand),
                    Mov("a2", operand2), Syscall(_SYSCALL_OF_OP[op])]
        binding = self.proc.atomic_binding
        if binding.mode == "keyed":
            if binding.key is None or binding.ctx_id is None:
                raise KernelError(
                    f"{self.proc.name} lacks an atomic key/context")
            ctx_base = binding.ctx_page_vaddr
            seq: List[Instruction] = [
                Store(Addr(None, atomic_shadow_vaddr(op, vtarget)),
                      pack_key_word(binding.key, binding.ctx_id, 0)),
                Store(Addr(None, ctx_base + CTX_OPERAND), operand),
            ]
            if op == OP_CAS:
                seq.append(Store(Addr(None, ctx_base + CTX_OPERAND2),
                                 operand2))
            seq.append(Load("v0", Addr(None, ctx_base)))
            return seq
        # Extended-shadow flavour: ctx rides in the address bits.
        shadow = Addr(None, atomic_shadow_vaddr(op, vtarget))
        seq = [Store(shadow, operand)]
        if op == OP_CAS:
            seq.append(Store(
                Addr(None, atomic_shadow_vaddr(OP_CAS_SWAP, vtarget)),
                operand2))
        seq.append(Load("v0", shadow))
        return seq

    def program(self, op: int, vtarget: int, operand: int,
                operand2: int = 0, via_kernel: bool = False) -> Program:
        """The sequence assembled into a runnable program."""
        instructions = self.sequence(op, vtarget, operand, operand2,
                                     via_kernel=via_kernel)
        instructions.append(Halt())
        return assemble(instructions, name=f"atomic-{op}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _run(self, op: int, vtarget: int, operand: int, operand2: int,
             via_kernel: bool) -> AtomicResult:
        program = self.program(op, vtarget, operand, operand2,
                               via_kernel=via_kernel)
        thread = self.proc.new_thread(program)
        start = self.ws.sim.now
        status = self.ws.run_thread(thread)
        elapsed = self.ws.sim.now - start
        if status is StepStatus.FAULTED:
            return AtomicResult(STATUS_FAILURE, elapsed, thread)
        return AtomicResult(int(thread.reg("v0")), elapsed, thread)

    def atomic_add(self, vtarget: int, value: int,
                   via_kernel: bool = False) -> AtomicResult:
        """``old = mem[vtarget]; mem[vtarget] += value; return old``."""
        return self._run(OP_ADD, vtarget, value, 0, via_kernel)

    def fetch_and_store(self, vtarget: int, value: int,
                        via_kernel: bool = False) -> AtomicResult:
        """``old = mem[vtarget]; mem[vtarget] = value; return old``."""
        return self._run(OP_FETCH_STORE, vtarget, value, 0, via_kernel)

    def compare_and_swap(self, vtarget: int, compare: int, swap: int,
                         via_kernel: bool = False) -> AtomicResult:
        """CAS: write *swap* iff the word equals *compare*; returns old."""
        return self._run(OP_CAS, vtarget, compare, swap, via_kernel)
