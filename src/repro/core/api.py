"""The user-facing DMA API.

A :class:`DmaChannel` is what an application links against: given a
process with a DMA binding, it builds the *exact* user-level instruction
sequence of the bound method (Figs. 1-4 and 7, verbatim), runs it, and
reports the outcome and its simulated latency.  The sequences are plain
:mod:`repro.hw.isa` programs, so tests and benchmarks can also inspect,
count, or schedule them adversarially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigError, KernelError
from ..faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from ..hw.cpu import StepStatus, Thread
from ..hw.dma.status import STATUS_FAILURE, STATUS_PENDING, is_rejection
from ..hw.dma.transfer import Transfer
from ..hw.isa import (
    Addr,
    Beq,
    Bne,
    CallPal,
    CompareExchange,
    Halt,
    Instruction,
    Label,
    Load,
    Mb,
    Mov,
    Program,
    Store,
    Syscall,
    assemble,
)
from ..hw.dma.protocols.keyed import (
    ARG_DESTINATION,
    ARG_SOURCE,
    pack_key_word,
)
from ..os.process import Process, shadow_vaddr
from ..units import Time, to_us
from .machine import PAL_DMA_FUNCTION, Workstation


@dataclass(frozen=True)
class InitiationResult:
    """Outcome of one initiation run.

    Attributes:
        status: the status word the final load/syscall returned.
        elapsed: simulated time from first instruction to program end.
        thread: the thread that ran (for register inspection).
    """

    status: int
    elapsed: Time
    thread: Thread

    @property
    def ok(self) -> bool:
        """Whether the initiation was accepted (a transfer started)."""
        return not is_rejection(self.status)

    @property
    def elapsed_us(self) -> float:
        """Elapsed time in microseconds."""
        return to_us(self.elapsed)


@dataclass(frozen=True)
class DmaResult:
    """Outcome of a full dma() call (initiation + data movement)."""

    initiation: InitiationResult
    transfer: Optional[Transfer]

    @property
    def ok(self) -> bool:
        """Whether the data actually moved."""
        return (self.initiation.ok and self.transfer is not None
                and self.transfer.completed)


@dataclass(frozen=True)
class ReliableResult:
    """Outcome of a hardened (retry + fallback) DMA operation.

    Attributes:
        initiation: the final attempt's initiation result.
        attempts: total initiation attempts (including the final one
            and, when ``fell_back``, the kernel-path attempt).
        fell_back: whether the operation degraded to the kernel syscall
            path after exhausting user-level retries (§3.2's escape
            hatch).
        transfer: the completed transfer when one was tracked
            (:meth:`DmaChannel.dma_reliable`), else None.
        recovery_time: simulated time from the first attempt to the
            final outcome — the recovery latency a fault cost us.
    """

    initiation: InitiationResult
    attempts: int
    fell_back: bool
    transfer: Optional[Transfer] = None
    recovery_time: Time = 0

    @property
    def ok(self) -> bool:
        """Whether the operation ultimately succeeded."""
        if not self.initiation.ok:
            return False
        return self.transfer is None or self.transfer.completed

    @property
    def recovered(self) -> bool:
        """Succeeded, but only after at least one retry or the fallback."""
        return self.ok and (self.attempts > 1 or self.fell_back)


class DmaChannel:
    """A process's handle for issuing DMA operations.

    Args:
        ws: the workstation.
        proc: the issuing process.
        via: ``"user"`` (default) issues through the machine's user-level
            method and requires a matching DMA binding; ``"kernel"``
            forces the Fig. 1 syscall path, which works on *any* machine
            — this is the §3.2 fallback for processes that could not get
            a register context ("the rest will have to go through the
            kernel").
    """

    def __init__(self, ws: Workstation, proc: Process,
                 via: str = "user") -> None:
        if via not in ("user", "kernel"):
            raise ConfigError(f"via must be 'user' or 'kernel', not {via!r}")
        self.ws = ws
        self.proc = proc
        self.via = via
        self._retry_rng = None  # lazily seeded jitter RNG (deterministic)
        if via == "kernel":
            from .methods import get_method

            self.method = get_method("kernel")
        else:
            self.method = ws.method
            if self.method.name != "kernel":
                binding = proc.dma_binding
                if binding.method != self.method.name:
                    raise ConfigError(
                        f"{proc.name} is bound to {binding.method!r} but "
                        f"the machine runs {self.method.name!r}")

    # ------------------------------------------------------------------
    # sequence construction (the code from the paper's figures)
    # ------------------------------------------------------------------

    def sequence(self, vsrc: int, vdst: int, size: int,
                 with_retry: bool = True,
                 with_mb: bool = True) -> List[Instruction]:
        """Build the initiation instruction sequence (no Halt).

        Args:
            with_retry: include Fig. 7's DMA_FAILURE retry loop where the
                method has one.
            with_mb: include the memory barriers footnote 6 calls for in
                the repeated-passing method.  Disabling them on a machine
                with a relaxed write buffer reproduces the failure the
                footnote warns about.
        """
        name = self.method.name
        if name == "kernel":
            return [Mov("a0", vsrc), Mov("a1", vdst), Mov("a2", size),
                    Syscall("dma")]
        if name == "shrimp1":
            return [CompareExchange("v0", self._shadow(vsrc), size)]
        if name in ("shrimp2", "flash", "extshadow",
                    "iommu", "iommu_noshootdown"):
            # For the iommu methods the shadow mappings encode the
            # buffer's virtual address, so the same two instructions
            # present IOVAs the engine translates.
            return [Store(self._shadow(vdst), size),
                    Load("v0", self._shadow(vsrc))]
        if name == "pal":
            return [Mov("a0", vsrc), Mov("a1", vdst), Mov("a2", size),
                    CallPal(PAL_DMA_FUNCTION)]
        if name == "keyed":
            return self._keyed_sequence(vsrc, vdst, size)
        if name in ("capio", "capio_noepoch"):
            return self._capio_sequence(vsrc, vdst, size)
        if name in ("repeated3", "repeated4", "repeated5"):
            return self._repeated_sequence(vsrc, vdst, size,
                                           with_retry=with_retry,
                                           with_mb=with_mb)
        raise ConfigError(f"no sequence builder for method {name!r}")

    def program(self, vsrc: int, vdst: int, size: int,
                with_retry: bool = True, with_mb: bool = True,
                name: str = "") -> Program:
        """The sequence assembled into a runnable program (ends in Halt)."""
        instructions = self.sequence(vsrc, vdst, size,
                                     with_retry=with_retry, with_mb=with_mb)
        instructions.append(Halt())
        return assemble(instructions,
                        name=name or f"dma-{self.method.name}")

    def _keyed_sequence(self, vsrc: int, vdst: int,
                        size: int) -> List[Instruction]:
        """Fig. 3: two keyed shadow stores, a size store, a status load."""
        binding = self.proc.dma_binding
        if binding.key is None or binding.ctx_id is None:
            raise KernelError(
                f"{self.proc.name} has no key/context for keyed DMA")
        ctx_page = Addr(None, binding.ctx_page_vaddr)
        return [
            Store(self._shadow(vdst),
                  pack_key_word(binding.key, binding.ctx_id,
                                ARG_DESTINATION)),
            Store(self._shadow(vsrc),
                  pack_key_word(binding.key, binding.ctx_id, ARG_SOURCE)),
            Store(ctx_page, size),
            Load("v0", ctx_page),
        ]

    def _capio_sequence(self, vsrc: int, vdst: int,
                        size: int) -> List[Instruction]:
        """Two capability-token stores, a size store, a status load.

        The store address is ``window + offset`` (the byte offset into
        the capability's buffer); the data word is the packed token
        built from the kernel-issued descriptor.
        """
        binding = self.proc.dma_binding
        if binding.capio_window_vaddr is None or binding.ctx_id is None:
            raise KernelError(
                f"{self.proc.name} has no capio window/context")
        ctx_page = Addr(None, binding.ctx_page_vaddr)
        # The two token stores can target the SAME window address (equal
        # buffer offsets), and the write buffer collapses same-address
        # posted stores (footnote 6) — a barrier keeps both visible.
        return [
            self._capio_store(binding, vdst, ARG_DESTINATION),
            Mb(),
            self._capio_store(binding, vsrc, ARG_SOURCE),
            Store(ctx_page, size),
            Load("v0", ctx_page),
        ]

    def _capio_store(self, binding, vaddr: int, arg: int) -> Instruction:
        """One argument-passing store: token word at window + offset."""
        from ..hw.dma.protocols.capio import pack_cap_word

        descriptor = binding.capability_for(vaddr)
        if descriptor is None:
            raise KernelError(
                f"{self.proc.name} holds no capability covering "
                f"{vaddr:#x}")
        offset = vaddr - descriptor.vaddr
        token = pack_cap_word(descriptor.cap_id, descriptor.epoch,
                              descriptor.nonce, arg)
        return Store(Addr(None, binding.capio_window_vaddr + offset),
                     token)

    def _repeated_sequence(self, vsrc: int, vdst: int, size: int,
                           with_retry: bool,
                           with_mb: bool) -> List[Instruction]:
        """Figs. 5-7: the 3-, 4-, and 5-access repeated-passing code."""
        length = int(self.method.name[-1])
        shadow_src = self._shadow(vsrc)
        shadow_dst = self._shadow(vdst)
        seq: List[Instruction] = []

        def store_dst() -> None:
            seq.append(Store(shadow_dst, size))
            if with_mb:
                seq.append(Mb())

        def load_src(reg: str) -> None:
            seq.append(Load(reg, shadow_src))
            if with_retry:
                seq.append(Beq(reg, STATUS_FAILURE, "retry"))

        if with_retry:
            seq.append(Label("retry"))
        if length == 3:
            load_src("t0")
            store_dst()
            seq.append(Load("v0", shadow_src))
        elif length == 4:
            store_dst()
            load_src("t0")
            store_dst()
            seq.append(Load("v0", shadow_src))
        else:
            store_dst()
            load_src("t0")
            store_dst()
            load_src("t1")
            seq.append(Load("v0", shadow_dst))
        if with_retry:
            seq.append(Beq("v0", STATUS_FAILURE, "retry"))
            # The final load must also distinguish the mid-sequence
            # PENDING word, or an adversary could fabricate a phantom
            # success (see repro.hw.dma.status).
            seq.append(Beq("v0", STATUS_PENDING, "retry"))
        return seq

    def _shadow(self, vaddr: int) -> Addr:
        """The shadow virtual address of *vaddr*, as an absolute operand."""
        return Addr(None, shadow_vaddr(vaddr))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def initiate(self, vsrc: int, vdst: int, size: int,
                 with_retry: bool = False,
                 with_mb: bool = True) -> InitiationResult:
        """Run one initiation to completion (unpreempted) and time it.

        ``with_retry`` defaults to False here: an uncontended initiation
        never needs Fig. 7's loop, and Table 1 measures the straight-line
        path.
        """
        program = self.program(vsrc, vdst, size, with_retry=with_retry,
                               with_mb=with_mb)
        thread = self.proc.new_thread(program)
        ws = self.ws
        sp = None
        if ws.spans.enabled:
            sp = ws.spans.begin("dma.initiate",
                                track=f"proc{self.proc.pid}",
                                method=self.method.name, pid=self.proc.pid,
                                via=self.via, size=size)
        start = ws.sim.now
        status = ws.run_thread(thread)
        elapsed = ws.sim.now - start
        if status is StepStatus.FAULTED:
            result = InitiationResult(STATUS_FAILURE, elapsed, thread)
        else:
            result = InitiationResult(int(thread.reg("v0")), elapsed, thread)
        if sp is not None:
            ws.spans.end(
                sp, outcome="completed" if result.ok else "aborted",
                status=result.status)
        if ws.metrics.enabled:
            ws.metrics.poll()
        return result

    def polling_program(self, vsrc: int, vdst: int, size: int) -> Program:
        """Initiation followed by a §3.1 completion-polling loop.

        "A read operation from a register context returns the number of
        bytes that need to be transferred yet (-1 means failure, 0 means
        completed DMA operation)" — the returned program starts the DMA
        and then spins on the context page until the readout reaches 0,
        leaving the final status in ``v0``.  Only available for methods
        with a mapped register context (keyed, extshadow).

        Raises:
            ConfigError: for methods without a context page.
        """
        binding = self.proc.dma_binding
        if binding.ctx_page_vaddr is None:
            raise ConfigError(
                f"method {self.method.name!r} has no register-context "
                f"page to poll")
        ctx_page = Addr(None, binding.ctx_page_vaddr)
        instructions = self.sequence(vsrc, vdst, size)
        instructions += [
            Label("poll"),
            Load("v0", ctx_page),
            Beq("v0", STATUS_FAILURE, "done"),
            Bne("v0", 0, "poll"),
            Label("done"),
            Halt(),
        ]
        return assemble(instructions,
                        name=f"dma-poll-{self.method.name}")

    def dma_and_poll(self, vsrc: int, vdst: int, size: int) -> InitiationResult:
        """Run an initiation plus the polling loop to completion.

        The CPU spends the whole transfer duration spinning on the
        status register (as a simple application would); the result's
        elapsed time therefore covers initiation *and* data movement.
        """
        program = self.polling_program(vsrc, vdst, size)
        thread = self.proc.new_thread(program)
        start = self.ws.sim.now
        status = self.ws.run_thread(thread,
                                    max_instructions=5_000_000)
        elapsed = self.ws.sim.now - start
        if status is StepStatus.FAULTED:
            return InitiationResult(STATUS_FAILURE, elapsed, thread)
        return InitiationResult(int(thread.reg("v0")), elapsed, thread)

    def dma(self, vsrc: int, vdst: int, size: int,
            wait: bool = True) -> DmaResult:
        """Initiate a transfer and (by default) wait for the data to land."""
        ws = self.ws
        sp = None
        if ws.spans.enabled:
            sp = ws.spans.begin("dma", track=f"proc{self.proc.pid}",
                                method=self.method.name, pid=self.proc.pid,
                                size=size)
        before = len(ws.engine.transfer_engine.history)
        initiation = self.initiate(vsrc, vdst, size)
        transfer: Optional[Transfer] = None
        history = ws.engine.transfer_engine.history
        if initiation.ok and len(history) > before:
            transfer = history[-1]
            if wait:
                ws.sim.wait_for(lambda: transfer.completed)
        result = DmaResult(initiation=initiation, transfer=transfer)
        if sp is not None:
            ws.spans.end(
                sp, outcome="completed" if result.ok else "aborted")
        if ws.metrics.enabled:
            ws.metrics.poll()
        return result

    # ------------------------------------------------------------------
    # hardened execution (retry + backoff + kernel fallback)
    # ------------------------------------------------------------------

    def initiate_reliable(self, vsrc: int, vdst: int, size: int,
                          policy: Optional[RetryPolicy] = None
                          ) -> ReliableResult:
        """Initiation hardened against transient faults.

        Retries a rejected initiation up to ``policy.max_attempts``
        times with exponential, jittered backoff (simulated-time waits),
        then degrades to the kernel syscall path.  All activity is
        counted in ``ws.stats`` (``dma.retries``, ``dma.recoveries``,
        ``dma.retry_exhausted``, ``dma.kernel_fallbacks``) and emitted
        to the trace log.
        """
        policy = policy if policy is not None else DEFAULT_RETRY_POLICY
        stats = self.ws.stats
        rng = self._jitter_rng(policy)
        root = self._begin_reliable_span("dma.reliable", size)
        start = self.ws.sim.now
        result = self.initiate(vsrc, vdst, size)
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                result = self.initiate(vsrc, vdst, size)
            if result.ok:
                self._end_reliable_span(
                    root, "completed" if attempt == 1 else "retried",
                    attempt)
                return self._reliable_success(result, attempt, False, None,
                                              start)
            stats.counter("dma.retries").add()
            self.ws.trace.emit(self.ws.sim.now, "api", "dma-retry",
                               attempt=attempt, via=self.via,
                               pid=self.proc.pid)
            if attempt < policy.max_attempts:
                self._backoff(policy, attempt, rng)
        stats.counter("dma.retry_exhausted").add()
        if policy.kernel_fallback and self.via == "user":
            result = self._fallback_initiate(vsrc, vdst, size)
            stats.counter("dma.kernel_fallbacks").add()
            self.ws.trace.emit(self.ws.sim.now, "api", "dma-fallback",
                               pid=self.proc.pid, ok=result.ok)
            self._end_reliable_span(root, "fell-back",
                                    policy.max_attempts + 1)
            if result.ok:
                return self._reliable_success(
                    result, policy.max_attempts + 1, True, None, start)
            return ReliableResult(result, policy.max_attempts + 1, True,
                                  recovery_time=self.ws.sim.now - start)
        self._end_reliable_span(root, "aborted", policy.max_attempts)
        return ReliableResult(result, policy.max_attempts, False,
                              recovery_time=self.ws.sim.now - start)

    def dma_reliable(self, vsrc: int, vdst: int, size: int,
                     policy: Optional[RetryPolicy] = None) -> ReliableResult:
        """A full DMA hardened end to end.

        Like :meth:`dma`, but every wait is bounded: a transfer whose
        completion never fires (a dropped completion event) is declared
        lost after ``policy.completion_timeout`` and the whole operation
        is retried — the §3.3 repeated-DMA idempotence makes re-copying
        safe.  After user-level retry exhaustion the operation degrades
        to the kernel path.
        """
        policy = policy if policy is not None else DEFAULT_RETRY_POLICY
        stats = self.ws.stats
        rng = self._jitter_rng(policy)
        root = self._begin_reliable_span("dma.reliable", size)
        start = self.ws.sim.now
        initiation: Optional[InitiationResult] = None
        for attempt in range(1, policy.max_attempts + 1):
            initiation, transfer = self._try_once(self, vsrc, vdst, size,
                                                  policy)
            if transfer is not None and transfer.completed:
                self._end_reliable_span(
                    root, "completed" if attempt == 1 else "retried",
                    attempt)
                return self._reliable_success(initiation, attempt, False,
                                              transfer, start)
            if transfer is not None:
                stats.counter("dma.completion_timeouts").add()
            stats.counter("dma.retries").add()
            self.ws.trace.emit(self.ws.sim.now, "api", "dma-retry",
                               attempt=attempt, via=self.via,
                               pid=self.proc.pid,
                               lost_completion=transfer is not None)
            if attempt < policy.max_attempts:
                self._backoff(policy, attempt, rng)
        stats.counter("dma.retry_exhausted").add()
        if policy.kernel_fallback and self.via == "user":
            stats.counter("dma.kernel_fallbacks").add()
            fb = None
            if self.ws.spans.enabled:
                fb = self.ws.spans.begin("dma.fallback",
                                         track=f"proc{self.proc.pid}",
                                         pid=self.proc.pid)
            initiation, transfer = self._try_once(
                self._kernel_channel(), vsrc, vdst, size, policy)
            if fb is not None:
                self.ws.spans.end(fb, ok=initiation.ok)
            self.ws.trace.emit(self.ws.sim.now, "api", "dma-fallback",
                               pid=self.proc.pid, ok=initiation.ok)
            self._end_reliable_span(root, "fell-back",
                                    policy.max_attempts + 1)
            if transfer is not None and transfer.completed:
                return self._reliable_success(
                    initiation, policy.max_attempts + 1, True, transfer,
                    start)
            return ReliableResult(initiation, policy.max_attempts + 1, True,
                                  transfer=transfer,
                                  recovery_time=self.ws.sim.now - start)
        assert initiation is not None
        self._end_reliable_span(root, "aborted", policy.max_attempts)
        return ReliableResult(initiation, policy.max_attempts, False,
                              recovery_time=self.ws.sim.now - start)

    @staticmethod
    def _try_once(channel: "DmaChannel", vsrc: int, vdst: int, size: int,
                  policy: RetryPolicy):
        """One bounded attempt: initiate, then wait (with timeout)."""
        ws = channel.ws
        history = ws.engine.transfer_engine.history
        before = len(history)
        initiation = channel.initiate(vsrc, vdst, size)
        if not initiation.ok or len(history) <= before:
            return initiation, None
        transfer = history[-1]
        wsp = None
        if ws.spans.enabled:
            wsp = ws.spans.begin("dma.wait",
                                 track=f"proc{channel.proc.pid}")
        ws.sim.wait_for(lambda: transfer.completed,
                        timeout=policy.completion_timeout)
        if wsp is not None:
            ws.spans.end(wsp, completed=transfer.completed)
        return initiation, transfer

    # -- span helpers for the hardened paths --------------------------------

    def _begin_reliable_span(self, name: str, size: int):
        if not self.ws.spans.enabled:
            return None
        return self.ws.spans.begin(name, track=f"proc{self.proc.pid}",
                                   method=self.method.name,
                                   pid=self.proc.pid, via=self.via,
                                   size=size)

    def _end_reliable_span(self, root, outcome: str, attempts: int) -> None:
        if root is not None:
            self.ws.spans.end(root, outcome=outcome, attempts=attempts)
        if self.ws.metrics.enabled:
            self.ws.metrics.poll()

    def _backoff(self, policy: RetryPolicy, attempt: int, rng) -> None:
        """Wait out the backoff for *attempt*, as a span when tracing."""
        delay = policy.backoff(attempt, rng)
        if self.ws.spans.enabled:
            sp = self.ws.spans.begin("dma.backoff",
                                     track=f"proc{self.proc.pid}",
                                     attempt=attempt)
            self.ws.sim.advance(delay)
            self.ws.spans.end(sp)
        else:
            self.ws.sim.advance(delay)

    def _fallback_initiate(self, vsrc: int, vdst: int,
                           size: int) -> InitiationResult:
        """The kernel-path escape hatch, wrapped in a fallback span."""
        if not self.ws.spans.enabled:
            return self._kernel_channel().initiate(vsrc, vdst, size)
        fb = self.ws.spans.begin("dma.fallback",
                                 track=f"proc{self.proc.pid}",
                                 pid=self.proc.pid)
        result = self._kernel_channel().initiate(vsrc, vdst, size)
        self.ws.spans.end(fb, ok=result.ok)
        return result

    def _reliable_success(self, initiation: InitiationResult, attempts: int,
                          fell_back: bool, transfer: Optional[Transfer],
                          start: Time) -> ReliableResult:
        elapsed = self.ws.sim.now - start
        self.ws.stats.latency("dma.recovery").record(elapsed)
        if attempts > 1 or fell_back:
            self.ws.stats.counter("dma.recoveries").add()
        return ReliableResult(initiation, attempts, fell_back,
                              transfer=transfer, recovery_time=elapsed)

    def _kernel_channel(self) -> "DmaChannel":
        return DmaChannel(self.ws, self.proc, via="kernel")

    def _jitter_rng(self, policy: RetryPolicy):
        if self._retry_rng is None:
            self._retry_rng = policy.make_rng(
                self.ws.config.seed * 1_000_003 + self.proc.pid)
        return self._retry_rng


def open_channel(ws: Workstation, proc: Process) -> DmaChannel:
    """Open the best available DMA channel for *proc*.

    Tries to grant a user-level binding (if the process lacks one) and
    falls back to the kernel syscall path when the machine's method
    cannot serve this process — typically because every register context
    is taken (§3.2: "If more processes would like to start DMA
    operations, the rest will have to go through the kernel").

    Returns:
        A user-level channel when possible, else a kernel channel.
    """
    from ..errors import KernelError

    if ws.method.name == "kernel":
        return DmaChannel(ws, proc, via="kernel")
    if proc.dma is None:
        try:
            ws.kernel.enable_user_dma(proc)
        except KernelError:
            return DmaChannel(ws, proc, via="kernel")
    return DmaChannel(ws, proc, via="user")
