"""Analysis: the introduction's trend argument, made quantitative.

* :mod:`repro.analysis.trends` — initiation overhead vs. network transfer
  time across message sizes and link generations; crossover sizes.
* :mod:`repro.analysis.report` — plain-text table rendering shared by the
  benchmarks and examples.
"""

from .generations import (
    Generation,
    HISTORICAL_GENERATIONS,
    domination_year,
    generation_series,
)
from .report import Table, format_us
from .trends import (
    CrossoverPoint,
    TrendPoint,
    crossover_size,
    measure_initiation_us,
    overhead_sweep,
)

__all__ = [
    "CrossoverPoint",
    "Generation",
    "HISTORICAL_GENERATIONS",
    "Table",
    "TrendPoint",
    "crossover_size",
    "domination_year",
    "generation_series",
    "format_us",
    "measure_initiation_us",
    "overhead_sweep",
]
