"""Trend analysis: the paper's overhead argument, plus fleet telemetry.

The paper's motivation: "the operating system overhead keeps getting an
ever-increasing percentage of the DMA transfer time, while the time for
the data transfer per se continues to decrease.  Soon, the operating
system overhead will dominate the DMA transfer."

This module measures initiation cost on the *simulated machine* (not an
analytic guess — it runs the real instruction sequences) and combines it
with link serialization times to produce, for every (method, link
generation) pair:

* the end-to-end time of a message as a function of its size,
* the fraction of that time spent on initiation,
* the **crossover size** below which initiation costs more than moving
  the data — the quantity the paper's argument turns on.

It also hosts the *service* trend machinery used by the always-on DMA
service (:mod:`repro.service`): rolling time-series windows of goodput,
tail latency, fairness, and fault activity (:class:`ServiceTrendPoint`),
the trend report the soak harness emits
(:func:`service_trend_report`), and the regression comparator CI runs
against the committed ``BENCH_service.json`` baseline
(:func:`compare_service_reports`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.api import DmaChannel
from ..core.machine import MachineConfig, Workstation
from ..core.timing import MachineTiming
from ..net.link import LinkSpec
from ..units import Time, to_us, us


def measure_initiation_us(method: str,
                          timing: Optional[MachineTiming] = None,
                          iterations: int = 20,
                          seed: int = 42) -> float:
    """Measure the warm mean initiation latency of *method*, in us.

    Builds a fresh workstation, performs one warm-up initiation (TLB
    fill), then averages *iterations* initiations to distinct offsets —
    the paper's §3.4 methodology in miniature.
    """
    config = MachineConfig(method=method, seed=seed)
    if timing is not None:
        config.timing = timing
    ws = Workstation(config)
    proc = ws.kernel.spawn("trend")
    if method != "kernel":
        ws.kernel.enable_user_dma(proc)
    src = ws.kernel.alloc_buffer(proc, 8192, shadow=(method != "kernel"))
    dst = ws.kernel.alloc_buffer(proc, 8192, shadow=(method != "kernel"))
    if method == "shrimp1":
        ws.kernel.map_out(proc, src.vaddr, proc, dst.vaddr, 8192)
    chan = DmaChannel(ws, proc)
    chan.initiate(src.vaddr, dst.vaddr, 64)  # warm-up
    total: Time = 0
    for index in range(iterations):
        offset = (index % 64) * 64
        result = chan.initiate(src.vaddr + offset, dst.vaddr + offset, 64)
        total += result.elapsed
        ws.drain()
    return to_us(total) / iterations


@dataclass(frozen=True)
class TrendPoint:
    """One (method, link, size) sample.

    Attributes:
        method: initiation method.
        link: link preset name.
        size: message size in bytes.
        initiation_us: initiation latency.
        wire_us: link serialization + latency for the payload.
        total_us: end-to-end time.
        overhead_fraction: initiation / total.
    """

    method: str
    link: str
    size: int
    initiation_us: float
    wire_us: float
    total_us: float

    @property
    def overhead_fraction(self) -> float:
        """Share of end-to-end time spent initiating."""
        return self.initiation_us / self.total_us if self.total_us else 0.0


def overhead_sweep(methods: Sequence[str], links: Sequence[LinkSpec],
                   sizes: Sequence[int],
                   timing: Optional[MachineTiming] = None,
                   initiation_us: Optional[Dict[str, float]] = None,
                   ) -> List[TrendPoint]:
    """Sample the overhead surface over methods x links x sizes.

    Args:
        initiation_us: pre-measured initiation latencies (else measured
            here, once per method).
    """
    measured = dict(initiation_us) if initiation_us else {}
    points: List[TrendPoint] = []
    for method in methods:
        if method not in measured:
            measured[method] = measure_initiation_us(method, timing)
        for link in links:
            for size in sizes:
                wire_us = to_us(link.delivery_time(size))
                init = measured[method]
                points.append(TrendPoint(
                    method=method, link=link.name, size=size,
                    initiation_us=init, wire_us=wire_us,
                    total_us=init + wire_us))
    return points


@dataclass(frozen=True)
class CrossoverPoint:
    """The message size where initiation equals wire time.

    Below this size the sender spends more time *starting* the DMA than
    the network spends *moving* it — the regime the paper says kernel
    initiation has already entered on fast LANs.
    """

    method: str
    link: str
    initiation_us: float
    crossover_bytes: int


def crossover_size(initiation_us_value: float,
                   link: LinkSpec) -> int:
    """Bytes whose wire time equals the given initiation latency.

    Solves ``latency + (size + overhead)/bandwidth == initiation``; a
    non-positive solution (initiation below the bare link latency) maps
    to 0 — initiation never dominates on that link.
    """
    budget_ps = us(initiation_us_value) - link.latency
    if budget_ps <= 0:
        return 0
    size = budget_ps * link.bandwidth_bps / 8 / 1_000_000_000_000
    size -= link.per_message_overhead
    return max(0, int(size))


def crossover_table(methods: Sequence[str], links: Sequence[LinkSpec],
                    timing: Optional[MachineTiming] = None,
                    initiation_us: Optional[Dict[str, float]] = None,
                    ) -> List[CrossoverPoint]:
    """Crossover sizes for every (method, link) pair."""
    measured = dict(initiation_us) if initiation_us else {}
    out: List[CrossoverPoint] = []
    for method in methods:
        if method not in measured:
            measured[method] = measure_initiation_us(method, timing)
        for link in links:
            out.append(CrossoverPoint(
                method=method, link=link.name,
                initiation_us=measured[method],
                crossover_bytes=crossover_size(measured[method], link)))
    return out


# ----------------------------------------------------------------------
# Service trend analysis (the always-on DMA service's telemetry format)
# ----------------------------------------------------------------------

def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) by linear interpolation.

    Accepts unsorted input; an empty sequence maps to 0.0 so trend
    windows with no completions stay representable.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


def latency_summary(values: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 plus mean and max of a latency sample, in one dict."""
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0,
                "max": 0.0, "n": 0}
    return {
        "p50": round(percentile(values, 50.0), 3),
        "p95": round(percentile(values, 95.0), 3),
        "p99": round(percentile(values, 99.0), 3),
        "mean": round(sum(values) / len(values), 3),
        "max": round(max(values), 3),
        "n": len(values),
    }


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly even shares; ``1/n`` means one tenant got
    everything.  An empty or all-zero sample maps to 1.0 (no unfairness
    has been demonstrated).
    """
    xs = [float(v) for v in values]
    total = sum(xs)
    if not xs or total == 0.0:
        return 1.0
    squares = sum(x * x for x in xs)
    return round(total * total / (len(xs) * squares), 6)


@dataclass(frozen=True)
class ServiceTrendPoint:
    """One rolling telemetry window of the always-on service.

    Attributes:
        t_s: window end, in service-time seconds.
        completed: requests that finished OK in the window.
        failed: requests that aborted (after retries/fallback).
        rejected: requests the admission controller turned away.
        bytes_moved: payload bytes landed in the window.
        goodput_mbytes_per_s: payload MB/s over the window.
        p50_us / p95_us / p99_us: completion-latency percentiles over
            the window, in simulated microseconds.
        retries: retry count delta over the window.
        faults: faults injected during the window.
        fairness: Jain index of per-tenant completions in the window.
        queue_depth: mean shard queue depth sampled at window end.
        p99_exemplars: trace ids sampled from the window's p99+ latency
            histogram buckets — each links a tail number back to one
            full distributed trace.
    """

    t_s: float
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    bytes_moved: int = 0
    goodput_mbytes_per_s: float = 0.0
    p50_us: float = 0.0
    p95_us: float = 0.0
    p99_us: float = 0.0
    retries: int = 0
    faults: int = 0
    fairness: float = 1.0
    queue_depth: float = 0.0
    p99_exemplars: tuple = ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering."""
        out: Dict[str, Any] = {
            "t_s": round(self.t_s, 3),
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "bytes_moved": self.bytes_moved,
            "goodput_mbytes_per_s": round(self.goodput_mbytes_per_s, 4),
            "p50_us": round(self.p50_us, 3),
            "p95_us": round(self.p95_us, 3),
            "p99_us": round(self.p99_us, 3),
            "retries": self.retries,
            "faults": self.faults,
            "fairness": self.fairness,
            "queue_depth": round(self.queue_depth, 3),
        }
        if self.p99_exemplars:
            out["p99_exemplars"] = list(self.p99_exemplars)
        return out


@dataclass
class TrendHistory:
    """A bounded rolling window of :class:`ServiceTrendPoint` entries.

    The telemetry monitor appends one point per cadence interval; the
    bound keeps an always-on service's memory flat (old windows fall
    off the left edge, exactly like a dashboard's retention horizon).
    """

    max_points: int = 720
    points: List[ServiceTrendPoint] = field(default_factory=list)

    def append(self, point: ServiceTrendPoint) -> None:
        """Add a window, evicting the oldest beyond ``max_points``."""
        self.points.append(point)
        if len(self.points) > self.max_points:
            del self.points[:len(self.points) - self.max_points]

    def __len__(self) -> int:
        return len(self.points)


def service_trend_report(points: Sequence[ServiceTrendPoint],
                         meta: Optional[Dict[str, Any]] = None
                         ) -> Dict[str, Any]:
    """The trend report the soak harness persists and CI uploads.

    Aggregates the rolling windows into an overall summary (goodput,
    tail latency of the worst window, fairness floor) and flags
    intra-run regressions: windows whose goodput fell below half the
    run's median are listed under ``"stalls"`` so a soak that *mostly*
    worked cannot hide a dead interval.
    """
    windows = [p.to_dict() for p in points]
    goodputs = [p.goodput_mbytes_per_s for p in points
                if p.completed or p.failed]
    median_goodput = percentile(goodputs, 50.0) if goodputs else 0.0
    stalls = [p.t_s for p in points
              if (p.completed or p.failed)
              and median_goodput > 0.0
              and p.goodput_mbytes_per_s < 0.5 * median_goodput]
    summary = {
        "windows": len(points),
        "completed": sum(p.completed for p in points),
        "failed": sum(p.failed for p in points),
        "rejected": sum(p.rejected for p in points),
        "bytes_moved": sum(p.bytes_moved for p in points),
        "median_goodput_mbytes_per_s": round(median_goodput, 4),
        "worst_window_p99_us": round(max((p.p99_us for p in points),
                                         default=0.0), 3),
        "min_fairness": round(min((p.fairness for p in points
                                   if p.completed), default=1.0), 6),
        "max_queue_depth": round(max((p.queue_depth for p in points),
                                     default=0.0), 3),
        "total_retries": sum(p.retries for p in points),
        "total_faults": sum(p.faults for p in points),
    }
    report: Dict[str, Any] = {
        "kind": "service_trend",
        "summary": summary,
        "stalls": [round(t, 3) for t in stalls],
        "windows_series": windows,
    }
    if meta:
        report["meta"] = dict(meta)
    return report


def compare_service_reports(baseline: Dict[str, Any],
                            candidate: Dict[str, Any],
                            max_goodput_drop: float = 0.10,
                            max_p99_increase: float = 0.10
                            ) -> List[str]:
    """CI gate between two ``BENCH_service.json`` soak reports.

    Returns human-readable failure lines (empty = gate passes):

    * candidate aggregate goodput more than *max_goodput_drop* below
      the baseline's;
    * candidate p99 completion latency more than *max_p99_increase*
      above the baseline's;
    * any wrong-page transfer in the candidate (always fatal);
    * a candidate fault verdict of ``UNSAFE``.
    """
    failures: List[str] = []
    base_good = float(baseline.get("goodput_mbytes_per_s") or 0.0)
    cand_good = float(candidate.get("goodput_mbytes_per_s") or 0.0)
    if base_good > 0.0:
        drop = (base_good - cand_good) / base_good
        if drop > max_goodput_drop:
            failures.append(
                f"goodput {cand_good:.3f} MB/s is {drop * 100:.1f}% below "
                f"baseline {base_good:.3f} MB/s "
                f"(allowed {max_goodput_drop * 100:.0f}%)")
    base_p99 = float((baseline.get("latency_us") or {}).get("p99") or 0.0)
    cand_p99 = float((candidate.get("latency_us") or {}).get("p99") or 0.0)
    if base_p99 > 0.0:
        rise = (cand_p99 - base_p99) / base_p99
        if rise > max_p99_increase:
            failures.append(
                f"p99 latency {cand_p99:.1f} us is {rise * 100:.1f}% above "
                f"baseline {base_p99:.1f} us "
                f"(allowed {max_p99_increase * 100:.0f}%)")
    wrong = int((candidate.get("requests") or {}).get("wrong_transfers", 0))
    if wrong:
        failures.append(f"{wrong} wrong-page transfer(s) in candidate "
                        f"(must be 0)")
    verdict = (candidate.get("faults") or {}).get("verdict")
    if verdict == "UNSAFE":
        failures.append("candidate fault verdict is UNSAFE")
    return failures


# ----------------------------------------------------------------------
# Anomaly detection over the window series (`repro trends --check`)
# ----------------------------------------------------------------------

def ewma(values: Sequence[float], alpha: float = 0.3) -> List[float]:
    """Exponentially weighted moving average of *values*.

    ``out[i]`` is the EWMA *including* ``values[i]``; an empty input
    maps to an empty list.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    out: List[float] = []
    level: Optional[float] = None
    for value in values:
        level = (float(value) if level is None
                 else alpha * float(value) + (1.0 - alpha) * level)
        out.append(level)
    return out


def robust_z(values: Sequence[float]) -> List[float]:
    """Robust z-scores: deviation from the median in MAD units.

    Uses the consistency constant 1.4826 so the score matches an
    ordinary z-score on normal data, but a single wild window cannot
    inflate the spread estimate the way it would a standard deviation.
    A zero MAD (over half the values identical) falls back to the mean
    absolute deviation; if that is zero too the series is constant and
    every score is 0.
    """
    xs = [float(v) for v in values]
    if not xs:
        return []
    med = percentile(xs, 50.0)
    deviations = [abs(x - med) for x in xs]
    mad = percentile(deviations, 50.0)
    scale = 1.4826 * mad
    if scale == 0.0:
        mean_dev = sum(deviations) / len(deviations)
        scale = 1.2533 * mean_dev  # E|X-mu| = sigma*sqrt(2/pi)
    if scale == 0.0:
        return [0.0] * len(xs)
    return [(x - med) / scale for x in xs]


def detect_anomalies(values: Sequence[float], z_threshold: float = 4.0,
                     alpha: float = 0.3,
                     min_residual: float = 0.0) -> List[int]:
    """Indices of windows that deviate anomalously from the trend.

    Each value is compared against the EWMA of the values *before* it
    (the trend's one-step prediction); the residuals are then scored
    with :func:`robust_z` and indices whose absolute score exceeds
    *z_threshold* are returned.  The combination flags genuine level
    shifts and spikes while tolerating the heavy-tailed noise a faulted
    soak produces.

    *min_residual* is an absolute floor: a window is never anomalous
    unless its residual also exceeds it.  Sparse integer series (the
    per-window failure count of a healthy soak is mostly 0 with
    scattered 1s) collapse the robust scale toward zero, which would
    turn a single failed request into a paging z-score; a small
    absolute floor removes that failure mode without desensitizing
    genuinely large bursts.
    """
    xs = [float(v) for v in values]
    if len(xs) < 3:
        return []
    smoothed = ewma(xs, alpha=alpha)
    residuals = [xs[0] - xs[0]] + [xs[i] - smoothed[i - 1]
                                   for i in range(1, len(xs))]
    scores = robust_z(residuals)
    return [i for i, score in enumerate(scores)
            if abs(score) > z_threshold
            and abs(residuals[i]) > min_residual]


def trend_anomaly_report(report: Dict[str, Any],
                         z_threshold: float = 4.0,
                         alpha: float = 0.3) -> Dict[str, Any]:
    """Anomaly scan of a service trend report's window series.

    Checks the three series an operator watches — goodput, p99
    latency, and failure count — and returns the anomalous window
    timestamps per series.  ``repro trends --check`` exits non-zero
    when ``anomalous`` is true, which CI runs against the committed
    ``BENCH_service.json`` history.
    """
    windows = report.get("windows_series") or []
    series = {
        "goodput_mbytes_per_s": [w.get("goodput_mbytes_per_s", 0.0)
                                 for w in windows],
        "p99_us": [w.get("p99_us", 0.0) for w in windows],
        "failed": [w.get("failed", 0) for w in windows],
    }
    # The failure count is a sparse integer series: under faults a
    # healthy window fails 0-2 requests, so only multi-request bursts
    # are signal.  The continuous series keep a zero floor.
    floors = {"failed": 3.0}
    t_s = [w.get("t_s", 0.0) for w in windows]
    anomalies: Dict[str, List[float]] = {}
    for name, values in series.items():
        hits = detect_anomalies(values, z_threshold=z_threshold,
                                alpha=alpha,
                                min_residual=floors.get(name, 0.0))
        if hits:
            anomalies[name] = [round(t_s[i], 3) for i in hits]
    return {
        "kind": "trend_anomalies",
        "windows": len(windows),
        "z_threshold": z_threshold,
        "alpha": alpha,
        "anomalies": anomalies,
        "anomalous": bool(anomalies),
    }
