"""The introduction's trend argument, made quantitative.

The paper's motivation: "the operating system overhead keeps getting an
ever-increasing percentage of the DMA transfer time, while the time for
the data transfer per se continues to decrease.  Soon, the operating
system overhead will dominate the DMA transfer."

This module measures initiation cost on the *simulated machine* (not an
analytic guess — it runs the real instruction sequences) and combines it
with link serialization times to produce, for every (method, link
generation) pair:

* the end-to-end time of a message as a function of its size,
* the fraction of that time spent on initiation,
* the **crossover size** below which initiation costs more than moving
  the data — the quantity the paper's argument turns on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.api import DmaChannel
from ..core.machine import MachineConfig, Workstation
from ..core.timing import MachineTiming
from ..net.link import LinkSpec
from ..units import Time, to_us, us


def measure_initiation_us(method: str,
                          timing: Optional[MachineTiming] = None,
                          iterations: int = 20,
                          seed: int = 42) -> float:
    """Measure the warm mean initiation latency of *method*, in us.

    Builds a fresh workstation, performs one warm-up initiation (TLB
    fill), then averages *iterations* initiations to distinct offsets —
    the paper's §3.4 methodology in miniature.
    """
    config = MachineConfig(method=method, seed=seed)
    if timing is not None:
        config.timing = timing
    ws = Workstation(config)
    proc = ws.kernel.spawn("trend")
    if method != "kernel":
        ws.kernel.enable_user_dma(proc)
    src = ws.kernel.alloc_buffer(proc, 8192, shadow=(method != "kernel"))
    dst = ws.kernel.alloc_buffer(proc, 8192, shadow=(method != "kernel"))
    if method == "shrimp1":
        ws.kernel.map_out(proc, src.vaddr, proc, dst.vaddr, 8192)
    chan = DmaChannel(ws, proc)
    chan.initiate(src.vaddr, dst.vaddr, 64)  # warm-up
    total: Time = 0
    for index in range(iterations):
        offset = (index % 64) * 64
        result = chan.initiate(src.vaddr + offset, dst.vaddr + offset, 64)
        total += result.elapsed
        ws.drain()
    return to_us(total) / iterations


@dataclass(frozen=True)
class TrendPoint:
    """One (method, link, size) sample.

    Attributes:
        method: initiation method.
        link: link preset name.
        size: message size in bytes.
        initiation_us: initiation latency.
        wire_us: link serialization + latency for the payload.
        total_us: end-to-end time.
        overhead_fraction: initiation / total.
    """

    method: str
    link: str
    size: int
    initiation_us: float
    wire_us: float
    total_us: float

    @property
    def overhead_fraction(self) -> float:
        """Share of end-to-end time spent initiating."""
        return self.initiation_us / self.total_us if self.total_us else 0.0


def overhead_sweep(methods: Sequence[str], links: Sequence[LinkSpec],
                   sizes: Sequence[int],
                   timing: Optional[MachineTiming] = None,
                   initiation_us: Optional[Dict[str, float]] = None,
                   ) -> List[TrendPoint]:
    """Sample the overhead surface over methods x links x sizes.

    Args:
        initiation_us: pre-measured initiation latencies (else measured
            here, once per method).
    """
    measured = dict(initiation_us) if initiation_us else {}
    points: List[TrendPoint] = []
    for method in methods:
        if method not in measured:
            measured[method] = measure_initiation_us(method, timing)
        for link in links:
            for size in sizes:
                wire_us = to_us(link.delivery_time(size))
                init = measured[method]
                points.append(TrendPoint(
                    method=method, link=link.name, size=size,
                    initiation_us=init, wire_us=wire_us,
                    total_us=init + wire_us))
    return points


@dataclass(frozen=True)
class CrossoverPoint:
    """The message size where initiation equals wire time.

    Below this size the sender spends more time *starting* the DMA than
    the network spends *moving* it — the regime the paper says kernel
    initiation has already entered on fast LANs.
    """

    method: str
    link: str
    initiation_us: float
    crossover_bytes: int


def crossover_size(initiation_us_value: float,
                   link: LinkSpec) -> int:
    """Bytes whose wire time equals the given initiation latency.

    Solves ``latency + (size + overhead)/bandwidth == initiation``; a
    non-positive solution (initiation below the bare link latency) maps
    to 0 — initiation never dominates on that link.
    """
    budget_ps = us(initiation_us_value) - link.latency
    if budget_ps <= 0:
        return 0
    size = budget_ps * link.bandwidth_bps / 8 / 1_000_000_000_000
    size -= link.per_message_overhead
    return max(0, int(size))


def crossover_table(methods: Sequence[str], links: Sequence[LinkSpec],
                    timing: Optional[MachineTiming] = None,
                    initiation_us: Optional[Dict[str, float]] = None,
                    ) -> List[CrossoverPoint]:
    """Crossover sizes for every (method, link) pair."""
    measured = dict(initiation_us) if initiation_us else {}
    out: List[CrossoverPoint] = []
    for method in methods:
        if method not in measured:
            measured[method] = measure_initiation_us(method, timing)
        for link in links:
            out.append(CrossoverPoint(
                method=method, link=link.name,
                initiation_us=measured[method],
                crossover_bytes=crossover_size(measured[method], link)))
    return out
