"""Plain-text table rendering.

The benchmarks and examples print fixed-width tables shaped like the
paper's Table 1 so results can be eyeballed against the original.  No
external dependencies, no colour — output is meant for logs and
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_us(value: float, digits: int = 1) -> str:
    """Render a microsecond value the way the paper prints them."""
    return f"{value:.{digits}f}"


class Table:
    """A fixed-width text table with a title and column headers."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are str()-ed.

        Raises:
            ValueError: on a cell-count mismatch.
        """
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns")
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """The formatted table as a multi-line string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Iterable[str]) -> str:
            return " | ".join(
                cell.ljust(width) for cell, width in zip(cells, widths))

        separator = "-+-".join("-" * width for width in widths)
        out = [self.title, "=" * len(self.title), line(self.headers),
               separator]
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def markdown(self) -> str:
        """The same table as GitHub-flavoured markdown."""
        header = "| " + " | ".join(self.headers) + " |"
        rule = "|" + "|".join("---" for _ in self.headers) + "|"
        body = ["| " + " | ".join(row) + " |" for row in self.rows]
        return "\n".join([f"**{self.title}**", "", header, rule] + body)

    def __str__(self) -> str:
        return self.render()
