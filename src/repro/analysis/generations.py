"""The historical trend behind the paper's motivation.

The introduction stands on two cited observations:

* Ousterhout ('90) / Rosenblum et al. ('95): *operating systems do not
  get faster as fast as hardware* — OS paths cost roughly constant (or
  growing) cycle counts while CPU clocks climb;
* link technology jumped from shared 10 Mb/s Ethernet to ATM-155/622
  and Gigabit LANs within the same half-decade.

This module models a sequence of machine *generations*: each scales the
CPU clock and the network bandwidth by their historical trajectories
while holding the OS's **cycle** counts fixed (the Ousterhout effect)
and letting the I/O bus improve only modestly.  For every generation it
computes the kernel-initiation cost, the wire time of a small message,
and their ratio — reproducing the intro's "ever-increasing percentage"
curve and showing the year user-level initiation became unavoidable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..units import Time, mbps, mhz, period_ps, to_us, transfer_time


@dataclass(frozen=True)
class Generation:
    """One machine/network generation.

    Attributes:
        year: label.
        cpu_mhz: CPU clock.
        bus_mhz: I/O bus clock.
        network_mbps: LAN bandwidth.
        os_cycles: cycles of one kernel DMA initiation (trap + translate
            + checks) — roughly constant across generations, per the
            paper's cited OS literature.
        user_bus_accesses: uncached accesses of a user-level initiation
            (extended shadow: 2).
    """

    year: int
    cpu_mhz: float
    bus_mhz: float
    network_mbps: float
    os_cycles: float = 2_440.0
    user_bus_accesses: int = 2

    @property
    def kernel_initiation(self) -> Time:
        """Kernel initiation cost: OS cycles + 4 device accesses."""
        cpu_period = period_ps(mhz(self.cpu_mhz))
        bus_period = period_ps(mhz(self.bus_mhz))
        return round(self.os_cycles * cpu_period + 4 * 6.5 * bus_period)

    @property
    def user_initiation(self) -> Time:
        """User-level initiation cost: a couple of uncached accesses."""
        bus_period = period_ps(mhz(self.bus_mhz))
        return round(self.user_bus_accesses * 6.5 * bus_period)

    def wire_time(self, nbytes: int) -> Time:
        """Serialization time of *nbytes* on this generation's LAN."""
        return transfer_time(nbytes, mbps(self.network_mbps))

    def kernel_overhead_ratio(self, nbytes: int) -> float:
        """Kernel initiation time over wire time — the intro's curve."""
        return self.kernel_initiation / max(1, self.wire_time(nbytes))

    def user_overhead_ratio(self, nbytes: int) -> float:
        """User initiation time over wire time."""
        return self.user_initiation / max(1, self.wire_time(nbytes))


#: A historically shaped trajectory: CPUs ~4x every generation shown,
#: LANs jumping 10 -> 100 -> 155 -> 622 -> 1000 Mb/s, buses improving
#: far more slowly, and OS *cycle* counts growing — Ousterhout's and
#: Rosenblum's measurements both have OS paths consuming more cycles on
#: each newer machine (register sets, cache behaviour, I/O distance).
HISTORICAL_GENERATIONS: List[Generation] = [
    Generation(year=1990, cpu_mhz=25.0, bus_mhz=8.0, network_mbps=10.0,
               os_cycles=1_200.0),
    Generation(year=1993, cpu_mhz=66.0, bus_mhz=12.5,
               network_mbps=100.0, os_cycles=1_800.0),
    Generation(year=1995, cpu_mhz=150.0, bus_mhz=12.5,
               network_mbps=155.0, os_cycles=2_440.0),
    Generation(year=1997, cpu_mhz=300.0, bus_mhz=33.0,
               network_mbps=622.0, os_cycles=3_200.0),
    Generation(year=1999, cpu_mhz=500.0, bus_mhz=66.0,
               network_mbps=1000.0, os_cycles=4_000.0),
]


@dataclass(frozen=True)
class GenerationPoint:
    """The intro's trend, evaluated at one generation and message size."""

    year: int
    message_bytes: int
    kernel_initiation_us: float
    user_initiation_us: float
    wire_us: float
    kernel_ratio: float
    user_ratio: float


def generation_series(message_bytes: int = 1024,
                      generations: Sequence[Generation] = tuple(
                          HISTORICAL_GENERATIONS),
                      ) -> List[GenerationPoint]:
    """Evaluate the overhead-vs-wire trend across generations."""
    out: List[GenerationPoint] = []
    for gen in generations:
        out.append(GenerationPoint(
            year=gen.year,
            message_bytes=message_bytes,
            kernel_initiation_us=to_us(gen.kernel_initiation),
            user_initiation_us=to_us(gen.user_initiation),
            wire_us=to_us(gen.wire_time(message_bytes)),
            kernel_ratio=gen.kernel_overhead_ratio(message_bytes),
            user_ratio=gen.user_overhead_ratio(message_bytes)))
    return out


def domination_year(message_bytes: int = 1024,
                    generations: Sequence[Generation] = tuple(
                        HISTORICAL_GENERATIONS)) -> int:
    """First generation whose kernel initiation exceeds the wire time.

    The paper's "soon, the operating system overhead will dominate the
    DMA transfer", as a year.  Returns -1 if it never happens in the
    given trajectory.
    """
    for gen in generations:
        if gen.kernel_overhead_ratio(message_bytes) >= 1.0:
            return gen.year
    return -1
