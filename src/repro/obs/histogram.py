"""Log-bucketed latency histograms with trace exemplars.

An HDR-style histogram: bucket boundaries grow geometrically —
``sub_buckets`` linearly-spaced buckets per power of two above
``min_value_us`` — so the *relative* quantile error is bounded by
``1 / sub_buckets`` regardless of dynamic range, while memory stays a
sparse dict of non-empty buckets.  This is what lets
:class:`~repro.service.telemetry.FleetTelemetry` keep whole-run and
per-window latency distributions in bounded memory instead of an
unbounded raw-sample list.

**Exemplars.**  :meth:`LatencyHistogram.record` optionally attaches a
trace id to the sample's bucket (a bounded ring per bucket).  Because
tail buckets are sparse, the p99+ buckets effectively retain *every*
recent tail trace id — :meth:`exemplars` returns them, so any tail
sample in a dashboard links back to its full causal tree via
:func:`~repro.obs.context.causal_tree`.

**Interpolation convention.**  :meth:`percentile` mirrors
:meth:`repro.sim.stats.LatencyStat.percentile` (and
:func:`repro.analysis.trends.percentile`) exactly: the *q*-th
percentile is the linear interpolation between the samples at ranks
``floor(r)`` and ``ceil(r)`` where ``r = (n - 1) * q / 100`` — each
sample approximated by a bucket-uniform position estimate.
:meth:`percentile_error_bound` returns the worst-case absolute error
of that approximation, which is what the cross-check in
``FleetTelemetry.close_window`` asserts against.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..errors import ObservabilityError
from ..sim.stats import LatencyStat
from ..units import to_us


class LatencyHistogram:
    """A sparse log-bucketed histogram of latencies in microseconds.

    Args:
        min_value_us: lower edge of the first octave; smaller samples
            clamp into bucket 0.
        sub_buckets: linear buckets per power of two — the relative
            quantile error bound is ``1 / sub_buckets``.
        exemplars_per_bucket: trace ids retained per bucket (newest
            win), so tail buckets always link to recent full traces.
    """

    def __init__(self, min_value_us: float = 0.01,
                 sub_buckets: int = 32,
                 exemplars_per_bucket: int = 4) -> None:
        if min_value_us <= 0.0:
            raise ObservabilityError(
                f"min_value_us must be positive, got {min_value_us}")
        if sub_buckets < 1:
            raise ObservabilityError(
                f"sub_buckets must be >= 1, got {sub_buckets}")
        self.min_value_us = float(min_value_us)
        self.sub_buckets = int(sub_buckets)
        self.exemplars_per_bucket = int(exemplars_per_bucket)
        self._counts: Dict[int, int] = {}
        self._exemplars: Dict[int, Deque[Tuple[str, float]]] = {}
        self.count = 0
        self.total_us = 0.0
        self.min_us: Optional[float] = None
        self.max_us: Optional[float] = None

    # ------------------------------------------------------------------
    # bucket geometry
    # ------------------------------------------------------------------

    def bucket_index(self, value_us: float) -> int:
        """The bucket a sample lands in (values clamp at the low edge)."""
        ratio = value_us / self.min_value_us
        if ratio < 1.0:
            return 0
        _, exponent = math.frexp(ratio)  # ratio = f * 2**e, f in [0.5, 1)
        octave = exponent - 1
        within = ratio / (1 << octave)  # in [1, 2)
        sub = min(self.sub_buckets - 1,
                  int((within - 1.0) * self.sub_buckets))
        return octave * self.sub_buckets + sub

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """``[lower, upper)`` edges of bucket *index*, in microseconds."""
        octave, sub = divmod(index, self.sub_buckets)
        base = self.min_value_us * (1 << octave)
        lower = base * (1.0 + sub / self.sub_buckets)
        upper = base * (1.0 + (sub + 1) / self.sub_buckets)
        return lower, upper

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def record(self, value_us: float,
               trace_id: Optional[str] = None) -> None:
        """Fold one latency sample in, optionally tagged with its trace."""
        if value_us < 0.0:
            raise ObservabilityError(
                f"latency must be non-negative, got {value_us}")
        index = self.bucket_index(value_us)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.total_us += value_us
        if self.min_us is None or value_us < self.min_us:
            self.min_us = value_us
        if self.max_us is None or value_us > self.max_us:
            self.max_us = value_us
        if trace_id is not None:
            ring = self._exemplars.get(index)
            if ring is None:
                ring = self._exemplars[index] = deque(
                    maxlen=self.exemplars_per_bucket)
            ring.append((trace_id, value_us))

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold *other* (same geometry) into this histogram."""
        if (other.min_value_us != self.min_value_us
                or other.sub_buckets != self.sub_buckets):
            raise ObservabilityError(
                "cannot merge histograms with different bucket geometry")
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        for index, ring in other._exemplars.items():
            mine = self._exemplars.get(index)
            if mine is None:
                mine = self._exemplars[index] = deque(
                    maxlen=self.exemplars_per_bucket)
            mine.extend(ring)
        self.count += other.count
        self.total_us += other.total_us
        for bound in (other.min_us, other.max_us):
            if bound is None:
                continue
            if self.min_us is None or bound < self.min_us:
                self.min_us = bound
            if self.max_us is None or bound > self.max_us:
                self.max_us = bound

    # ------------------------------------------------------------------
    # quantiles
    # ------------------------------------------------------------------

    def _rank_estimate(self, rank: int) -> Tuple[float, float]:
        """(estimate, worst-case error) of the sample at sorted *rank*.

        The estimate places the bucket's samples uniformly across the
        bucket, clamped into the exact recorded [min, max]; the error
        bound is the bucket width (zero when min == max pins it).
        """
        cumulative = 0
        for index in sorted(self._counts):
            count = self._counts[index]
            if rank < cumulative + count:
                lower, upper = self.bucket_bounds(index)
                position = (rank - cumulative + 0.5) / count
                estimate = lower + (upper - lower) * position
                assert self.min_us is not None and self.max_us is not None
                estimate = min(max(estimate, self.min_us), self.max_us)
                return estimate, upper - lower
            cumulative += count
        assert self.max_us is not None  # rank beyond the data: clamp
        return self.max_us, 0.0

    def _rank_of(self, q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return (self.count - 1) * q / 100.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile under the shared linear-interpolation
        convention (see the module docstring); 0.0 when empty."""
        if self.count == 0:
            self._rank_of(q)  # still validate the argument
            return 0.0
        if q == 0.0:
            assert self.min_us is not None
            return self.min_us
        if q == 100.0:
            assert self.max_us is not None
            return self.max_us
        rank = self._rank_of(q)
        low = int(rank)
        frac = rank - low
        low_value, _ = self._rank_estimate(low)
        if frac == 0.0:
            return low_value
        high_value, _ = self._rank_estimate(min(low + 1, self.count - 1))
        return low_value * (1.0 - frac) + high_value * frac

    def percentile_error_bound(self, q: float) -> float:
        """Worst-case absolute error of :meth:`percentile` at *q*."""
        if self.count == 0:
            return 0.0
        rank = self._rank_of(q)
        low = int(rank)
        frac = rank - low
        _, low_err = self._rank_estimate(low)
        if frac == 0.0:
            return low_err
        _, high_err = self._rank_estimate(min(low + 1, self.count - 1))
        return low_err * (1.0 - frac) + high_err * frac

    @property
    def mean_us(self) -> float:
        """Exact mean of the recorded samples (0.0 when empty)."""
        return self.total_us / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """The ``latency_us`` report block (same keys as
        :func:`repro.analysis.trends.latency_summary`)."""
        if self.count == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0,
                    "max": 0.0, "n": 0}
        assert self.max_us is not None
        return {
            "p50": round(self.percentile(50.0), 3),
            "p95": round(self.percentile(95.0), 3),
            "p99": round(self.percentile(99.0), 3),
            "mean": round(self.mean_us, 3),
            "max": round(self.max_us, 3),
            "n": self.count,
        }

    # ------------------------------------------------------------------
    # exemplars
    # ------------------------------------------------------------------

    def exemplars(self, q: float = 99.0) -> List[Dict[str, Any]]:
        """Trace exemplars at or above the *q*-th percentile's bucket.

        Returns ``{"trace_id", "latency_us"}`` dicts, slowest first —
        every entry links a tail sample to its full causal tree.
        """
        if self.count == 0:
            return []
        threshold = self.bucket_index(max(self.percentile(q),
                                          self.min_value_us))
        out: List[Dict[str, Any]] = []
        for index in sorted(self._exemplars, reverse=True):
            if index < threshold:
                break
            for trace_id, value in reversed(self._exemplars[index]):
                out.append({"trace_id": trace_id,
                            "latency_us": round(value, 3)})
        return out

    # ------------------------------------------------------------------
    # consistency + serialization
    # ------------------------------------------------------------------

    def verify_against_stat(self, stat: LatencyStat,
                            qs: Tuple[float, ...] = (50.0, 95.0, 99.0)
                            ) -> List[str]:
        """Cross-check this histogram against a sample-retaining
        :class:`LatencyStat` over the *same* data (stat in ps).

        Both use the identical interpolation convention, so any
        disagreement beyond the histogram's per-quantile error bound
        (plus the stat's 1 ps rounding) means the two aggregation paths
        diverged — the assertion ``FleetTelemetry.close_window`` runs
        every window.  Returns problem strings (empty = consistent).
        """
        problems: List[str] = []
        if stat.count != self.count:
            problems.append(f"sample counts differ: stat={stat.count} "
                            f"histogram={self.count}")
            return problems
        for q in qs:
            exact_us = to_us(stat.percentile(q))
            approx_us = self.percentile(q)
            bound = self.percentile_error_bound(q) + 1e-5
            if abs(approx_us - exact_us) > bound:
                problems.append(
                    f"p{q:g} disagrees: histogram {approx_us:.4f} us vs "
                    f"exact {exact_us:.4f} us (allowed ±{bound:.4f})")
        return problems

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering: non-empty buckets plus exemplars."""
        return {
            "min_value_us": self.min_value_us,
            "sub_buckets": self.sub_buckets,
            "count": self.count,
            "mean_us": round(self.mean_us, 4),
            "min_us": round(self.min_us, 4) if self.min_us is not None
            else None,
            "max_us": round(self.max_us, 4) if self.max_us is not None
            else None,
            "buckets": [
                {"lower_us": round(self.bucket_bounds(index)[0], 4),
                 "count": self._counts[index]}
                for index in sorted(self._counts)],
            "exemplars": self.exemplars(99.0),
        }

    def __len__(self) -> int:
        return self.count
