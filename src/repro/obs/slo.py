"""Declarative SLOs with multi-window burn-rate evaluation.

A service-level objective here is a :class:`SloRule` — a named target
over the telemetry stream the always-on service already produces
(:class:`~repro.analysis.trends.ServiceTrendPoint` windows).  Three
kinds cover the paper's claims as operational guarantees:

* ``availability`` — goodput availability: the fraction of
  non-rejected requests that complete OK must stay above
  ``objective`` (error budget ``1 - objective``);
* ``latency_p99`` — the window's p99 completion latency must stay
  under ``target_us`` in at least ``objective`` of windows;
* ``wrong_page`` — isolation violations are budgetless: any wrong-page
  transfer breaches immediately (the paper's protection argument says
  the count is *zero*, so the SLO is exact).

Evaluation follows the classic multi-window burn-rate pattern: each
telemetry window contributes an error fraction; a rule breaches only
when the budget burn rate exceeds ``burn_threshold`` over **both** the
short and the long window — fast spikes page quickly, slow leaks page
eventually, and a single noisy window alone never does.  The engine is
deterministic (pure function of the window stream), so same-seed soaks
produce identical breach lists.

``repro soak --slo slo.json`` loads rules from JSON
(:func:`load_slo_spec`) and exits non-zero on any breach;
:func:`default_slos` is the always-evaluated baseline set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Sequence

from ..errors import ObservabilityError

if TYPE_CHECKING:  # avoid obs -> analysis -> core -> obs import cycle
    from ..analysis.trends import ServiceTrendPoint

KIND_AVAILABILITY = "availability"
KIND_LATENCY_P99 = "latency_p99"
KIND_WRONG_PAGE = "wrong_page"
SLO_KINDS = (KIND_AVAILABILITY, KIND_LATENCY_P99, KIND_WRONG_PAGE)


@dataclass(frozen=True)
class SloRule:
    """One declarative objective.

    Attributes:
        name: rule name (shown in breach reports).
        kind: one of :data:`SLO_KINDS`.
        objective: target good fraction in [0, 1); the error budget is
            ``1 - objective``.  Ignored for ``wrong_page`` (exact).
        target_us: latency bound, required for ``latency_p99``.
        short_windows / long_windows: burn-rate window lengths, in
            telemetry windows (short catches spikes, long catches
            leaks; both must burn to breach).
        burn_threshold: budget multiple that pages (1.0 = exactly
            exhausting the budget at steady state).
    """

    name: str
    kind: str
    objective: float = 0.99
    target_us: Optional[float] = None
    short_windows: int = 1
    long_windows: int = 6
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ObservabilityError(f"unknown SLO kind {self.kind!r}")
        if not self.name:
            raise ObservabilityError("SLO rule needs a name")
        if not 0.0 <= self.objective < 1.0:
            raise ObservabilityError(
                f"objective must be in [0, 1), got {self.objective}")
        if self.kind == KIND_LATENCY_P99 and (
                self.target_us is None or self.target_us <= 0.0):
            raise ObservabilityError(
                f"latency_p99 rule {self.name!r} needs a positive "
                f"target_us")
        if self.short_windows < 1 or self.long_windows < self.short_windows:
            raise ObservabilityError(
                f"need 1 <= short_windows <= long_windows, got "
                f"{self.short_windows}/{self.long_windows}")
        if self.burn_threshold <= 0.0:
            raise ObservabilityError(
                f"burn_threshold must be positive, got "
                f"{self.burn_threshold}")

    @property
    def budget(self) -> float:
        """The error budget (0 for the exact wrong-page rule)."""
        return 0.0 if self.kind == KIND_WRONG_PAGE else 1.0 - self.objective

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (the ``slo.json`` schema)."""
        out: Dict[str, Any] = {
            "name": self.name, "kind": self.kind,
            "objective": self.objective,
            "short_windows": self.short_windows,
            "long_windows": self.long_windows,
            "burn_threshold": self.burn_threshold,
        }
        if self.target_us is not None:
            out["target_us"] = self.target_us
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloRule":
        """Parse one rule; unknown fields are rejected."""
        known = {"name", "kind", "objective", "target_us",
                 "short_windows", "long_windows", "burn_threshold"}
        unknown = set(data) - known
        if unknown:
            raise ObservabilityError(
                f"unknown SLO field(s): {sorted(unknown)}")
        if "name" not in data or "kind" not in data:
            raise ObservabilityError("an SLO rule needs 'name' and 'kind'")
        kwargs = dict(data)
        return cls(**kwargs)


def default_slos() -> List[SloRule]:
    """The baseline rule set every soak evaluates.

    Targets sit comfortably outside normal faulted operation (bounded
    retry recovers most faults) so the fault-free control run — and a
    recovering faulted run — never false-positives, while a real
    outage (dead shard, runaway tail) burns through quickly.
    """
    return [
        SloRule(name="goodput-availability", kind=KIND_AVAILABILITY,
                objective=0.95, short_windows=1, long_windows=6,
                burn_threshold=2.0),
        SloRule(name="tail-latency", kind=KIND_LATENCY_P99,
                objective=0.90, target_us=1000.0, short_windows=1,
                long_windows=6, burn_threshold=2.0),
        SloRule(name="no-wrong-page", kind=KIND_WRONG_PAGE),
    ]


def load_slo_spec(spec: Any) -> List[SloRule]:
    """Rules from a parsed ``slo.json``: either a list of rule objects
    or ``{"slos": [...]}``."""
    if isinstance(spec, dict):
        spec = spec.get("slos")
    if not isinstance(spec, list) or not spec:
        raise ObservabilityError(
            "SLO spec must be a non-empty list of rules "
            "(or {'slos': [...]})")
    return [SloRule.from_dict(rule) for rule in spec]


@dataclass(frozen=True)
class SloBreach:
    """One burn-rate breach at a window boundary."""

    rule: str
    kind: str
    t_s: float
    burn_short: float
    burn_long: float
    detail: str
    fatal: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering."""
        return {
            "rule": self.rule, "kind": self.kind,
            "t_s": round(self.t_s, 3),
            "burn_short": round(self.burn_short, 4),
            "burn_long": round(self.burn_long, 4),
            "detail": self.detail, "fatal": self.fatal,
        }


class SloEngine:
    """Evaluates a rule set against the telemetry window stream.

    One :meth:`observe` call per closed trend window; breaches
    accumulate on :attr:`breaches` and are also returned per call so
    the service can trigger flight-recorder postmortems immediately.
    """

    def __init__(self, rules: Optional[Sequence[SloRule]] = None) -> None:
        self.rules: List[SloRule] = (list(rules) if rules is not None
                                     else default_slos())
        self._errors: Dict[str, Deque[float]] = {
            rule.name: deque(maxlen=rule.long_windows)
            for rule in self.rules}
        self.evaluations = 0
        self.breaches: List[SloBreach] = []
        self._wrong_seen: Dict[str, int] = {
            rule.name: 0 for rule in self.rules
            if rule.kind == KIND_WRONG_PAGE}

    def _window_error(self, rule: SloRule,
                      point: "ServiceTrendPoint") -> float:
        if rule.kind == KIND_AVAILABILITY:
            total = point.completed + point.failed
            return point.failed / total if total else 0.0
        if rule.kind == KIND_LATENCY_P99:
            if point.completed + point.failed == 0:
                return 0.0
            assert rule.target_us is not None
            return 1.0 if point.p99_us > rule.target_us else 0.0
        return 0.0  # wrong_page is handled out of band (exact)

    @staticmethod
    def _burn(errors: Sequence[float], windows: int,
              budget: float) -> float:
        recent = list(errors)[-windows:]
        if not recent or budget <= 0.0:
            return 0.0
        return (sum(recent) / len(recent)) / budget

    def _check_wrong(self, wrong_transfers: int,
                     t_s: float) -> List[SloBreach]:
        fired: List[SloBreach] = []
        for rule in self.rules:
            if rule.kind != KIND_WRONG_PAGE:
                continue
            seen = self._wrong_seen[rule.name]
            if wrong_transfers > seen:
                self._wrong_seen[rule.name] = wrong_transfers
                fired.append(SloBreach(
                    rule=rule.name, kind=rule.kind, t_s=t_s,
                    burn_short=float("inf"), burn_long=float("inf"),
                    detail=f"{wrong_transfers - seen} wrong-page "
                           f"transfer(s) (budget is zero)", fatal=True))
        return fired

    def observe_wrong_transfers(self, wrong_transfers: int,
                                t_s: float) -> List[SloBreach]:
        """Out-of-band wrong-page check (e.g. after the shutdown sweep
        when no further window will close)."""
        fired = self._check_wrong(wrong_transfers, t_s)
        self.breaches.extend(fired)
        return fired

    def observe(self, point: "ServiceTrendPoint",
                wrong_transfers: int = 0) -> List[SloBreach]:
        """Fold one closed window in; returns breaches fired *now*."""
        self.evaluations += 1
        fired: List[SloBreach] = []
        fired.extend(self._check_wrong(wrong_transfers, point.t_s))
        for rule in self.rules:
            if rule.kind == KIND_WRONG_PAGE:
                continue
            errors = self._errors[rule.name]
            errors.append(self._window_error(rule, point))
            burn_short = self._burn(errors, rule.short_windows,
                                    rule.budget)
            burn_long = self._burn(errors, rule.long_windows, rule.budget)
            if (burn_short >= rule.burn_threshold
                    and burn_long >= rule.burn_threshold):
                fired.append(SloBreach(
                    rule=rule.name, kind=rule.kind, t_s=point.t_s,
                    burn_short=burn_short, burn_long=burn_long,
                    detail=f"burn rate {burn_short:.2f}x/"
                           f"{burn_long:.2f}x over threshold "
                           f"{rule.burn_threshold:g}x"))
        self.breaches.extend(fired)
        return fired

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready engine state (the soak report's ``slo`` block)."""
        breaches = [b.to_dict() for b in self.breaches]
        for breach in breaches:  # inf is not JSON; the budget is zero
            for key in ("burn_short", "burn_long"):
                if breach[key] == float("inf"):
                    breach[key] = None
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "evaluations": self.evaluations,
            "breaches": breaches,
            "breached": bool(self.breaches),
        }
