"""Canned traced workloads for the ``repro trace`` / ``repro metrics`` CLI.

The flagship run is :func:`traced_adversary_run`: the Fig. 8 situation —
one victim issuing repeated-passing DMAs while two adversaries issue
interfering shadow stores and loads between attempts — executed on a
*real* workstation with span tracing and metrics sampling on.  The run
deliberately exercises every outcome the span model distinguishes:

* ``completed`` — ordinary victim DMAs that move their bytes;
* ``aborted``  — one oversized initiation the engine rejects;
* ``retried``  — one attempt whose first shadow store is dropped by the
  fault injector, recovered by the user-level retry path;
* ``fell-back`` — a phase where every status load is dropped, driving
  the hardened path through retry exhaustion into the kernel syscall.

Every DMA attempt therefore becomes one causal span tree — initiate →
shadow stores/loads (with recognizer state transitions) → transfer →
completion or rejection — tagged with process, protocol, and outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.api import DmaChannel, DmaResult, InitiationResult, ReliableResult
from ..core.machine import MachineConfig, Workstation
from ..faults.injector import Injector
from ..faults.plan import DROP, FaultPlan, FaultRule
from ..faults.retry import RetryPolicy
from ..hw.isa import Halt, Load, Store, assemble
from ..os.process import Process, shadow_vaddr
from ..units import Time, us
from .spans import Span


@dataclass
class TracedRun:
    """Everything a traced adversary run produced.

    Attributes:
        ws: the workstation (its ``spans``, ``metrics``, and ``trace``
            hold the observability data).
        completed: ordinary victim DMA results.
        aborted: the rejected oversized initiation.
        retried: the hardened result that recovered via retry.
        fell_back: the hardened result that degraded to the kernel path.
        victim / adversaries: the processes involved.
    """

    ws: Workstation
    completed: List[DmaResult] = field(default_factory=list)
    aborted: Optional[InitiationResult] = None
    retried: Optional[ReliableResult] = None
    fell_back: Optional[ReliableResult] = None
    victim: Optional[Process] = None
    adversaries: List[Process] = field(default_factory=list)

    def spans(self) -> List[Span]:
        """All spans (closed plus open), by span id."""
        return self.ws.spans.all_spans()


def _interference_program(proc: Process, vdst: int, vsrc: int,
                          index: int):
    """An adversary's shadow store + load — enough to perturb the FSM."""
    return assemble([
        Store(_shadow(vdst), 64 + index),
        Load("t0", _shadow(vsrc)),
        Halt(),
    ], name=f"adversary-{proc.name}-{index}")


def _shadow(vaddr: int):
    from ..hw.isa import Addr

    return Addr(None, shadow_vaddr(vaddr))


def traced_adversary_run(n_dmas: int = 6, method: str = "repeated5",
                         chunk: int = 256, seed: int = 11,
                         n_adversaries: int = 2,
                         metrics_interval: Time = us(2)) -> TracedRun:
    """Run the Fig. 8 two-adversary situation with full observability.

    Args:
        n_dmas: ordinary (completed) victim DMAs.
        method: victim's initiation method.
        chunk: bytes per transfer.
        seed: machine seed (keys, retry jitter).
        n_adversaries: interfering processes.
        metrics_interval: simulated sampling cadence.
    """
    ws = Workstation(MachineConfig(method=method, seed=seed,
                                   spans_enabled=True, trace_enabled=True,
                                   metrics_interval=metrics_interval))
    victim = ws.kernel.spawn("victim")
    ws.kernel.enable_user_dma(victim)
    src = ws.kernel.alloc_buffer(victim, (n_dmas + 2) * chunk)
    dst = ws.kernel.alloc_buffer(victim, (n_dmas + 2) * chunk)
    ws.ram.write(src.paddr, bytes((i * 31) % 256
                                  for i in range((n_dmas + 2) * chunk)))
    chan = DmaChannel(ws, victim)

    adversaries: List[Process] = []
    adv_buffers = []
    for index in range(n_adversaries):
        adv = ws.kernel.spawn(f"adversary{index}")
        ws.kernel.enable_user_dma(adv)
        adv_src = ws.kernel.alloc_buffer(adv, chunk)
        adv_dst = ws.kernel.alloc_buffer(adv, chunk)
        adversaries.append(adv)
        adv_buffers.append((adv, adv_src, adv_dst))

    run = TracedRun(ws=ws, victim=victim, adversaries=adversaries)

    # Phase 1: ordinary DMAs with adversary interference between them.
    for i in range(n_dmas):
        for adv, adv_src, adv_dst in adv_buffers:
            ws.run_program(adv, _interference_program(
                adv, adv_dst.vaddr, adv_src.vaddr, i))
        run.completed.append(
            chan.dma(src.vaddr + i * chunk, dst.vaddr + i * chunk, chunk))

    # Phase 2: one oversized initiation the engine must reject.
    run.aborted = chan.initiate(src.vaddr, dst.vaddr,
                                ws.config.ram_size * 4)

    # Phase 3: drop exactly the first shadow store of the next attempt;
    # the hardened path recovers with one user-level retry.
    plan = FaultPlan(rules=[FaultRule(kind=DROP, target="store",
                                      nth=1, count=1)], seed=seed)
    injector = Injector(plan, ws.sim).attach(ws)
    run.retried = chan.initiate_reliable(
        src.vaddr + n_dmas * chunk, dst.vaddr + n_dmas * chunk, chunk)
    injector.detach()

    # Phase 4: drop every status load; user-level attempts exhaust and
    # the operation degrades to the (fault-immune) kernel path.
    plan = FaultPlan(rules=[FaultRule(kind=DROP, target="load",
                                      probability=1.0)], seed=seed)
    injector = Injector(plan, ws.sim).attach(ws)
    run.fell_back = chan.initiate_reliable(
        src.vaddr + (n_dmas + 1) * chunk, dst.vaddr + (n_dmas + 1) * chunk,
        chunk, policy=RetryPolicy(max_attempts=2))
    injector.detach()

    ws.drain()
    ws.metrics.poll()
    return run
