"""Exporters: Chrome trace-event JSON, JSONL dumps, percentile tables.

Three ways out of the observability layer:

* :func:`chrome_trace` — the Chrome trace-event format (JSON object
  format with a ``traceEvents`` array), loadable in Perfetto and
  ``chrome://tracing``.  Spans become ``X`` (complete) events, trace-log
  records become ``i`` (instant) events, metric samples become ``C``
  (counter) events, and every distinct track gets its own named thread
  via ``M`` (metadata) events — one lane per CPU / process / engine.
* :func:`spans_jsonl` — one JSON object per span, machine-greppable.
* :func:`span_summary_table` — a terminal table of span durations by
  (protocol, outcome) with p50/p95/p99 percentiles.

:func:`validate_chrome_trace` checks the structural rules Perfetto's
JSON importer enforces, so CI can gate exports without a browser.
"""

from __future__ import annotations

import json
from typing import (TYPE_CHECKING, Any, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

from ..errors import ObservabilityError
from ..sim.stats import LatencyStat
from ..sim.trace import TraceEvent
from ..units import to_us
from .metrics import MetricsSampler
from .spans import Span

if TYPE_CHECKING:  # repro.analysis imports repro.core, which imports us
    from ..analysis.report import Table

#: Event phases the validator accepts (the subset we emit, plus begin/
#: end pairs so hand-written traces validate too).
_KNOWN_PHASES = frozenset({"X", "B", "E", "i", "I", "C", "M"})


def _track_ids(tracks: Iterable[str]) -> Dict[str, int]:
    """Stable track name -> tid mapping (sorted, 1-based)."""
    return {name: tid for tid, name in enumerate(sorted(set(tracks)), 1)}


def chrome_trace(spans: Sequence[Span],
                 events: Optional[Iterable[TraceEvent]] = None,
                 metrics: Optional[MetricsSampler] = None,
                 process_name: str = "repro",
                 pid: int = 1) -> Dict[str, Any]:
    """Build a Chrome trace-event JSON object from observability data.

    Args:
        spans: finished (and possibly still-open) spans; open spans are
            exported with zero duration and ``"open": true`` in args.
        events: optional :class:`TraceEvent` records -> instant events,
            one track per event source, sorted by (when, seq).
        metrics: optional sampler whose series become counter events.
        process_name: name of the single exported process.
        pid: process id used for every event.
    """
    event_list = sorted(events, key=lambda e: (e.when, e.seq)) \
        if events is not None else []
    tracks = [span.track for span in spans]
    tracks += [f"trace:{event.source}" for event in event_list]
    tids = _track_ids(tracks)

    out: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": process_name},
    }]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        out.append({"ph": "M", "name": "thread_name", "pid": pid,
                    "tid": tid, "args": {"name": track}})

    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if not span.closed:
            args["open"] = True
        out.append({
            "ph": "X",
            "name": span.name,
            "cat": str(args.get("cat", "span")),
            "ts": to_us(span.start),
            "dur": to_us(span.duration),
            "pid": pid,
            "tid": tids[span.track],
            "args": args,
        })

    for event in event_list:
        out.append({
            "ph": "i",
            "s": "t",
            "name": f"{event.source}/{event.kind}",
            "ts": to_us(event.when),
            "pid": pid,
            "tid": tids[f"trace:{event.source}"],
            "args": {"seq": event.seq, **event.detail},
        })

    if metrics is not None:
        for when, sample in metrics.samples:
            for name, value in sorted(sample.items()):
                out.append({
                    "ph": "C",
                    "name": name,
                    "ts": to_us(when),
                    "pid": pid,
                    "args": {"value": value},
                })

    return {"traceEvents": out, "displayTimeUnit": "ns"}


def validate_chrome_trace(trace: Any) -> List[str]:
    """Structural validation of a Chrome trace-event object.

    Returns:
        A list of problems (empty means the trace is one Perfetto's
        JSON importer accepts): top-level shape, required per-phase
        fields, numeric non-negative timestamps/durations, and overall
        JSON serializability.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing or empty name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid must be an int")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts must be a non-negative number")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative number")
        if phase in ("X", "B", "E", "i", "I"):
            if not isinstance(event.get("tid"), int):
                problems.append(f"{where}: tid must be an int")
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serializable: {exc}")
    return problems


def ensure_valid_chrome_trace(trace: Any) -> None:
    """Raise :class:`ObservabilityError` if the trace fails validation."""
    problems = validate_chrome_trace(trace)
    if problems:
        shown = "; ".join(problems[:5])
        raise ObservabilityError(
            f"invalid Chrome trace ({len(problems)} problem(s)): {shown}")


def write_chrome_trace(path: Any, spans: Sequence[Span],
                       events: Optional[Iterable[TraceEvent]] = None,
                       metrics: Optional[MetricsSampler] = None,
                       **kwargs: Any) -> Dict[str, Any]:
    """Build, validate, and write a Chrome trace; returns the object."""
    from .writer import write_json

    trace = chrome_trace(spans, events=events, metrics=metrics, **kwargs)
    ensure_valid_chrome_trace(trace)
    write_json(path, trace)
    return trace


def spans_jsonl(spans: Sequence[Span]) -> str:
    """One JSON object per line, one line per span, in span-id order."""
    ordered = sorted(spans, key=lambda s: s.span_id)
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True)
                     for span in ordered) + ("\n" if ordered else "")


def span_tree_roots(spans: Sequence[Span]) -> List[Span]:
    """The root spans (no parent) in start order."""
    return sorted((s for s in spans if s.parent_id is None),
                  key=lambda s: (s.start, s.span_id))


def children_of(spans: Sequence[Span], parent: Span) -> List[Span]:
    """Direct children of *parent*, in start order."""
    return sorted((s for s in spans if s.parent_id == parent.span_id),
                  key=lambda s: (s.start, s.span_id))


def _group_key(span: Span) -> Tuple[str, str]:
    protocol = str(span.attrs.get("protocol",
                                  span.attrs.get("method", span.name)))
    outcome = str(span.attrs.get("outcome", "-"))
    return protocol, outcome


def span_summary_table(spans: Sequence[Span],
                       name: Optional[str] = None,
                       percentiles: Sequence[float] = (50, 95, 99)
                       ) -> "Table":
    """Span durations by (protocol, outcome) with percentile columns.

    Args:
        spans: finished spans to summarize (open spans are skipped).
        name: only include spans with this name (None = all).
        percentiles: percentile columns to render.
    """
    from ..analysis.report import Table

    groups: Dict[Tuple[str, str], LatencyStat] = {}
    for span in spans:
        if not span.closed:
            continue
        if name is not None and span.name != name:
            continue
        key = _group_key(span)
        stat = groups.get(key)
        if stat is None:
            stat = groups[key] = LatencyStat(
                f"{key[0]}/{key[1]}", keep_samples=True)
        stat.record(span.duration)
    table = Table("Span durations by (protocol, outcome)",
                  ["protocol", "outcome", "count", "mean (us)"]
                  + [f"p{p:g} (us)" for p in percentiles])
    for (protocol, outcome), stat in sorted(groups.items()):
        table.add_row(protocol, outcome, stat.count,
                      f"{stat.mean_us:.3f}",
                      *(f"{to_us(stat.percentile(p)):.3f}"
                        for p in percentiles))
    return table
