"""Wall-clock phase profiling for the checker and benchmarks.

A :class:`PhaseProfiler` accumulates wall seconds and counts per named
phase (``snapshot``, ``restore``, ``deliver``, ``leaf`` for the
incremental checker; anything for benchmarks).  It is deliberately dumb
— a dict of floats behind a context manager — so wiring it into a hot
path costs one ``is not None`` test per operation when profiling is off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator

if TYPE_CHECKING:  # repro.analysis imports repro.core, which imports us
    from ..analysis.report import Table


class PhaseProfiler:
    """Accumulates wall time and operation counts per phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one occurrence of *name* (also increments its count)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_seconds(name, time.perf_counter() - start)

    def add_seconds(self, name: str, seconds: float, n: int = 1) -> None:
        """Accumulate *seconds* of wall time (and *n* occurrences)."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + n

    def count(self, name: str, n: int = 1) -> None:
        """Count an occurrence of *name* without timing it."""
        self.counts[name] = self.counts.get(name, 0) + n

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's accumulations into this one."""
        for name, seconds in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        for name, count in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + count

    def report(self) -> Dict[str, Any]:
        """JSON-ready per-phase {seconds, count, mean_us} mapping."""
        out: Dict[str, Any] = {}
        for name in sorted(set(self.seconds) | set(self.counts)):
            seconds = self.seconds.get(name, 0.0)
            count = self.counts.get(name, 0)
            out[name] = {
                "seconds": round(seconds, 6),
                "count": count,
                "mean_us": round(seconds / count * 1e6, 3) if count else 0.0,
            }
        return out

    def table(self, title: str = "Phase profile") -> "Table":
        """Terminal rendering of :meth:`report`."""
        from ..analysis.report import Table

        table = Table(title, ["phase", "count", "seconds", "mean (us)"])
        for name, entry in self.report().items():
            table.add_row(name, entry["count"], f"{entry['seconds']:.4f}",
                          f"{entry['mean_us']:.2f}")
        return table
