"""Trace context: the request identity that crosses process boundaries.

A :class:`TraceContext` names one end-to-end request — ``trace_id`` —
and remembers where in the causal tree the carrier currently sits
(``parent_span_id``, a span id in the *originating* tracer).  The
front end mints one per admitted request, stamps it on the
:class:`~repro.service.requests.Request`, and every tracer the request
subsequently touches (the shard workstation's, the fault injector's)
activates it so locally-begun spans inherit the trace identity.

Because each :class:`~repro.obs.spans.SpanTracer` numbers spans
independently, a span is globally named by ``(trace_id, process,
span_id)``; the cross-process parent link is recorded on the *child*
root span as ``remote_parent`` (the frontend span id) rather than as a
local ``parent_id``.  :func:`causal_tree` reassembles the pieces and
checks connectedness — the property the trace-propagation tests and
the exemplar-resolution acceptance check both assert.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ObservabilityError
from .spans import Span


@dataclass(frozen=True)
class TraceContext:
    """The identity one request carries across process boundaries.

    Attributes:
        trace_id: globally unique id of the end-to-end request
            (deterministic: derived from the service seed + req id).
        parent_span_id: span id, *in the originating tracer*, that a
            remote child tree should hang off (None for a fresh root).
        origin: process name of the tracer owning ``parent_span_id``
            (e.g. ``"frontend"``); empty for a fresh root.
        tenant: the issuing tenant (propagated for attribution).
        request_id: the service-assigned request id.
    """

    trace_id: str
    parent_span_id: Optional[int] = None
    origin: str = ""
    tenant: str = ""
    request_id: int = 0

    def child(self, parent_span_id: int, origin: str) -> "TraceContext":
        """The context a downstream hop should carry: same trace,
        re-parented under span *parent_span_id* of process *origin*."""
        return replace(self, parent_span_id=parent_span_id,
                       origin=origin)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (the wire format)."""
        out: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.parent_span_id is not None:
            out["parent_span_id"] = self.parent_span_id
        if self.origin:
            out["origin"] = self.origin
        if self.tenant:
            out["tenant"] = self.tenant
        if self.request_id:
            out["request_id"] = self.request_id
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceContext":
        """Parse the wire format; unknown fields are rejected."""
        known = {"trace_id", "parent_span_id", "origin", "tenant",
                 "request_id"}
        unknown = set(data) - known
        if unknown:
            raise ObservabilityError(
                f"unknown trace-context field(s): {sorted(unknown)}")
        trace_id = data.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise ObservabilityError(
                "trace context needs a non-empty 'trace_id'")
        return cls(trace_id=trace_id,
                   parent_span_id=data.get("parent_span_id"),
                   origin=str(data.get("origin", "")),
                   tenant=str(data.get("tenant", "")),
                   request_id=int(data.get("request_id", 0)))


def make_trace_id(seed: int, request_id: int) -> str:
    """The deterministic trace id of one request.

    A pure function of (service seed, request id) so same-seed soaks
    produce byte-identical traces and postmortem bundles.
    """
    return f"{seed:x}-{request_id:08d}"


# ----------------------------------------------------------------------
# reassembly: spans from many tracers -> one causal tree per trace_id
# ----------------------------------------------------------------------

def spans_for_trace(spans: Sequence[Span], trace_id: str) -> List[Span]:
    """Every span stamped with *trace_id*, in span-id order."""
    return sorted((s for s in spans
                   if s.attrs.get("trace_id") == trace_id),
                  key=lambda s: (str(s.attrs.get("process", "")),
                                 s.span_id))


def causal_tree(spans: Sequence[Span], trace_id: str) -> Dict[str, Any]:
    """Reassemble (and verify) the causal tree of one trace.

    Spans may come from several tracers; each must carry a ``process``
    attribute (stamped by :meth:`SpanTracer.activate`) so same-numbered
    span ids from different tracers do not collide.  Connectedness
    rules:

    * exactly one global root (no ``parent_id``, no ``remote_parent``);
    * every other span reaches the root via local ``parent_id`` links
      or a ``remote_parent`` hop into another process of the same trace.

    Returns:
        ``{"trace_id", "root", "spans", "processes"}`` on success.

    Raises:
        ObservabilityError: if the trace is empty or disconnected —
            orphan spans are named in the message.
    """
    members = spans_for_trace(spans, trace_id)
    if not members:
        raise ObservabilityError(f"no spans carry trace_id {trace_id!r}")
    by_key: Dict[Any, Span] = {}
    for span in members:
        by_key[(span.attrs.get("process"), span.span_id)] = span
    known_ids = {key for key in by_key}
    roots: List[Span] = []
    orphans: List[str] = []
    for span in members:
        process = span.attrs.get("process")
        if span.parent_id is not None:
            if (process, span.parent_id) not in known_ids:
                orphans.append(f"{process}#{span.span_id} {span.name!r} "
                               f"(local parent #{span.parent_id} missing)")
            continue
        remote = span.attrs.get("remote_parent")
        if remote is None:
            roots.append(span)
            continue
        remote_process = span.attrs.get("remote_process")
        if (remote_process, remote) not in known_ids:
            orphans.append(f"{process}#{span.span_id} {span.name!r} "
                           f"(remote parent {remote_process}#{remote} "
                           f"missing)")
    if len(roots) != 1 or orphans:
        detail = "; ".join(orphans[:5])
        raise ObservabilityError(
            f"trace {trace_id!r} is not one connected tree: "
            f"{len(roots)} root(s), {len(orphans)} orphan(s)"
            + (f" [{detail}]" if detail else ""))
    return {
        "trace_id": trace_id,
        "root": roots[0],
        "spans": members,
        "processes": sorted({str(s.attrs.get("process"))
                             for s in members}),
    }
