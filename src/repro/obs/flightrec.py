"""The flight recorder: always-on rings + seed-reproducible postmortems.

Every :class:`~repro.service.shard.ServiceShard` carries one
:class:`FlightRecorder`.  It is *always on* and always bounded: a ring
of recent completion summaries lives here, while the shard's own
bounded collectors — the span tracer's finished list, the trace log's
deque, the metrics sampler — serve as the span/event/sample rings (the
recorder reads their tails at dump time rather than copying per
request, so steady-state cost is one ring append per completion).

When something goes wrong — a ``wrong-data`` completion, a wrong-page
sweep hit, an UNSAFE soak verdict, an SLO breach — :meth:`bundle`
freezes the evidence into a **postmortem bundle**: the offending
request ids, the last-N spans as a schema-valid Chrome trace, the
recent metrics window, and the active fault rules.  Everything in a
bundle is simulated-time data, so the same seed reproduces the same
bundle byte for byte — ``repro postmortem`` exploits that to re-derive
the evidence for any reported incident.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from .export import chrome_trace, ensure_valid_chrome_trace

#: Bundle trigger reasons (the contract with the service layer).
REASON_WRONG_DATA = "wrong-data"
REASON_WRONG_PAGE = "wrong-page"
REASON_UNSAFE_VERDICT = "unsafe-verdict"
REASON_SLO_BREACH = "slo-breach"


class FlightRecorder:
    """Bounded incident evidence for one shard (or process).

    Args:
        process: name stamped on bundles (e.g. ``"shard2"``).
        capacity: completion summaries retained.
        span_window: spans exported per bundle (the last N finished).
        event_window: trace-log records exported per bundle.
        sample_window: metric samples exported per bundle.
        max_bundles: bundles retained (oldest dropped) — incidents can
            cascade, memory must not.
    """

    def __init__(self, process: str, capacity: int = 256,
                 span_window: int = 400, event_window: int = 400,
                 sample_window: int = 64, max_bundles: int = 8) -> None:
        self.process = process
        self.span_window = span_window
        self.event_window = event_window
        self.sample_window = sample_window
        self.max_bundles = max_bundles
        self.completions: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.bundles: List[Dict[str, Any]] = []
        self.dropped_bundles = 0

    # ------------------------------------------------------------------
    # steady-state ingest
    # ------------------------------------------------------------------

    def note(self, completion: Any) -> None:
        """Append one completion summary to the ring (cheap, always on)."""
        summary = {
            "req_id": completion.request.req_id,
            "tenant": completion.request.tenant,
            "kind": completion.request.kind,
            "outcome": completion.outcome,
            "ok": completion.ok,
            "attempts": completion.attempts,
            "latency_us": round(completion.latency_us, 3),
        }
        trace = getattr(completion.request, "trace", None)
        if trace is not None:
            summary["trace_id"] = trace.trace_id
        self.completions.append(summary)

    # ------------------------------------------------------------------
    # incident dump
    # ------------------------------------------------------------------

    def bundle(self, reason: str, *, ws: Any, seed: int, tick: int,
               offending: Optional[List[Dict[str, Any]]] = None,
               fault_plan: Optional[Dict[str, Any]] = None,
               counters: Optional[Dict[str, int]] = None,
               detail: str = "") -> Dict[str, Any]:
        """Freeze a postmortem bundle from the current rings.

        Args:
            reason: one of the ``REASON_*`` trigger constants.
            ws: the shard's workstation (span/trace/metrics rings).
            seed: the *service* seed — re-running the same config with
                it reproduces this bundle exactly.
            tick: service tick at dump time.
            offending: request summaries that triggered the dump.
            fault_plan: the active fault rules, if any.
            counters: shard counter snapshot at dump time.
            detail: free-form one-line context (e.g. the SLO breach).
        """
        spans = ws.spans.finished()[-self.span_window:]
        events = list(ws.trace.events())[-self.event_window:] \
            if ws.trace.enabled else []
        trace = chrome_trace(spans, events=events,
                             process_name=self.process, pid=1)
        ensure_valid_chrome_trace(trace)
        samples = [{"when_ps": when, "values": dict(sample)}
                   for when, sample in
                   ws.metrics.samples[-self.sample_window:]] \
            if ws.metrics.enabled else []
        bundle: Dict[str, Any] = {
            "kind": "postmortem",
            "reason": reason,
            "detail": detail,
            "process": self.process,
            "seed": seed,
            "tick": tick,
            "offending": list(offending or []),
            "recent_completions": list(self.completions),
            "trace": trace,
            "metrics_window": samples,
            "fault_plan": fault_plan,
            "counters": dict(counters or {}),
        }
        self.bundles.append(bundle)
        if len(self.bundles) > self.max_bundles:
            del self.bundles[0]
            self.dropped_bundles += 1
        return bundle

    def __len__(self) -> int:
        return len(self.completions)
