"""Observability: causal spans, time-series metrics, exporters, profiling.

The layer is strictly additive — every producer defaults to a disabled
:class:`~repro.obs.spans.SpanTracer` / :class:`~repro.obs.metrics.MetricsSampler`
so the hot paths pay a single branch when tracing is off.  See
``docs/observability.md`` for the span model and export formats.
"""

from .export import (chrome_trace, ensure_valid_chrome_trace, span_summary_table,
                     span_tree_roots, spans_jsonl, validate_chrome_trace,
                     write_chrome_trace)
from .metrics import MetricsSampler
from .profile import PhaseProfiler
from .spans import NULL_SPAN, Span, SpanTracer, disabled_tracer

__all__ = [
    "Span",
    "SpanTracer",
    "NULL_SPAN",
    "disabled_tracer",
    "MetricsSampler",
    "PhaseProfiler",
    "chrome_trace",
    "validate_chrome_trace",
    "ensure_valid_chrome_trace",
    "write_chrome_trace",
    "spans_jsonl",
    "span_tree_roots",
    "span_summary_table",
]
