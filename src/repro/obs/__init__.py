"""Observability: causal spans, time-series metrics, exporters, profiling.

The layer is strictly additive — every producer defaults to a disabled
:class:`~repro.obs.spans.SpanTracer` / :class:`~repro.obs.metrics.MetricsSampler`
so the hot paths pay a single branch when tracing is off.  On top of
the per-machine collectors sit the fleet-level pieces the always-on
service uses: request-scoped trace contexts
(:mod:`repro.obs.context`), log-bucketed latency histograms with
exemplars (:mod:`repro.obs.histogram`), per-shard flight recorders
with postmortem bundles (:mod:`repro.obs.flightrec`), and the
declarative SLO burn-rate engine (:mod:`repro.obs.slo`).  See
``docs/observability.md`` for the span model and export formats.
"""

from .context import TraceContext, causal_tree, make_trace_id, spans_for_trace
from .export import (chrome_trace, ensure_valid_chrome_trace, span_summary_table,
                     span_tree_roots, spans_jsonl, validate_chrome_trace,
                     write_chrome_trace)
from .flightrec import FlightRecorder
from .histogram import LatencyHistogram
from .metrics import MetricsSampler
from .profile import PhaseProfiler
from .slo import SloBreach, SloEngine, SloRule, default_slos, load_slo_spec
from .spans import NULL_SPAN, Span, SpanTracer, disabled_tracer
from .writer import write_json, write_text

__all__ = [
    "Span",
    "SpanTracer",
    "NULL_SPAN",
    "disabled_tracer",
    "TraceContext",
    "make_trace_id",
    "causal_tree",
    "spans_for_trace",
    "LatencyHistogram",
    "FlightRecorder",
    "SloRule",
    "SloEngine",
    "SloBreach",
    "default_slos",
    "load_slo_spec",
    "MetricsSampler",
    "PhaseProfiler",
    "chrome_trace",
    "validate_chrome_trace",
    "ensure_valid_chrome_trace",
    "write_chrome_trace",
    "spans_jsonl",
    "span_tree_roots",
    "span_summary_table",
    "write_json",
    "write_text",
]
