"""Time-series sampling of counters and latency stats.

A :class:`MetricsSampler` snapshots a set of metric *sources* (usually
:meth:`repro.sim.stats.StatRegistry.snapshot` plus a few engine gauges)
on a configurable simulated-time cadence, turning end-of-run counters
into plottable series — goodput versus time under fault injection,
retries per interval, bytes moved, and so on.

Sampling is **pull-based**: instrumented call sites invoke
:meth:`MetricsSampler.poll`, which records a sample only when the clock
has crossed the next cadence point.  This keeps the simulator's event
queue free of self-rescheduling sampler events (which would make
"run until the queue drains" spin forever) and costs one comparison per
poll when sampling is off cadence — or a single branch when disabled.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ObservabilityError
from ..units import Time, to_us

#: A metric source: returns a flat name -> value mapping when sampled.
SourceFn = Callable[[], Dict[str, float]]


class MetricsSampler:
    """Snapshots metric sources into time series on a simulated cadence.

    Args:
        clock: zero-argument callable returning simulated time (ps).
        sources: initial metric sources (more via :meth:`add_source`).
        interval: cadence in simulated ps; None disables the sampler.
    """

    def __init__(self, clock: Callable[[], Time],
                 sources: Optional[List[SourceFn]] = None,
                 interval: Optional[Time] = None) -> None:
        if interval is not None and interval <= 0:
            raise ObservabilityError(
                f"metrics interval must be positive, got {interval}")
        self._clock = clock
        self._sources: List[SourceFn] = list(sources or [])
        self.interval = interval
        self.enabled = interval is not None
        self._next_due: Time = 0
        #: Recorded samples as (when_ps, merged name -> value) pairs.
        self.samples: List[Tuple[Time, Dict[str, float]]] = []

    def add_source(self, source: SourceFn) -> None:
        """Register another metric source."""
        self._sources.append(source)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def poll(self) -> bool:
        """Record a sample if the next cadence point has passed.

        Returns:
            True if a sample was recorded.
        """
        if not self.enabled:
            return False
        now = self._clock()
        if now < self._next_due:
            return False
        self.sample_now()
        assert self.interval is not None
        # Catch up past skipped cadence points (simulated time can jump
        # arbitrarily far between polls); one sample covers the gap.
        self._next_due = now + self.interval
        return True

    def sample_now(self) -> Dict[str, float]:
        """Record one sample unconditionally and return it."""
        merged: Dict[str, float] = {}
        for source in self._sources:
            merged.update(source())
        self.samples.append((self._clock(), merged))
        return merged

    # ------------------------------------------------------------------
    # reading the series
    # ------------------------------------------------------------------

    def names(self) -> List[str]:
        """Every metric name seen in any sample, sorted."""
        seen = set()
        for _, sample in self.samples:
            seen.update(sample)
        return sorted(seen)

    def series(self, name: str) -> List[Tuple[Time, float]]:
        """The (when_ps, value) series of one metric (missing -> skipped)."""
        return [(when, sample[name]) for when, sample in self.samples
                if name in sample]

    def deltas(self, name: str) -> List[Tuple[Time, float]]:
        """Per-interval increments of a cumulative counter series."""
        series = self.series(name)
        out: List[Tuple[Time, float]] = []
        previous = 0.0
        for when, value in series:
            out.append((when, value - previous))
            previous = value
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering of every series."""
        return {
            "interval_us": (to_us(self.interval)
                            if self.interval is not None else None),
            "n_samples": len(self.samples),
            "series": {
                name: [[to_us(when), value]
                       for when, value in self.series(name)]
                for name in self.names()
            },
        }

    def __len__(self) -> int:
        return len(self.samples)

    def clear(self) -> None:
        """Drop all samples and restart the cadence."""
        self.samples.clear()
        self._next_due = 0
