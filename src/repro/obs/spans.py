"""Hierarchical causal spans over simulated time.

A :class:`Span` is an interval of *simulated* time with a name, a track
(the CPU / process / engine lane it renders on), a parent link, and a
free-form attribute dict.  A :class:`SpanTracer` hands them out and
keeps the finished list; the exporters in :mod:`repro.obs.export` turn
that list into Chrome trace-event JSON (Perfetto / ``chrome://tracing``),
JSONL dumps, or a terminal percentile table.

Two usage styles coexist, mirroring the simulator's two styles of
progress:

* **Synchronous code** (a DMA initiation running on the CPU) uses the
  implicit *current-span stack*: :meth:`SpanTracer.begin` pushes, the
  matching :meth:`SpanTracer.end` pops, and nested begins parent
  automatically.  Unbalanced pairs raise :class:`ObservabilityError`.
* **Background activity** (a DMA transfer completing later) begins a
  span with ``stack=False``; it inherits the current parent but never
  joins the stack, so it can end at any later simulated time without
  breaking the synchronous nesting.

Cost when disabled: :meth:`begin` is one attribute test plus a constant
return of :data:`NULL_SPAN`; hot call sites additionally guard with
``if tracer.enabled:`` so tracing compiles down to a single branch.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import ObservabilityError
from ..units import Time


class Span:
    """One causal interval of simulated time.

    Attributes:
        span_id: unique id within the owning tracer (1-based).
        parent_id: id of the enclosing span, or None for a root.
        name: what this span covers (e.g. ``"dma.initiate"``).
        track: rendering lane (e.g. ``"proc1"``, ``"engine"``).
        start: begin timestamp in simulated ps.
        end: end timestamp, or None while still open.
        attrs: free-form attributes (method, pid, outcome, ...).
    """

    __slots__ = ("span_id", "parent_id", "name", "track", "start", "end",
                 "attrs")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 track: str, start: Time,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.track = track
        self.start = start
        self.end: Optional[Time] = None
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}

    @property
    def closed(self) -> bool:
        """Whether the span has ended."""
        return self.end is not None

    @property
    def duration(self) -> Time:
        """Simulated duration (0 while the span is still open)."""
        return 0 if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (used by the JSONL exporter)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "track": self.track,
            "start_ps": self.start,
            "end_ps": self.end,
            "dur_ps": self.duration,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        state = f"end={self.end}" if self.closed else "open"
        return (f"Span(#{self.span_id} {self.name!r} track={self.track!r} "
                f"start={self.start} {state})")


class _NullSpan(Span):
    """The span handed out by a disabled tracer: every method no-ops."""

    def __init__(self) -> None:
        super().__init__(0, None, "", "", 0, {})

    def set(self, **attrs: Any) -> "Span":
        return self


#: Singleton no-op span returned by a disabled tracer.
NULL_SPAN = _NullSpan()


class SpanTracer:
    """Creates, nests, and collects :class:`Span` objects.

    Args:
        clock: zero-argument callable returning the current simulated
            time (e.g. ``sim.time_source()``).
        enabled: when False (the default) :meth:`begin` returns
            :data:`NULL_SPAN` after a single branch and nothing is
            recorded.
        max_spans: optional cap on retained *finished* spans; the oldest
            are dropped once exceeded (open spans are never dropped).
    """

    def __init__(self, clock: Callable[[], Time], enabled: bool = False,
                 max_spans: Optional[int] = None) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self._clock = clock
        self._next_id = 1
        self._finished: List[Span] = []
        self._open: Dict[int, Span] = {}
        self._stack: List[int] = []
        self.dropped = 0
        self._context: Optional[Any] = None
        self._process: str = ""

    # ------------------------------------------------------------------
    # begin / end
    # ------------------------------------------------------------------

    def begin(self, name: str, track: str = "main",
              parent: Optional[Span] = None, stack: bool = True,
              **attrs: Any) -> Span:
        """Open a span at the current simulated time.

        Args:
            name: span name.
            track: rendering lane.
            parent: explicit parent span; by default the top of the
                current-span stack (if any) is the parent.
            stack: join the implicit current-span stack.  Pass False for
                background spans that end out of nesting order (e.g. a
                DMA transfer completing after its initiator returned).
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is not None:
            parent_id: Optional[int] = parent.span_id or None
        elif self._stack:
            parent_id = self._stack[-1]
        else:
            parent_id = None
        span = Span(self._next_id, parent_id, name, track, self._clock(),
                    attrs if attrs else None)
        self._next_id += 1
        context = self._context
        if context is not None:
            span.attrs.setdefault("trace_id", context.trace_id)
            span.attrs.setdefault("process", self._process)
            if parent_id is None:
                # This span roots the trace's subtree in this tracer —
                # record the cross-process parent link on it.
                if context.parent_span_id is not None:
                    span.attrs.setdefault("remote_parent",
                                          context.parent_span_id)
                    if context.origin:
                        span.attrs.setdefault("remote_process",
                                              context.origin)
                if context.tenant:
                    span.attrs.setdefault("tenant", context.tenant)
                if context.request_id:
                    span.attrs.setdefault("request_id",
                                          context.request_id)
        self._open[span.span_id] = span
        if stack:
            self._stack.append(span.span_id)
        return span

    def end(self, span: Span, **attrs: Any) -> None:
        """Close *span* at the current simulated time.

        Raises:
            ObservabilityError: if the span is not open (never begun
                here, or already ended), or if it sits below the top of
                the current-span stack — i.e. an enclosing begin/end
                pair was left unbalanced.
        """
        if span is NULL_SPAN:
            return
        if self._open.pop(span.span_id, None) is None:
            raise ObservabilityError(
                f"span #{span.span_id} {span.name!r} is not open "
                f"(double end, or never begun by this tracer)")
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        elif span.span_id in self._stack:
            self._stack.remove(span.span_id)
            raise ObservabilityError(
                f"span #{span.span_id} {span.name!r} ended while "
                f"{len(self._stack)} inner span(s) were still open — "
                f"unbalanced begin/end pairing")
        if attrs:
            span.attrs.update(attrs)
        span.end = self._clock()
        self._finished.append(span)
        if self.max_spans is not None and len(self._finished) > self.max_spans:
            del self._finished[0]
            self.dropped += 1

    @contextmanager
    def span(self, name: str, track: str = "main",
             **attrs: Any) -> Iterator[Span]:
        """Context manager: ``with tracer.span("phase") as sp: ...``."""
        sp = self.begin(name, track=track, **attrs)
        try:
            yield sp
        finally:
            self.end(sp)

    @contextmanager
    def activate(self, context: Optional[Any],
                 process: str = "main") -> Iterator[None]:
        """Stamp a :class:`~repro.obs.context.TraceContext` onto every
        span begun inside the block.

        All such spans get ``trace_id`` and ``process`` attributes;
        spans that root a local subtree (no local parent) additionally
        get the cross-process ``remote_parent`` / ``remote_process``
        link plus tenant/request attribution — enough for
        :func:`~repro.obs.context.causal_tree` to reassemble one
        connected tree per trace across tracers.  Activations nest;
        a ``None`` context or a disabled tracer makes this a no-op.
        """
        if not self.enabled or context is None:
            yield
            return
        previous = (self._context, self._process)
        self._context, self._process = context, process
        try:
            yield
        finally:
            self._context, self._process = previous

    @property
    def context(self) -> Optional[Any]:
        """The trace context of the innermost active activation."""
        return self._context

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open stacked span, or None."""
        if not self._stack:
            return None
        return self._open.get(self._stack[-1])

    def finished(self) -> List[Span]:
        """All closed spans, in closing order."""
        return list(self._finished)

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended, in begin order."""
        return sorted(self._open.values(), key=lambda s: s.span_id)

    def all_spans(self) -> List[Span]:
        """Closed spans plus still-open ones (open last), by span id."""
        return sorted(self._finished + list(self._open.values()),
                      key=lambda s: s.span_id)

    def require_balanced(self) -> None:
        """Raise unless every begun span has been ended.

        Raises:
            ObservabilityError: naming the open spans.
        """
        if self._open:
            names = ", ".join(f"#{s.span_id} {s.name}"
                              for s in self.open_spans())
            raise ObservabilityError(
                f"{len(self._open)} span(s) still open: {names}")

    def __len__(self) -> int:
        return len(self._finished)

    def clear(self) -> None:
        """Drop every span (open and finished) and reset the stack."""
        self._finished.clear()
        self._open.clear()
        self._stack.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # snapshot/restore (checker-backtracking compatibility)
    # ------------------------------------------------------------------

    def snapshot(self) -> Optional[Tuple[Any, ...]]:
        """Capture tracer state; trivially None while nothing is traced."""
        if not self.enabled and not self._finished and not self._open:
            return None
        return (self._next_id, list(self._finished),
                dict(self._open), list(self._stack), self.dropped)

    def restore(self, token: Optional[Tuple[Any, ...]]) -> None:
        """Return to a state captured by :meth:`snapshot`."""
        if token is None:
            self._finished.clear()
            self._open.clear()
            self._stack.clear()
            self.dropped = 0
            return
        next_id, finished, open_spans, stack, dropped = token
        self._next_id = next_id
        self._finished = list(finished)
        self._open = dict(open_spans)
        self._stack = list(stack)
        self.dropped = dropped


def disabled_tracer() -> SpanTracer:
    """A permanently disabled tracer (components' default collaborator)."""
    return SpanTracer(clock=lambda: 0, enabled=False)
