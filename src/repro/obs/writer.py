"""The one shared output writer every exporter routes through.

Every artifact the repo emits — Chrome traces, JSONL span dumps, soak
reports, trend histories, postmortem bundles — funnels through
:func:`write_json` / :func:`write_text`, so the on-disk conventions
(UTF-8, trailing newline, stable indentation) are decided in exactly
one place and the CLI's ``--out`` paths behave identically everywhere.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional


def write_json(path: Any, payload: Any, indent: Optional[int] = 1,
               sort_keys: bool = False) -> str:
    """Serialize *payload* as JSON to *path* (newline-terminated).

    ``indent=None`` writes compact single-line JSON (used for the large
    Perfetto traces).  Returns the path written, for log lines.
    """
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
        handle.write("\n")
    return path


def write_text(path: Any, text: str) -> str:
    """Write *text* to *path* (newline-terminated); returns the path."""
    path = os.fspath(path)
    if not text.endswith("\n"):
        text += "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path
