"""Runtime fault injection on a live simulated machine.

An :class:`Injector` applies a :class:`~repro.faults.plan.FaultPlan` at
three attachment points, all reversible:

* **bus** — device-window word accesses (the shadow stores and status
  loads every initiation method is made of) can be dropped, delayed,
  duplicated, reordered, or bit-flipped.  A dropped *load* returns the
  all-ones bus-timeout word, which decodes as ``STATUS_FAILURE`` — the
  same value §3.1's status convention reserves for failure, so hardened
  software already knows what to do with it;
* **completion** — the DMA transfer engine's completion event can be
  dropped (the transfer hangs forever), delayed, or duplicated;
* **link** — remote-write packets on the cluster fabric can be dropped,
  delayed, duplicated, reordered, or payload-corrupted.

Everything injected is counted in a :class:`StatRegistry` (one counter
per ``target.kind``) and emitted to the machine's :class:`TraceLog` as
``faults/...`` events, so experiments can correlate observed retries
with the faults that caused them.

The injector mutates only *instance* attributes (bound-method shadowing
on the bus and fabric, a hook slot on the transfer engine), so
:meth:`detach` restores the machine exactly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, List, Optional, Tuple

from ..hw.bus import Bus
from ..hw.device import AccessContext
from ..hw.dma.status import STATUS_FAILURE
from ..hw.dma.transfer import DmaTransferEngine, Transfer
from ..obs.spans import SpanTracer
from ..sim.engine import Simulator
from ..sim.stats import StatRegistry
from ..sim.trace import TraceLog
from ..units import Time
from .plan import BITFLIP, DELAY, DROP, DUPLICATE, REORDER, FaultPlan


class Injector:
    """Applies a fault plan to a machine's bus, DMA engine, and fabric.

    Args:
        plan: the fault schedule (its RNG state is the injector's only
            source of randomness).
        sim: the event engine (needed to schedule delayed deliveries).
        stats: counter registry; a fresh ``StatRegistry("faults")`` by
            default.
        trace: optional trace log for ``faults/...`` events.
        spans: optional span tracer; each injected fault becomes an
            instant ``fault.<target>.<kind>`` span on the ``faults``
            track (taken from the workstation by :meth:`attach`).
    """

    def __init__(self, plan: FaultPlan, sim: Simulator,
                 stats: Optional[StatRegistry] = None,
                 trace: Optional[TraceLog] = None,
                 spans: Optional[SpanTracer] = None) -> None:
        self.plan = plan
        self.sim = sim
        self.stats = stats if stats is not None else StatRegistry("faults")
        self.trace = trace
        self.spans = spans
        self._undo: List[Callable[[], None]] = []
        self._held_store: Optional[Tuple[Bus, int, int, AccessContext]] = None
        self._held_packet: Optional[Tuple[Callable[..., None], tuple]] = None

    # ------------------------------------------------------------------
    # attachment points
    # ------------------------------------------------------------------

    def attach(self, ws: Any) -> "Injector":
        """Convenience: wrap a Workstation's bus, completions, and fabric."""
        self.attach_bus(ws.bus)
        self.attach_transfer_engine(ws.engine.transfer_engine)
        fabric = getattr(ws.nic, "fabric", None)
        if fabric is not None:
            self.attach_fabric(fabric)
        if self.trace is None:
            self.trace = ws.trace
        if self.spans is None:
            self.spans = getattr(ws, "spans", None)
        return self

    def attach_bus(self, bus: Bus) -> None:
        """Interpose on device-window reads and writes of *bus*."""
        orig_read = bus.read_word
        orig_write = bus.write_word

        def read_word(paddr: int, ctx: AccessContext) -> Tuple[int, Time]:
            if bus.find_window(paddr) is None:
                return orig_read(paddr, ctx)
            self._flush_held_store()
            return self._faulted_read(bus, orig_read, paddr, ctx)

        def write_word(paddr: int, value: int, ctx: AccessContext) -> Time:
            if bus.find_window(paddr) is None:
                return orig_write(paddr, value, ctx)
            return self._faulted_write(bus, orig_write, paddr, value, ctx)

        bus.read_word = read_word  # type: ignore[method-assign]
        bus.write_word = write_word  # type: ignore[method-assign]

        def undo() -> None:
            bus.read_word = orig_read  # type: ignore[method-assign]
            bus.write_word = orig_write  # type: ignore[method-assign]

        self._undo.append(undo)

    def attach_transfer_engine(self, engine: DmaTransferEngine) -> None:
        """Interpose on DMA completion events of *engine*."""
        previous = engine.fault_hook

        def hook(transfer: Transfer) -> Optional[Tuple[str, Time]]:
            return self._completion_hook(
                transfer, kernel=(engine.last_via == "kernel"))

        engine.fault_hook = hook
        self._undo.append(lambda: setattr(engine, "fault_hook", previous))

    def attach_fabric(self, fabric: Any) -> None:
        """Interpose on remote-write packets of *fabric*."""
        orig_send = fabric.send_write

        def send_write(src_node: int, dst_node: int, pdst_local: int,
                       payload: bytes) -> None:
            self._faulted_send(orig_send, src_node, dst_node, pdst_local,
                               payload)

        fabric.send_write = send_write

        def undo() -> None:
            fabric.send_write = orig_send

        self._undo.append(undo)

    def detach(self) -> None:
        """Flush held operations and restore every wrapped component."""
        self.flush()
        while self._undo:
            self._undo.pop()()

    def flush(self) -> None:
        """Deliver any store/packet currently held back by REORDER."""
        self._flush_held_store()
        if self._held_packet is not None:
            send, packet_args = self._held_packet
            self._held_packet = None
            send(*packet_args)

    # ------------------------------------------------------------------
    # per-target fault application
    # ------------------------------------------------------------------

    def _faulted_write(self, bus: Bus, orig_write: Callable[..., Time],
                       paddr: int, value: int, ctx: AccessContext) -> Time:
        rule = self.plan.decide("store", issuer=ctx.issuer, kernel=ctx.kernel)
        cost = bus.clock.cycles(bus.timing.device_write_cycles)
        if rule is None:
            cost = orig_write(paddr, value, ctx)
            self._flush_held_store()
            return cost
        self._count("store", rule.kind, paddr=paddr, issuer=ctx.issuer)
        if rule.kind == DROP:
            # The write transaction happens on the bus (full cost) but
            # never reaches the device.
            self._flush_held_store()
            return cost
        if rule.kind == BITFLIP:
            value ^= 1 << self.plan.pick_bit(rule)
            cost = orig_write(paddr, value, ctx)
            self._flush_held_store()
            return cost
        if rule.kind == DUPLICATE:
            orig_write(paddr, value, ctx)
            cost = orig_write(paddr, value, ctx)
            self._flush_held_store()
            return cost
        if rule.kind == DELAY:
            when = self.sim.now + rule.delay
            late_ctx = replace(ctx, when=when)
            self.sim.schedule(rule.delay,
                              lambda: orig_write(paddr, value, late_ctx),
                              label="fault-delayed-store")
            self._flush_held_store()
            return cost
        # REORDER: hold this store; it is delivered right after the next
        # device access goes through (an adjacent swap).  A previously
        # held store is released first so at most one is ever in flight.
        self._flush_held_store()
        self._held_store = (bus, paddr, value, ctx)
        return cost

    def _faulted_read(self, bus: Bus, orig_read: Callable[..., Tuple[int, Time]],
                      paddr: int, ctx: AccessContext) -> Tuple[int, Time]:
        rule = self.plan.decide("load", issuer=ctx.issuer, kernel=ctx.kernel)
        if rule is None:
            return orig_read(paddr, ctx)
        self._count("load", rule.kind, paddr=paddr, issuer=ctx.issuer)
        if rule.kind == DROP:
            # A lost read transaction times out on the bus and the CPU
            # reads all-ones — exactly STATUS_FAILURE (§3.1).
            return STATUS_FAILURE, bus.clock.cycles(
                bus.timing.device_read_cycles)
        if rule.kind == BITFLIP:
            value, cost = orig_read(paddr, ctx)
            return value ^ (1 << self.plan.pick_bit(rule)), cost
        if rule.kind == DELAY:
            value, cost = orig_read(paddr, ctx)
            return value, cost + rule.delay
        if rule.kind == DUPLICATE:
            # The device sees the read twice (a re-issued transaction);
            # software sees the second result.
            orig_read(paddr, ctx)
            return orig_read(paddr, ctx)
        # REORDER is meaningless for a synchronous read; pass through.
        return orig_read(paddr, ctx)

    def _completion_hook(self, transfer: Transfer, kernel: bool = False
                         ) -> Optional[Tuple[str, Time]]:
        rule = self.plan.decide("completion", kernel=kernel)
        if rule is None:
            return None
        kind = rule.kind
        if kind == BITFLIP:
            return None  # no payload to corrupt at completion level
        if kind == REORDER:
            kind = DELAY  # one completion: reordering degenerates to delay
        self._count("completion", kind, size=transfer.size,
                    pdst=transfer.pdst)
        return kind, rule.delay

    def _faulted_send(self, orig_send: Callable[..., None], src_node: int,
                      dst_node: int, pdst_local: int,
                      payload: bytes) -> None:
        rule = self.plan.decide("link")
        if rule is None:
            orig_send(src_node, dst_node, pdst_local, payload)
            self._flush_held_packet()
            return
        self._count("link", rule.kind, src=src_node, dst=dst_node,
                    nbytes=len(payload))
        if rule.kind == DROP:
            self._flush_held_packet()
            return
        if rule.kind == BITFLIP:
            corrupt = bytearray(payload)
            if corrupt:
                index = self.plan.pick_byte(rule, len(corrupt))
                corrupt[index] ^= 1 << (self.plan.pick_bit(rule) % 8)
            orig_send(src_node, dst_node, pdst_local, bytes(corrupt))
            self._flush_held_packet()
            return
        if rule.kind == DUPLICATE:
            orig_send(src_node, dst_node, pdst_local, payload)
            orig_send(src_node, dst_node, pdst_local, payload)
            self._flush_held_packet()
            return
        if rule.kind == DELAY:
            self.sim.schedule(
                rule.delay,
                lambda: orig_send(src_node, dst_node, pdst_local, payload),
                label="fault-delayed-packet")
            self._flush_held_packet()
            return
        # REORDER: hold until the next packet has been sent.
        self._flush_held_packet()
        self._held_packet = (orig_send,
                             (src_node, dst_node, pdst_local, payload))

    # ------------------------------------------------------------------

    def _flush_held_store(self) -> None:
        if self._held_store is None:
            return
        bus, paddr, value, ctx = self._held_store
        self._held_store = None
        # Deliver through the *original* path: type(bus) dispatch would
        # re-enter the wrapper; the saved write in _undo is inaccessible
        # here, so call the device directly like Bus.write_word does.
        hit = bus.find_window(paddr)
        if hit is None:
            return
        device, offset = hit
        device.mmio_write(offset, value, replace(ctx, when=self.sim.now))

    def _flush_held_packet(self) -> None:
        if self._held_packet is not None:
            send, packet_args = self._held_packet
            self._held_packet = None
            send(*packet_args)

    def _count(self, target: str, kind: str, **detail: Any) -> None:
        self.stats.counter(f"{target}.{kind}").add()
        # Attribute the fault to the request being executed, if the
        # span tracer has an active trace context (service data path).
        context = getattr(self.spans, "context", None) \
            if self.spans is not None else None
        if context is not None:
            detail.setdefault("trace_id", context.trace_id)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "faults", f"{target}-{kind}",
                            **detail)
        if self.spans is not None and self.spans.enabled:
            sp = self.spans.begin(f"fault.{target}.{kind}", track="faults",
                                  **detail)
            self.spans.end(sp)
