"""Deterministic fault injection for the user-level DMA path.

The paper's protection and atomicity arguments (§3.1-§3.3) assume that
stores to shadow addresses arrive intact and in order, and that DMA
completion events fire.  A production kernel-bypass path must survive
the classic failure classes — dropped, delayed, duplicated, reordered,
and bit-flipped accesses, and lost or duplicated completion events.

This package provides:

* :class:`~repro.faults.plan.FaultPlan` — a declarative, seedable fault
  schedule (which operations to perturb, how, and how often);
* :class:`~repro.faults.injector.Injector` — wraps a live machine's bus,
  DMA completion path, and network fabric to apply a plan in simulated
  time;
* :class:`~repro.faults.retry.RetryPolicy` — the user-level hardening
  knobs (bounded attempts, exponential backoff with jitter, completion
  timeouts) consumed by :meth:`repro.core.api.DmaChannel.dma_reliable`
  and the message/RPC layers.

The model checker consumes the same fault vocabulary at stream level
(:mod:`repro.verify.faulted`): instead of probabilistic injection, it
enumerates every *single* fault on an access stream and re-verifies the
protection and atomicity properties exhaustively.
"""

from .injector import Injector
from .plan import (
    BITFLIP,
    DELAY,
    DROP,
    DUPLICATE,
    FAULT_KINDS,
    REORDER,
    FaultPlan,
    FaultRule,
    bernoulli_plan,
)
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "BITFLIP",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "REORDER",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "bernoulli_plan",
    "Injector",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
]
