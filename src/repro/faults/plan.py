"""Declarative, seedable fault schedules.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries plus a
seed.  Each rule names a *target* (the operation class it perturbs), a
fault *kind*, and a trigger — either probabilistic (``probability``) or
deterministic (``nth``: fire on the n-th matching operation).  The plan
owns all randomness: two runs with the same plan, seed, and workload
inject exactly the same faults, so every failure a test or benchmark
finds is replayable.

Targets:

* ``"store"`` — device-window word writes (shadow argument stores,
  context-page stores);
* ``"load"`` — device-window word reads (status loads);
* ``"completion"`` — DMA completion events in the transfer engine;
* ``"link"`` — remote write packets on the cluster fabric.

Kinds: :data:`DROP`, :data:`DELAY`, :data:`DUPLICATE`, :data:`REORDER`,
:data:`BITFLIP`.  Not every (kind, target) pair is meaningful — e.g.
``REORDER`` applies to stores and link packets (the in-order media);
the injector ignores impossible combinations rather than erroring, so
one plan can be reused across attachment points.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..units import Time, us

DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"
REORDER = "reorder"
BITFLIP = "bitflip"

#: Every fault kind, in canonical order.
FAULT_KINDS: Tuple[str, ...] = (DROP, DELAY, DUPLICATE, REORDER, BITFLIP)

#: Every injection target the runtime injector understands.
FAULT_TARGETS: Tuple[str, ...] = ("store", "load", "completion", "link")


@dataclass(frozen=True)
class FaultRule:
    """One entry of a fault schedule.

    Attributes:
        kind: fault kind (see :data:`FAULT_KINDS`).
        target: operation class to perturb (see :data:`FAULT_TARGETS`).
        probability: chance of firing per matching operation (ignored
            when ``nth`` is set).
        nth: fire deterministically on the n-th matching operation
            (1-based) instead of probabilistically.
        count: maximum number of times this rule may fire (None means
            unlimited) — ``nth=3, count=1`` is "exactly the third store".
        bit: bit index for BITFLIP (None picks a random bit per fire).
        delay: extra latency for DELAY (and the duplicate-completion
            gap); defaults to 5 µs.
        issuer: only perturb operations issued by this pid (None = any).
        kernel_immune: skip kernel-mode accesses.  True by default: the
            kernel syscall path is the *fallback* after user-level retry
            exhaustion, and the driver behind it is modelled as running
            with its own bus-level error handling.
    """

    kind: str
    target: str
    probability: float = 0.0
    nth: Optional[int] = None
    count: Optional[int] = None
    bit: Optional[int] = None
    delay: Time = us(5)
    issuer: Optional[int] = None
    kernel_immune: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.target not in FAULT_TARGETS:
            raise ConfigError(f"unknown fault target {self.target!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.nth is not None and self.nth < 1:
            raise ConfigError(f"nth must be >= 1, got {self.nth}")
        if self.bit is not None and not 0 <= self.bit < 64:
            raise ConfigError(f"bit must be in [0, 64), got {self.bit}")


@dataclass
class FaultPlan:
    """A fault schedule with its own deterministic randomness.

    Attributes:
        rules: the schedule entries.
        seed: master seed; :meth:`reset` returns the plan to its
            initial deterministic state.
    """

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Re-seed the RNG and zero all match/fire counters."""
        self._rng = random.Random(self.seed)
        self._seen: Dict[int, int] = {i: 0 for i in range(len(self.rules))}
        self._fired: Dict[int, int] = {i: 0 for i in range(len(self.rules))}

    @property
    def total_fired(self) -> int:
        """Faults injected since the last :meth:`reset`."""
        return sum(self._fired.values())

    def fired(self, rule: FaultRule) -> int:
        """How many times *rule* has fired since the last reset."""
        return self._fired[self.rules.index(rule)]

    def decide(self, target: str, issuer: Optional[int] = None,
               kernel: bool = False) -> Optional[FaultRule]:
        """The rule (if any) that fires on this operation.

        At most one fault is injected per operation: the first rule in
        schedule order whose trigger hits.  Every matching rule's
        operation counter still advances, and every probabilistic
        matching rule still consumes one RNG draw, so the decision
        stream is a pure function of (plan, seed, operation sequence)
        regardless of which rule wins.
        """
        chosen: Optional[FaultRule] = None
        for index, rule in enumerate(self.rules):
            if rule.target != target:
                continue
            if rule.kernel_immune and kernel:
                continue
            if rule.issuer is not None and issuer != rule.issuer:
                continue
            self._seen[index] += 1
            if rule.nth is not None:
                hit = self._seen[index] == rule.nth
            else:
                hit = (rule.probability > 0.0
                       and self._rng.random() < rule.probability)
            if rule.count is not None and self._fired[index] >= rule.count:
                continue
            if hit and chosen is None:
                self._fired[index] += 1
                chosen = rule
        return chosen

    def pick_bit(self, rule: FaultRule) -> int:
        """The bit a BITFLIP fire perturbs (fixed or drawn from the RNG)."""
        if rule.bit is not None:
            return rule.bit
        return self._rng.randrange(64)

    def pick_byte(self, rule: FaultRule, length: int) -> int:
        """The byte index a link-level BITFLIP perturbs."""
        if length <= 0:
            return 0
        return self._rng.randrange(length)


    # ------------------------------------------------------------------
    # JSON round-trip (the `repro soak --faults plan.json` format)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering: ``{"seed": ..., "rules": [...]}``.

        Delay fields are expressed in microseconds so plan files stay
        human-readable; :meth:`from_dict` converts back to ps.
        """
        rules = []
        for rule in self.rules:
            entry: Dict[str, object] = {"kind": rule.kind,
                                        "target": rule.target}
            if rule.probability:
                entry["probability"] = rule.probability
            if rule.nth is not None:
                entry["nth"] = rule.nth
            if rule.count is not None:
                entry["count"] = rule.count
            if rule.bit is not None:
                entry["bit"] = rule.bit
            if rule.delay != us(5):
                entry["delay_us"] = rule.delay / 1_000_000
            if rule.issuer is not None:
                entry["issuer"] = rule.issuer
            if not rule.kernel_immune:
                entry["kernel_immune"] = False
            rules.append(entry)
        return {"seed": self.seed, "rules": rules}

    @classmethod
    def from_dict(cls, data: Dict[str, object],
                  seed: Optional[int] = None) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (or a hand-written
        plan file).  *seed* overrides the stored seed — the service layer
        uses this to derive a distinct deterministic stream per shard.
        """
        if not isinstance(data, dict) or "rules" not in data:
            raise ConfigError("fault plan must be an object with 'rules'")
        rules: List[FaultRule] = []
        raw_rules = data["rules"]
        if not isinstance(raw_rules, list):
            raise ConfigError("fault plan 'rules' must be a list")
        for raw in raw_rules:
            if not isinstance(raw, dict):
                raise ConfigError(f"fault rule must be an object: {raw!r}")
            fields = dict(raw)
            delay_us = fields.pop("delay_us", None)
            kwargs: Dict[str, object] = {}
            for key in ("kind", "target", "probability", "nth", "count",
                        "bit", "issuer", "kernel_immune"):
                if key in fields:
                    kwargs[key] = fields.pop(key)
            if fields:
                raise ConfigError(
                    f"unknown fault rule field(s): {sorted(fields)}")
            if delay_us is not None:
                kwargs["delay"] = us(float(delay_us))
            rules.append(FaultRule(**kwargs))  # type: ignore[arg-type]
        plan_seed = seed if seed is not None else int(data.get("seed", 0))
        return cls(rules=rules, seed=plan_seed)


def bernoulli_plan(rate: float, seed: int = 0,
                   kinds: Sequence[str] = (DROP, BITFLIP),
                   completion_kinds: Sequence[str] = (DROP, DELAY),
                   delay: Time = us(5)) -> FaultPlan:
    """The benchmark's built-in schedule: i.i.d. faults at *rate*.

    Splits *rate* evenly across store faults (*kinds*) and completion
    faults (*completion_kinds*), so the overall per-operation fault
    probability stays comparable across rates.
    """
    if not 0.0 <= rate <= 1.0:
        raise ConfigError(f"rate must be in [0, 1], got {rate}")
    rules: List[FaultRule] = []
    groups = [("store", kinds), ("completion", completion_kinds)]
    n_rules = sum(len(ks) for _, ks in groups)
    if rate > 0.0 and n_rules:
        p = rate / n_rules
        for target, target_kinds in groups:
            for kind in target_kinds:
                rules.append(FaultRule(kind=kind, target=target,
                                       probability=p, delay=delay))
    return FaultPlan(rules=rules, seed=seed)
