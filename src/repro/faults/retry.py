"""Retry policy: bounded attempts, exponential backoff, jitter.

The user-level hardening knob set.  A :class:`RetryPolicy` is consumed
by :meth:`repro.core.api.DmaChannel.initiate_reliable` /
:meth:`~repro.core.api.DmaChannel.dma_reliable` and by the message and
RPC layers (:mod:`repro.msg`): a failed initiation or a lost completion
is retried up to ``max_attempts`` times with exponentially growing,
jittered backoff, then gracefully degraded to the kernel syscall path —
§3.2's "the rest will have to go through the kernel", repurposed as the
always-works escape hatch.

Jitter is multiplicative and drawn from a caller-supplied seeded RNG so
whole experiments stay deterministic and replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigError
from ..units import Time, us


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for the reliable initiation paths.

    Attributes:
        max_attempts: user-level tries before degrading to the kernel
            path (must be >= 1).
        base_backoff: backoff before the second attempt.
        multiplier: backoff growth factor per attempt.
        jitter_frac: backoff is scaled by a uniform factor in
            ``[1 - jitter_frac, 1 + jitter_frac]``.
        completion_timeout: how long :meth:`DmaChannel.dma_reliable`
            waits for a started transfer to complete before declaring
            the completion lost and retrying.
        kernel_fallback: degrade to the kernel syscall path after
            exhausting user-level attempts (False = report failure).
    """

    max_attempts: int = 4
    base_backoff: Time = us(2)
    multiplier: float = 2.0
    jitter_frac: float = 0.25
    completion_timeout: Time = us(2_000)
    kernel_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0 or self.completion_timeout <= 0:
            raise ConfigError("backoff must be >= 0 and timeout > 0")
        if self.multiplier < 1.0:
            raise ConfigError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ConfigError(
                f"jitter_frac must be in [0, 1), got {self.jitter_frac}")

    def backoff(self, attempt: int, rng: random.Random) -> Time:
        """Jittered backoff after failed attempt number *attempt* (1-based)."""
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        raw = self.base_backoff * (self.multiplier ** (attempt - 1))
        if self.jitter_frac:
            raw *= 1.0 + self.jitter_frac * (2.0 * rng.random() - 1.0)
        return max(0, round(raw))

    def make_rng(self, seed: int) -> random.Random:
        """A fresh jitter RNG for one caller (deterministic per seed)."""
        return random.Random(seed)


#: The defaults used when a caller asks for reliability without tuning.
DEFAULT_RETRY_POLICY = RetryPolicy()
