"""Network messages.

The only traffic the reproduction needs is the remote-write packet a NIC
emits when a DMA transfer targets another node's memory (the Telegraphos/
SHRIMP model: data is *deposited* directly into the destination's
physical memory, no receiver software on the critical path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from ..units import Time

_SEQ = count()


@dataclass(frozen=True)
class Message:
    """One remote-write packet.

    Attributes:
        src_node / dst_node: fabric node ids.
        pdst_local: destination physical address on the receiving node.
        payload: the data bytes.
        sent_at: transmission start time.
        seq: global sequence number (debugging / tracing).
    """

    src_node: int
    dst_node: int
    pdst_local: int
    payload: bytes
    sent_at: Time
    seq: int = field(default_factory=lambda: next(_SEQ))

    @property
    def size(self) -> int:
        """Payload length in bytes."""
        return len(self.payload)

    def __repr__(self) -> str:
        return (f"Message(#{self.seq} {self.src_node}->{self.dst_node} "
                f"{self.size}B @ {self.pdst_local:#x})")
