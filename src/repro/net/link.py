"""Point-to-point links.

A :class:`Link` carries messages with a serialization delay (size over
bandwidth) plus a fixed propagation/switching latency, delivering them in
FIFO order — a busy link queues later messages behind earlier ones.

Presets match the networks the paper's introduction names:

* :data:`ATM_155` — "ATM networks that provide 155 Mbps are common today";
* :data:`ATM_622` — "will soon be upgraded to 622 Mbps";
* :data:`GIGABIT` — "Gigabit LANs have already started to appear".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import NetworkError
from ..sim.engine import Simulator
from ..units import Time, gbps, mbps, transfer_time, us
from .message import Message

#: Delivery callback: invoked at the receiving node when a message lands.
DeliveryFn = Callable[[Message], None]


@dataclass(frozen=True)
class LinkSpec:
    """Bandwidth/latency parameters of one link class.

    Attributes:
        name: preset name.
        bandwidth_bps: serialization bandwidth, bits/second.
        latency: fixed propagation + switch latency.
        per_message_overhead: header/framing bytes added to each message.
    """

    name: str
    bandwidth_bps: float
    latency: Time
    per_message_overhead: int = 16

    def wire_time(self, nbytes: int) -> Time:
        """Serialization time of a *nbytes*-payload message."""
        return transfer_time(nbytes + self.per_message_overhead,
                             self.bandwidth_bps)

    def delivery_time(self, nbytes: int) -> Time:
        """Total unloaded transfer time of a message."""
        return self.latency + self.wire_time(nbytes)


ATM_155 = LinkSpec(name="atm-155", bandwidth_bps=mbps(155.0),
                   latency=us(10))
ATM_622 = LinkSpec(name="atm-622", bandwidth_bps=mbps(622.0),
                   latency=us(6))
GIGABIT = LinkSpec(name="gigabit", bandwidth_bps=gbps(1.0),
                   latency=us(3))

LINK_PRESETS = {spec.name: spec for spec in (ATM_155, ATM_622, GIGABIT)}


class Link:
    """A FIFO point-to-point link between two fabric nodes."""

    def __init__(self, sim: Simulator, spec: LinkSpec,
                 a: int, b: int) -> None:
        self.sim = sim
        self.spec = spec
        self.endpoints = (a, b)
        self.messages_carried = 0
        self.bytes_carried = 0
        self._busy_until: Time = 0

    def connects(self, a: int, b: int) -> bool:
        """Whether this link joins nodes *a* and *b* (either direction)."""
        return {a, b} == set(self.endpoints)

    def send(self, message: Message, deliver: DeliveryFn) -> Time:
        """Transmit *message*; schedules *deliver* at arrival time.

        Returns:
            The absolute delivery timestamp.

        Raises:
            NetworkError: if the message's nodes are not this link's.
        """
        if not self.connects(message.src_node, message.dst_node):
            raise NetworkError(
                f"link {self.endpoints} cannot carry {message!r}")
        start = max(self.sim.now, self._busy_until)
        wire = self.spec.wire_time(message.size)
        self._busy_until = start + wire
        arrival = self._busy_until + self.spec.latency
        self.messages_carried += 1
        self.bytes_carried += message.size
        self.sim.call_at(arrival, lambda: deliver(message),
                         label=f"deliver#{message.seq}", transient=True)
        return arrival

    @property
    def utilization_window(self) -> Time:
        """Time until the link becomes idle (0 if already idle)."""
        return max(0, self._busy_until - self.sim.now)
