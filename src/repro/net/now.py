"""The cluster: workstations on a shared fabric.

:class:`Cluster` owns one :class:`~repro.sim.engine.Simulator` shared by
every node (a NOW has one global timeline), builds the workstations, and
implements the :class:`~repro.hw.nic.Fabric` protocol their NICs use to
deliver remote writes.  Topology is a full mesh by default — every node
pair gets its own link of the configured class — matching the switched
point-to-point networks (ATM, Myrinet, Telegraphos) the paper targets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.machine import MachineConfig, Workstation
from ..errors import NetworkError
from ..hw.memory import PhysicalMemory
from ..sim.engine import Simulator
from ..units import Time
from .link import Link, LinkSpec, ATM_155
from .message import Message


class Cluster:
    """A Network of Workstations with a global physical address space."""

    def __init__(self, n_nodes: int, link_spec: LinkSpec = ATM_155,
                 config: Optional[MachineConfig] = None) -> None:
        if n_nodes < 1:
            raise NetworkError(f"cluster needs at least one node: {n_nodes}")
        self.sim = Simulator()
        self.link_spec = link_spec
        base = config if config is not None else MachineConfig()
        self.nodes: List[Workstation] = []
        for node_id in range(n_nodes):
            node_config = MachineConfig(
                method=base.method, timing=base.timing,
                ram_size=base.ram_size, n_contexts=base.n_contexts,
                seed=base.seed + node_id,
                relaxed_write_buffer=base.relaxed_write_buffer,
                write_buffer_collapsing=base.write_buffer_collapsing,
                node_id=node_id, atomic_mode=base.atomic_mode,
                trace_enabled=base.trace_enabled)
            self.nodes.append(Workstation(node_config, fabric=self,
                                          sim=self.sim))
        self._links: Dict[Tuple[int, int], Link] = {}
        for a in range(n_nodes):
            for b in range(a + 1, n_nodes):
                self._links[(a, b)] = Link(self.sim, link_spec, a, b)
        self.deliveries = 0
        # Remote atomic operations stall their initiator for a network
        # round trip: request + response at the link's latency plus the
        # serialization of one small packet each way.
        rtt = 2 * (link_spec.latency + link_spec.wire_time(16))
        for ws in self.nodes:
            if ws.atomic_unit is not None:
                ws.atomic_unit.remote_rtt = rtt

    # ------------------------------------------------------------------
    # the Fabric protocol (what NICs call)
    # ------------------------------------------------------------------

    def send_write(self, src_node: int, dst_node: int, pdst_local: int,
                   payload: bytes) -> None:
        """Carry a remote write across the fabric and deposit it."""
        link = self.link_between(src_node, dst_node)
        message = Message(src_node=src_node, dst_node=dst_node,
                          pdst_local=pdst_local, payload=payload,
                          sent_at=self.sim.now)
        link.send(message, self._deliver)

    def node_ram(self, node: int) -> PhysicalMemory:
        """The RAM of *node* (destination validation by sending NICs)."""
        return self.node(node).ram

    # ------------------------------------------------------------------

    def node(self, node_id: int) -> Workstation:
        """The workstation with id *node_id*.

        Raises:
            NetworkError: for an unknown id.
        """
        if not 0 <= node_id < len(self.nodes):
            raise NetworkError(f"no node {node_id} in this cluster")
        return self.nodes[node_id]

    def link_between(self, a: int, b: int) -> Link:
        """The link joining *a* and *b*.

        Raises:
            NetworkError: if either id is unknown or a == b.
        """
        key = (min(a, b), max(a, b))
        if key not in self._links:
            raise NetworkError(f"no link between nodes {a} and {b}")
        return self._links[key]

    def run_until_quiet(self, timeout: Optional[Time] = None) -> None:
        """Drain all in-flight background activity (transfers, messages)."""
        if timeout is None:
            self.sim.run()
        else:
            self.sim.run_until(self.sim.now + timeout)

    def __len__(self) -> int:
        return len(self.nodes)

    def _deliver(self, message: Message) -> None:
        ram = self.node_ram(message.dst_node)
        ram.write(message.pdst_local, message.payload)
        self.deliveries += 1
