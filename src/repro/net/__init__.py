"""The Network-of-Workstations substrate.

Models the cluster context of the paper's introduction: workstations
joined by point-to-point links whose bandwidth matches the networks the
paper names (ATM at 155 and 622 Mb/s, emerging Gigabit LANs).  The NIC
(:mod:`repro.hw.nic`) routes DMA transfers whose global destination names
another node through this fabric.
"""

from .link import ATM_155, ATM_622, GIGABIT, Link, LinkSpec
from .message import Message
from .now import Cluster

__all__ = [
    "ATM_155",
    "ATM_622",
    "Cluster",
    "GIGABIT",
    "Link",
    "LinkSpec",
    "Message",
]
