"""User-level remote atomic operations (§3.5).

Network interfaces that export a shared-memory abstraction (Telegraphos,
Dolphin SCI) also execute atomic operations — ``atomic_add``,
``fetch_and_store``, ``compare_and_swap`` — at the target memory.  The
paper observes these are a *simpler* instance of the user-level DMA
problem: one physical address, one or two data operands, one result.

The :class:`AtomicUnit` is an MMIO device with its own little window:

* **context pages** — per-process operand registers and the result/
  execute readout;
* a **kernel-only key page** — as in §3.1;
* a **kernel-only control page** — the syscall baseline's registers;
* a **shadow region** whose offset encodes ``(opcode, CONTEXT_ID, target
  physical address)`` — argument passing exactly as for DMA.

Two user-level initiation flavours mirror the DMA methods:

* **keyed** (§3.1 adaptation): ``STORE key#ctx TO ashadow(op, vtarget)``
  latches the operation; operands go to the context page; a context-page
  load executes atomically and returns the old value.
* **extended shadow** (§3.2 adaptation): the CONTEXT_ID rides in the
  shadow address; a store latches the operand, a load from the same
  encoded target executes.  Two instructions for single-operand ops,
  three for compare-and-swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError, DeviceError
from ..sim.engine import Simulator
from ..sim.trace import TraceLog
from ..units import Time
from .device import AccessContext, MmioDevice
from .dma.protocols.keyed import unpack_key_word
from .dma.status import STATUS_FAILURE
from .memory import PhysicalMemory
from .pagetable import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE

# Atomic opcodes carried in the shadow-address op field.
OP_ADD = 0
OP_FETCH_STORE = 1
OP_CAS = 2
#: Second-operand latch channel for compare-and-swap (extended-shadow flow).
OP_CAS_SWAP = 3

_OP_NAMES = {OP_ADD: "add", OP_FETCH_STORE: "fetch_store", OP_CAS: "cas",
             OP_CAS_SWAP: "cas_swap"}

# Control-page registers (kernel baseline path).
REG_TARGET = 0x00
REG_OPERAND = 0x08
REG_OPERAND2 = 0x10
REG_OPCODE = 0x18   # write executes
REG_RESULT = 0x20

# Context-page registers.
CTX_OPERAND = 0x00
CTX_OPERAND2 = 0x08

WORD_MASK = (1 << 64) - 1


@dataclass
class AtomicContext:
    """Per-process latched atomic-operation state."""

    ctx_id: int
    op: Optional[int] = None
    target: Optional[int] = None
    operand: Optional[int] = None
    operand2: Optional[int] = None
    owner_pid: Optional[int] = None

    def clear(self) -> None:
        """Drop the latched operation."""
        self.op = None
        self.target = None
        self.operand = None
        self.operand2 = None

    @property
    def ready(self) -> bool:
        """Whether the latched op has everything it needs to execute."""
        if self.op is None or self.target is None or self.operand is None:
            return False
        if self.op == OP_CAS and self.operand2 is None:
            return False
        return True


@dataclass(frozen=True)
class AtomicRecord:
    """One executed atomic operation (verification bookkeeping)."""

    when: Time
    op: int
    target: int
    operand: int
    operand2: Optional[int]
    result: int
    issuer: Optional[int]
    via: str


@dataclass(frozen=True)
class AtomicShadowLayout:
    """Window geometry of the atomic unit.

    Offsets::

        [0, n_contexts * PAGE)           context pages
        [n_contexts * PAGE, +PAGE)       key page (kernel-only)
        [(n_contexts+1) * PAGE, +PAGE)   control page (kernel-only)
        [shadow_offset, ...)             (op, ctx, paddr)-encoded shadow

    ``addr_bits`` is 34 so the target field carries *global* cluster
    addresses (6 node bits + 28 local bits — the NIC's address map):
    remote atomic operations are what the paper's NOW interfaces exist
    for.
    """

    window_base: int = 1 << 42
    n_contexts: int = 4
    ctx_bits: int = 2
    op_bits: int = 2
    addr_bits: int = 34
    shadow_offset: int = 1 << 36

    def __post_init__(self) -> None:
        if (1 << self.ctx_bits) < self.n_contexts:
            raise ConfigError(
                f"ctx_bits={self.ctx_bits} cannot name "
                f"{self.n_contexts} contexts")
        if self.shadow_offset < (self.n_contexts + 2) * PAGE_SIZE:
            raise ConfigError("shadow region overlaps register pages")

    @property
    def key_page(self) -> int:
        return self.n_contexts

    @property
    def control_page(self) -> int:
        return self.n_contexts + 1

    @property
    def shadow_region_size(self) -> int:
        return 1 << (self.op_bits + self.ctx_bits + self.addr_bits)

    @property
    def window_size(self) -> int:
        return self.shadow_offset + self.shadow_region_size

    def context_page_paddr(self, ctx_id: int) -> int:
        """Physical base of context page *ctx_id*."""
        if not 0 <= ctx_id < self.n_contexts:
            raise ConfigError(f"ctx {ctx_id} out of range")
        return self.window_base + ctx_id * PAGE_SIZE

    def shadow_paddr(self, op: int, paddr: int, ctx_id: int = 0) -> int:
        """Encode the shadow address for (*op*, *ctx_id*, *paddr*)."""
        if not 0 <= op < (1 << self.op_bits):
            raise ConfigError(f"opcode {op} overflows {self.op_bits} bits")
        if not 0 <= ctx_id < (1 << self.ctx_bits):
            raise ConfigError(f"ctx {ctx_id} overflows {self.ctx_bits} bits")
        if not 0 <= paddr < (1 << self.addr_bits):
            raise ConfigError(
                f"paddr {paddr:#x} overflows {self.addr_bits} bits")
        rel = ((op << (self.ctx_bits + self.addr_bits))
               | (ctx_id << self.addr_bits) | paddr)
        return self.window_base + self.shadow_offset + rel

    def decode_offset(self, offset: int
                      ) -> Optional["tuple[int, int, int]"]:
        """Decode a window offset to (op, ctx_id, paddr), or None."""
        rel = offset - self.shadow_offset
        if rel < 0 or rel >= self.shadow_region_size:
            return None
        paddr = rel & ((1 << self.addr_bits) - 1)
        ctx_id = (rel >> self.addr_bits) & ((1 << self.ctx_bits) - 1)
        op = rel >> (self.ctx_bits + self.addr_bits)
        return op, ctx_id, paddr


class AtomicUnit(MmioDevice):
    """The remote-atomic-operation engine.

    Args:
        sim: event engine.
        ram: the memory atomic operations execute against.
        layout: window geometry.
        mode: which user-level initiation flavour the unit is wired for —
            "keyed" or "extshadow" (the kernel control path always works).
        trace: optional shared trace log.
    """

    def __init__(self, sim: Simulator, ram: PhysicalMemory,
                 layout: Optional[AtomicShadowLayout] = None,
                 mode: str = "keyed",
                 node_id: int = 0,
                 fabric=None,
                 addr_map=None,
                 remote_rtt: Time = 0,
                 trace: Optional[TraceLog] = None,
                 name: str = "atomic") -> None:
        super().__init__(name)
        if mode not in ("keyed", "extshadow"):
            raise ConfigError(f"unknown atomic-unit mode {mode!r}")
        self.sim = sim
        self.ram = ram
        self.layout = layout if layout is not None else AtomicShadowLayout()
        self.mode = mode
        self.node_id = node_id
        self.fabric = fabric
        self.addr_map = addr_map
        #: Round-trip network time charged per remote operation; the
        #: cluster sets it from its link spec.
        self.remote_rtt = remote_rtt
        self.trace = trace if trace is not None else TraceLog()
        self.contexts = [AtomicContext(i)
                         for i in range(self.layout.n_contexts)]
        self.key_table: Dict[int, int] = {}
        self.operations: List[AtomicRecord] = []
        self.key_rejections = 0
        self.protocol_violations = 0
        self._control = {REG_TARGET: 0, REG_OPERAND: 0, REG_OPERAND2: 0,
                         REG_RESULT: 0}

    # ------------------------------------------------------------------
    # MMIO
    # ------------------------------------------------------------------

    def mmio_write(self, offset: int, value: int, ctx: AccessContext) -> None:
        decoded = self.layout.decode_offset(offset)
        if decoded is not None:
            self._shadow_store(*decoded, value=value, ctx=ctx)
            return
        page = offset >> PAGE_SHIFT
        reg = offset & PAGE_MASK
        if page < self.layout.n_contexts:
            self._context_store(self.contexts[page], reg, value)
            return
        if page == self.layout.key_page:
            if not ctx.kernel:
                self.protocol_violations += 1
                return
            self.key_table[reg // 8] = value
            return
        if page == self.layout.control_page:
            self._control_write(reg, value, ctx)
            return
        raise DeviceError(f"{self.name}: write to offset {offset:#x}")

    def mmio_read(self, offset: int, ctx: AccessContext) -> int:
        decoded = self.layout.decode_offset(offset)
        if decoded is not None:
            return self._shadow_load(*decoded, ctx=ctx)
        page = offset >> PAGE_SHIFT
        reg = offset & PAGE_MASK
        if page < self.layout.n_contexts:
            return self._context_load(self.contexts[page], ctx)
        if page == self.layout.key_page:
            if not ctx.kernel:
                self.protocol_violations += 1
                return STATUS_FAILURE
            return self.key_table.get(reg // 8, 0)
        if page == self.layout.control_page:
            if not ctx.kernel:
                self.protocol_violations += 1
                return STATUS_FAILURE
            return self._control.get(reg, 0)
        raise DeviceError(f"{self.name}: read of offset {offset:#x}")

    # ------------------------------------------------------------------
    # shadow region
    # ------------------------------------------------------------------

    def _shadow_store(self, op: int, ctx_id: int, paddr: int, value: int,
                      ctx: AccessContext) -> None:
        if self.mode == "keyed":
            # The data word is key#ctx; the target/op ride in the address.
            key, named_ctx, _arg = unpack_key_word(value)
            if named_ctx >= len(self.contexts):
                self.key_rejections += 1
                return
            expected = self.key_table.get(named_ctx, 0)
            if expected == 0 or key != expected:
                self.key_rejections += 1
                return
            context = self.contexts[named_ctx]
            context.op = op
            context.target = paddr
            return
        # extshadow: ctx comes from the address; the data word is operand.
        if ctx_id >= len(self.contexts):
            self.protocol_violations += 1
            return
        context = self.contexts[ctx_id]
        if op == OP_CAS_SWAP:
            # Second CAS operand for an already-latched CAS.
            if context.op == OP_CAS and context.target == paddr:
                context.operand2 = value
            else:
                context.clear()
            return
        context.op = op
        context.target = paddr
        context.operand = value
        context.operand2 = None

    def _shadow_load(self, op: int, ctx_id: int, paddr: int,
                     ctx: AccessContext) -> int:
        if self.mode != "extshadow":
            return STATUS_FAILURE
        if ctx_id >= len(self.contexts):
            self.protocol_violations += 1
            return STATUS_FAILURE
        context = self.contexts[ctx_id]
        if (context.op != op or context.target != paddr
                or not context.ready):
            context.clear()
            return STATUS_FAILURE
        result = self._execute(context.op, context.target, context.operand,
                               context.operand2, ctx.issuer,
                               via="extshadow")
        context.clear()
        return result

    # ------------------------------------------------------------------
    # context pages (keyed flow)
    # ------------------------------------------------------------------

    def _context_store(self, context: AtomicContext, reg: int,
                       value: int) -> None:
        if reg == CTX_OPERAND2:
            context.operand2 = value
        else:
            context.operand = value

    def _context_load(self, context: AtomicContext,
                      ctx: AccessContext) -> int:
        if not context.ready:
            context.clear()
            return STATUS_FAILURE
        result = self._execute(context.op, context.target, context.operand,
                               context.operand2, ctx.issuer, via="keyed")
        context.clear()
        return result

    # ------------------------------------------------------------------
    # control page (kernel baseline)
    # ------------------------------------------------------------------

    def _control_write(self, reg: int, value: int,
                       ctx: AccessContext) -> None:
        if not ctx.kernel:
            self.protocol_violations += 1
            return
        if reg == REG_OPCODE:
            self._control[REG_RESULT] = self._execute(
                value, self._control[REG_TARGET],
                self._control[REG_OPERAND],
                self._control[REG_OPERAND2], ctx.issuer, via="kernel")
            return
        if reg in (REG_TARGET, REG_OPERAND, REG_OPERAND2):
            self._control[reg] = value
            return
        raise DeviceError(f"{self.name}: unknown control register {reg:#x}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _execute(self, op: int, target: int, operand: int,
                 operand2: Optional[int], issuer: Optional[int],
                 via: str) -> int:
        """Perform the atomic op against (possibly remote) memory.

        Returns the old value, or STATUS_FAILURE for an illegal target
        or opcode.  Remote targets stall the initiating access for
        :attr:`remote_rtt` — the network round trip the real interfaces
        pay to execute the operation at the home node.
        """
        resolved = self._resolve_target(target)
        if resolved is None:
            return STATUS_FAILURE
        ram, local, remote = resolved
        if not ram.contains(local, 8) or local % 8:
            return STATUS_FAILURE
        if remote:
            self.sim.advance(self.remote_rtt)
        old = ram.read_word(local)
        if op == OP_ADD:
            ram.write_word(local, (old + operand) & WORD_MASK)
        elif op == OP_FETCH_STORE:
            ram.write_word(local, operand & WORD_MASK)
        elif op == OP_CAS:
            compare = operand
            swap = operand2 if operand2 is not None else 0
            if old == compare:
                ram.write_word(local, swap & WORD_MASK)
        else:
            return STATUS_FAILURE
        self.operations.append(AtomicRecord(
            when=self.sim.now, op=op, target=target, operand=operand,
            operand2=operand2, result=old, issuer=issuer, via=via))
        self.trace.emit(self.sim.now, self.name, "atomic",
                        op=_OP_NAMES.get(op, str(op)), target=target,
                        old=old, via=via, issuer=issuer, remote=remote)
        return old

    def _resolve_target(self, target: int):
        """Map a target word address to (ram, local address, is_remote).

        Without an address map the target is a plain local address.
        Returns None for unreachable targets.
        """
        if self.addr_map is None:
            return self.ram, target, False
        from ..errors import AddressError, NetworkError

        try:
            node, local = self.addr_map.decode(target)
        except AddressError:
            return None
        if node == self.node_id:
            return self.ram, local, False
        if self.fabric is None:
            return None
        try:
            return self.fabric.node_ram(node), local, True
        except NetworkError:
            return None

    # ------------------------------------------------------------------
    # administration
    # ------------------------------------------------------------------

    def install_key(self, ctx_id: int, key: int) -> None:
        """Install the protection key for atomic context *ctx_id*."""
        if not 0 <= ctx_id < len(self.contexts):
            raise ConfigError(f"ctx {ctx_id} out of range")
        self.key_table[ctx_id] = key

    def assign_context(self, ctx_id: int, pid: int) -> AtomicContext:
        """Assign context *ctx_id* to process *pid*, resetting it."""
        if not 0 <= ctx_id < len(self.contexts):
            raise ConfigError(f"ctx {ctx_id} out of range")
        context = self.contexts[ctx_id]
        context.clear()
        context.owner_pid = pid
        return context

    def reset(self) -> None:
        """Power-on reset."""
        for context in self.contexts:
            context.clear()
            context.owner_pid = None
        self.key_table.clear()
        self.operations.clear()
        self.key_rejections = 0
        self.protocol_violations = 0
        self._control = {REG_TARGET: 0, REG_OPERAND: 0, REG_OPERAND2: 0,
                         REG_RESULT: 0}
