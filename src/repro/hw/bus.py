"""The I/O bus: device windows, MMIO routing, and per-access timing.

The paper's prototype hung a 12.5 MHz FPGA board off a TurboChannel bus;
the dominant cost of user-level DMA initiation is the handful of uncached
bus accesses it issues.  :class:`Bus` routes physical accesses either to
RAM or to an attached :class:`~repro.hw.device.MmioDevice`, and charges a
per-access cost from its :class:`BusTiming`.

Timing presets:

* :data:`TURBOCHANNEL_12_5` — the paper's measured configuration.
* :data:`PCI_33` / :data:`PCI_66` — the "modern faster buses" the paper
  says would shrink user-level initiation further (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import BusError, ConfigError
from ..sim.clock import Clock
from ..sim.stats import StatRegistry
from ..units import Time, mhz
from .device import AccessContext, MmioDevice
from .memory import PhysicalMemory


@dataclass(frozen=True)
class BusTiming:
    """Cycle counts for one bus generation.

    Attributes:
        name: preset name.
        frequency_hz: bus clock.
        device_read_cycles: bus cycles for an uncached device word read
            (includes the round trip back to the CPU).
        device_write_cycles: bus cycles for an uncached device word write
            (includes address/data phases and turnaround).
        ram_word_cycles: bus cycles per word when a bus master streams
            to/from RAM (used by the DMA data mover).
    """

    name: str
    frequency_hz: float
    device_read_cycles: int
    device_write_cycles: int
    ram_word_cycles: int

    def clock(self) -> Clock:
        """Build the clock domain for this bus."""
        return Clock(self.name, self.frequency_hz)


#: The paper's prototype: TurboChannel at 12.5 MHz (80 ns/cycle).  The
#: read/write cycle counts are calibrated so that the two-access extended
#: shadow sequence lands at Table 1's 1.1 us (see DESIGN.md §6).
TURBOCHANNEL_12_5 = BusTiming(
    name="turbochannel-12.5",
    frequency_hz=mhz(12.5),
    device_read_cycles=6,
    device_write_cycles=7,
    ram_word_cycles=1,
)

#: PCI at 33 MHz: same protocol-level cycle counts, 2.64x faster clock.
PCI_33 = BusTiming(
    name="pci-33",
    frequency_hz=mhz(33),
    device_read_cycles=6,
    device_write_cycles=7,
    ram_word_cycles=1,
)

#: PCI at 66 MHz, the fastest bus the paper mentions.
PCI_66 = BusTiming(
    name="pci-66",
    frequency_hz=mhz(66),
    device_read_cycles=6,
    device_write_cycles=7,
    ram_word_cycles=1,
)

BUS_PRESETS = {
    preset.name: preset
    for preset in (TURBOCHANNEL_12_5, PCI_33, PCI_66)
}


@dataclass(frozen=True)
class _Window:
    base: int
    size: int
    device: MmioDevice

    @property
    def limit(self) -> int:
        return self.base + self.size


class Bus:
    """Routes physical word accesses to RAM or device windows.

    RAM occupies [0, ram.size); device windows must not overlap RAM or each
    other.  Word accesses only — the CPU and DMA engine both speak 64-bit
    words to devices.
    """

    def __init__(self, ram: PhysicalMemory, timing: BusTiming,
                 stats: Optional[StatRegistry] = None) -> None:
        self.ram = ram
        self.timing = timing
        self.clock = timing.clock()
        self.stats = stats if stats is not None else StatRegistry("bus")
        self._windows: List[_Window] = []

    # -- topology ---------------------------------------------------------------

    def attach(self, device: MmioDevice, base: int, size: int) -> None:
        """Attach *device* at physical window [base, base+size).

        Raises:
            ConfigError: on overlap with RAM or an existing window.
        """
        if size <= 0:
            raise ConfigError(f"device window must be non-empty: {size}")
        if base < self.ram.size:
            raise ConfigError(
                f"device window {base:#x} overlaps RAM "
                f"(size {self.ram.size:#x})")
        new = _Window(base, size, device)
        for window in self._windows:
            if new.base < window.limit and window.base < new.limit:
                raise ConfigError(
                    f"window for {device.name} overlaps {window.device.name}")
        self._windows.append(new)
        self._windows.sort(key=lambda w: w.base)

    def find_window(self, paddr: int) -> Optional[Tuple[MmioDevice, int]]:
        """Return (device, offset) owning *paddr*, or None."""
        for window in self._windows:
            if window.base <= paddr < window.limit:
                return window.device, paddr - window.base
        return None

    def is_device(self, paddr: int) -> bool:
        """Whether *paddr* falls in any device window."""
        return self.find_window(paddr) is not None

    @property
    def devices(self) -> List[MmioDevice]:
        """All attached devices, in window order."""
        return [w.device for w in self._windows]

    # -- timed accesses ------------------------------------------------------------

    def read_word(self, paddr: int, ctx: AccessContext) -> Tuple[int, Time]:
        """Perform a word read; return (value, bus cost).

        RAM reads are charged one data cycle (the CPU-side cache model adds
        its own cost); device reads are charged the full uncached round
        trip.

        Raises:
            BusError: if *paddr* is neither RAM nor a device window.
        """
        hit = self.find_window(paddr)
        if hit is not None:
            device, offset = hit
            self.stats.counter("device_reads").add()
            value = device.mmio_read(offset, ctx)
            return value, self.clock.cycles(self.timing.device_read_cycles)
        if self.ram.contains(paddr, 8):
            self.stats.counter("ram_reads").add()
            return (self.ram.read_word(paddr),
                    self.clock.cycles(self.timing.ram_word_cycles))
        raise BusError(paddr, "read")

    def write_word(self, paddr: int, value: int,
                   ctx: AccessContext) -> Time:
        """Perform a word write; return the bus cost.

        Raises:
            BusError: if *paddr* is neither RAM nor a device window.
        """
        hit = self.find_window(paddr)
        if hit is not None:
            device, offset = hit
            self.stats.counter("device_writes").add()
            device.mmio_write(offset, value, ctx)
            return self.clock.cycles(self.timing.device_write_cycles)
        if self.ram.contains(paddr, 8):
            self.stats.counter("ram_writes").add()
            self.ram.write_word(paddr, value)
            return self.clock.cycles(self.timing.ram_word_cycles)
        raise BusError(paddr, "write")

    def dma_stream_cost(self, nbytes: int) -> Time:
        """Bus time for a DMA master to stream *nbytes* through RAM."""
        words = (nbytes + 7) // 8
        return self.clock.cycles(words * self.timing.ram_word_cycles)
