"""The CPU model.

Executes :class:`~repro.hw.isa.Program` instruction streams against an MMU,
a write buffer, and the I/O bus, advancing the simulation clock by a
calibrated per-instruction cost.  The model captures exactly the properties
the paper's protocols depend on:

* **Interruptibility** — the scheduler may preempt a thread *between* any
  two instructions (that is what breaks SHRIMP-2/FLASH without kernel
  hooks), but never inside a PAL call or a syscall, which execute as one
  indivisible :meth:`Cpu.step`.
* **Posted writes** — uncached stores land in the write buffer and reach
  the device later (in FIFO order), possibly collapsed, unless an ``MB``
  or an uncached load forces a drain.
* **Protection** — every user-mode access is checked by the MMU against
  the active page table, including accesses issued from PAL mode (PAL code
  is privileged only in that it cannot be interrupted; its loads and
  stores still translate through the user's mappings, which is precisely
  why the paper's PAL method is safe).

Costs are expressed in CPU cycles via :class:`CpuCosts` and converted
through the CPU clock domain; bus-side costs come from the bus itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Callable, Dict, List, Optional

from ..errors import ConfigError, PageFault, ProtectionFault, ReproError
from ..sim.clock import Clock
from ..sim.engine import Simulator
from ..sim.stats import StatRegistry
from ..sim.trace import TraceLog
from ..units import Time
from .bus import Bus
from .device import AccessContext
from .isa import (
    Add,
    Addr,
    Beq,
    Bne,
    CallPal,
    CompareExchange,
    Halt,
    Instruction,
    Jump,
    Load,
    Mb,
    Mov,
    Nop,
    Operand,
    PAL_MAX_INSTRUCTIONS,
    Program,
    Store,
    Syscall,
)
from .mmu import Mmu
from .pagetable import PageTable
from .writebuffer import WriteBuffer

WORD_MASK = (1 << 64) - 1

#: Signature of a registered syscall handler: (thread, cpu) -> result.
SyscallHandler = Callable[["Thread", "Cpu"], int]


@dataclass(frozen=True)
class CpuCosts:
    """Per-instruction cycle costs (CPU clock domain).

    Calibrated in :mod:`repro.core.timing`; see DESIGN.md §6.
    """

    base_cycles: float = 1.0
    mem_cycles: float = 2.0
    uncached_issue_cycles: float = 4.0
    mb_cycles: float = 3.0
    branch_cycles: float = 2.0
    pal_entry_cycles: float = 25.0
    pal_exit_cycles: float = 10.0
    syscall_entry_cycles: float = 1100.0
    syscall_exit_cycles: float = 1100.0


class StepStatus(Enum):
    """Outcome of executing one instruction."""

    RUNNING = auto()
    HALTED = auto()
    FAULTED = auto()


@dataclass
class Fault:
    """A memory-management fault delivered to a thread."""

    kind: str
    vaddr: int
    access: str
    pc: int


@dataclass
class Thread:
    """An executable context: program counter, registers, address space.

    Threads are owned by OS processes (:mod:`repro.os.process`); the CPU
    only needs the fields here.
    """

    pid: int
    page_table: PageTable
    program: Program
    pc: int = 0
    registers: Dict[str, int] = field(default_factory=dict)
    halted: bool = False
    fault: Optional[Fault] = None
    instructions_retired: int = 0

    def __post_init__(self) -> None:
        self.registers.setdefault("zero", 0)

    def reg(self, name: str) -> int:
        """Read register *name* (unset registers read as 0)."""
        if name == "zero":
            return 0
        return self.registers.get(name, 0)

    def set_reg(self, name: str, value: int) -> None:
        """Write register *name* (writes to ``zero`` are discarded)."""
        if name == "zero":
            return
        self.registers[name] = value & WORD_MASK

    def set_args(self, *values: int) -> None:
        """Load *values* into the argument registers a0, a1, ..."""
        if len(values) > 6:
            raise ConfigError(f"too many syscall/PAL args: {len(values)}")
        for index, value in enumerate(values):
            self.set_reg(f"a{index}", value)

    @property
    def done(self) -> bool:
        """Whether the thread can no longer run."""
        return self.halted or self.fault is not None

    def restart(self, program: Optional[Program] = None) -> None:
        """Reset control flow (and optionally swap the program)."""
        if program is not None:
            self.program = program
        self.pc = 0
        self.halted = False
        self.fault = None


class Cpu:
    """A single simulated processor.

    Args:
        sim: the discrete-event simulator (global clock).
        clock: the CPU clock domain.
        mmu: the memory-management unit.
        bus: the I/O bus (also reaches RAM).
        write_buffer: the posted-store buffer.
        costs: per-instruction cycle costs.
        trace: optional shared trace log.
        name: component name for stats/traces.
    """

    def __init__(self, sim: Simulator, clock: Clock, mmu: Mmu, bus: Bus,
                 write_buffer: WriteBuffer, costs: CpuCosts,
                 trace: Optional[TraceLog] = None, name: str = "cpu0",
                 cache=None) -> None:
        self.sim = sim
        self.clock = clock
        self.mmu = mmu
        self.bus = bus
        self.write_buffer = write_buffer
        self.costs = costs
        self.trace = trace if trace is not None else TraceLog()
        self.name = name
        #: Optional data cache (repro.hw.cache.DataCache); when present,
        #: cached RAM accesses pay its hit/miss cycles instead of the
        #: flat mem_cycles cost.
        self.cache = cache
        self.stats = StatRegistry(name)
        self._pal_functions: Dict[str, Program] = {}
        self._syscalls: Dict[str, SyscallHandler] = {}
        self._in_pal = False
        self._in_kernel = False
        self._current_thread: Optional[Thread] = None

    # -- configuration ---------------------------------------------------------

    def install_pal_function(self, name: str, program: Program) -> None:
        """Install a PAL call (super-user operation in the paper).

        Raises:
            ConfigError: if the program exceeds the 16-instruction PAL slot
                or contains nested CALL_PAL/SYSCALL instructions.
        """
        if len(program) > PAL_MAX_INSTRUCTIONS:
            raise ConfigError(
                f"PAL function {name!r} has {len(program)} instructions; "
                f"PAL calls are limited to {PAL_MAX_INSTRUCTIONS}")
        for instr in program.instructions:
            if isinstance(instr, (CallPal, Syscall)):
                raise ConfigError(
                    f"PAL function {name!r} may not trap or nest PAL calls")
        self._pal_functions[name] = program

    def register_syscall(self, name: str, handler: SyscallHandler) -> None:
        """Register the kernel handler for syscall *name*."""
        self._syscalls[name] = handler

    @property
    def pal_function_names(self) -> List[str]:
        """Installed PAL call names."""
        return sorted(self._pal_functions)

    def pal_function(self, name: str) -> Program:
        """The installed PAL program *name*.

        Raises:
            ConfigError: if no such PAL function is installed.
        """
        if name not in self._pal_functions:
            raise ConfigError(f"no PAL function {name!r} installed")
        return self._pal_functions[name]

    # -- execution ----------------------------------------------------------------

    def step(self, thread: Thread) -> StepStatus:
        """Execute one instruction of *thread*, advancing simulated time.

        The caller (scheduler) is responsible for having activated the
        thread's page table.  PAL calls and syscalls complete entirely
        within one step — this is the atomicity the paper leans on.
        """
        if thread.done:
            return StepStatus.HALTED if thread.halted else StepStatus.FAULTED
        if thread.pc >= len(thread.program):
            thread.halted = True
            return StepStatus.HALTED
        instr = thread.program.instructions[thread.pc]
        self._current_thread = thread
        try:
            next_pc = self._execute(thread, instr)
        except (PageFault, ProtectionFault) as exc:
            thread.fault = Fault(
                kind=type(exc).__name__,
                vaddr=exc.vaddr,
                access=exc.access,
                pc=thread.pc,
            )
            self.stats.counter("faults").add()
            self.trace.emit(self.sim.now, self.name, "fault",
                            pid=thread.pid, pc=thread.pc,
                            fault=thread.fault.kind, vaddr=exc.vaddr)
            return StepStatus.FAULTED
        finally:
            self._current_thread = None
        thread.pc = next_pc
        thread.instructions_retired += 1
        self.stats.counter("instructions").add()
        if thread.halted:
            return StepStatus.HALTED
        return StepStatus.RUNNING

    def run(self, thread: Thread, max_instructions: int = 1_000_000,
            ) -> StepStatus:
        """Run *thread* to completion (no preemption).

        Activates the thread's page table first, flushing the TLB only
        when the address space actually changes (so repeated runs by one
        process keep a warm TLB, as the paper's 1,000-iteration loops
        would).  Single-threaded convenience used by benchmarks and
        examples; multiprogrammed execution goes through
        :mod:`repro.os.scheduler`.

        Raises:
            ReproError: if the instruction budget is exhausted (runaway
                loop in a generated program).
        """
        switching = self.mmu.page_table is not thread.page_table
        self.mmu.activate(thread.page_table, flush=switching)
        for _ in range(max_instructions):
            status = self.step(thread)
            if status is not StepStatus.RUNNING:
                return status
        raise ReproError(
            f"thread {thread.pid} exceeded {max_instructions} instructions")

    # -- per-instruction semantics ---------------------------------------------------

    def _execute(self, thread: Thread, instr: Instruction) -> int:
        pc = thread.pc
        if isinstance(instr, Load):
            self._do_load(thread, instr.dst, instr.addr)
            return pc + 1
        if isinstance(instr, Store):
            self._do_store(thread, instr.addr, self._value(thread, instr.src))
            return pc + 1
        if isinstance(instr, CompareExchange):
            self._do_exchange(thread, instr.dst, instr.addr,
                              self._value(thread, instr.src))
            return pc + 1
        if isinstance(instr, Mb):
            self._advance_cycles(self.costs.mb_cycles)
            self._flush_write_buffer(thread)
            self.stats.counter("mbs").add()
            return pc + 1
        if isinstance(instr, Mov):
            thread.set_reg(instr.dst, self._value(thread, instr.src))
            self._advance_cycles(self.costs.base_cycles)
            return pc + 1
        if isinstance(instr, Add):
            total = self._value(thread, instr.a) + self._value(thread, instr.b)
            thread.set_reg(instr.dst, total)
            self._advance_cycles(self.costs.base_cycles)
            return pc + 1
        if isinstance(instr, Beq):
            self._advance_cycles(self.costs.branch_cycles)
            if self._value(thread, instr.a) == self._value(thread, instr.b):
                return thread.program.target(instr.target)
            return pc + 1
        if isinstance(instr, Bne):
            self._advance_cycles(self.costs.branch_cycles)
            if self._value(thread, instr.a) != self._value(thread, instr.b):
                return thread.program.target(instr.target)
            return pc + 1
        if isinstance(instr, Jump):
            self._advance_cycles(self.costs.branch_cycles)
            return thread.program.target(instr.target)
        if isinstance(instr, CallPal):
            self._do_call_pal(thread, instr.name)
            return pc + 1
        if isinstance(instr, Syscall):
            self._do_syscall(thread, instr.name)
            return pc + 1
        if isinstance(instr, Halt):
            thread.halted = True
            self._advance_cycles(self.costs.base_cycles)
            # The buffer keeps draining after the program ends; model it
            # as a final flush so no posted store is ever lost.
            self._flush_write_buffer(thread)
            return pc + 1
        if isinstance(instr, Nop):
            self._advance_cycles(self.costs.base_cycles)
            return pc + 1
        raise ConfigError(f"unknown instruction {instr!r}")

    # -- memory paths ------------------------------------------------------------------

    def _do_load(self, thread: Thread, dst: str, addr: Addr) -> None:
        vaddr = self._effective(thread, addr)
        translation = self.mmu.translate(vaddr, "read",
                                         user_mode=not self._in_kernel)
        self.sim.advance(translation.cost)
        paddr = translation.paddr
        if self.bus.is_device(paddr):
            forwarded = self.write_buffer.forward(paddr)
            if forwarded is not None:
                # Relaxed write buffer: the load is serviced from a
                # pending same-address store and never reaches the device
                # (footnote 6's failure mode).
                self._advance_cycles(self.costs.base_cycles)
                thread.set_reg(dst, forwarded)
                self.stats.counter("forwarded_loads").add()
                return
            if not self.write_buffer.relaxed:
                # Strongly ordered interface: drain before the load.
                self._flush_write_buffer(thread)
            self._advance_cycles(self.costs.base_cycles
                                 + self.costs.uncached_issue_cycles)
            value, bus_cost = self.bus.read_word(paddr, self._access_ctx(thread))
            self.sim.advance(bus_cost)
            self.stats.counter("uncached_loads").add()
        else:
            self._advance_cycles(self.costs.mem_cycles
                                 if self.cache is None
                                 else self.cache.access(paddr))
            value = self.bus.ram.read_word(paddr)
            self.stats.counter("loads").add()
        thread.set_reg(dst, value)

    def _do_store(self, thread: Thread, addr: Addr, value: int) -> None:
        vaddr = self._effective(thread, addr)
        translation = self.mmu.translate(vaddr, "write",
                                         user_mode=not self._in_kernel)
        self.sim.advance(translation.cost)
        paddr = translation.paddr
        if self.bus.is_device(paddr):
            self._advance_cycles(self.costs.base_cycles
                                 + self.costs.uncached_issue_cycles)
            room_cost = self.write_buffer.post(
                paddr, value & WORD_MASK, self._drain_fn(thread))
            # post() already advanced time inside the drain fn if it had
            # to make room; room_cost is informational.
            del room_cost
            self.stats.counter("uncached_stores").add()
        else:
            self._advance_cycles(self.costs.mem_cycles
                                 if self.cache is None
                                 else self.cache.access(paddr))
            self.bus.ram.write_word(paddr, value & WORD_MASK)
            self.stats.counter("stores").add()

    def _do_exchange(self, thread: Thread, dst: str, addr: Addr,
                     value: int) -> None:
        vaddr = self._effective(thread, addr)
        # An atomic RMW needs both read and write rights.
        translation = self.mmu.translate(vaddr, "write",
                                         user_mode=not self._in_kernel)
        self.mmu.translate(vaddr, "read", user_mode=not self._in_kernel)
        self.sim.advance(translation.cost)
        paddr = translation.paddr
        self._flush_write_buffer(thread)
        self._advance_cycles(self.costs.base_cycles
                             + self.costs.uncached_issue_cycles)
        hit = self.bus.find_window(paddr)
        if hit is not None:
            device, offset = hit
            exchange = getattr(device, "mmio_exchange", None)
            if exchange is None:
                from ..errors import DeviceError

                raise DeviceError(
                    f"device {device.name} does not support atomic exchange")
            old = exchange(offset, value & WORD_MASK, self._access_ctx(thread))
            cost = self.bus.clock.cycles(
                self.bus.timing.device_read_cycles
                + self.bus.timing.device_write_cycles - 4)
            self.sim.advance(cost)
        else:
            old = self.bus.ram.read_word(paddr)
            self.bus.ram.write_word(paddr, value & WORD_MASK)
            self._advance_cycles(self.costs.mem_cycles)
        thread.set_reg(dst, old)
        self.stats.counter("exchanges").add()

    def _drain_fn(self, thread: Thread):
        """Build the write-buffer drain callback for *thread*'s stores."""

        def drain(paddr: int, value: int) -> Time:
            cost = self.bus.write_word(paddr, value, self._access_ctx(thread))
            self.sim.advance(cost)
            return cost

        return drain

    def _flush_write_buffer(self, thread: Thread) -> None:
        self.write_buffer.flush(self._drain_fn(thread))

    def drain_write_buffer(self, thread: Thread) -> None:
        """Flush posted stores on behalf of *thread* (scheduler use).

        The hardware keeps draining across a context switch; the scheduler
        calls this before swapping address spaces so a preempted thread's
        posted stores still reach the device in order.
        """
        self._flush_write_buffer(thread)

    # -- traps ----------------------------------------------------------------------------

    def _do_call_pal(self, thread: Thread, name: str) -> None:
        if name not in self._pal_functions:
            raise ConfigError(f"no PAL function {name!r} installed")
        if self._in_pal:
            raise ConfigError("nested PAL calls are not allowed")
        self.stats.counter("pal_calls").add()
        self._advance_cycles(self.costs.pal_entry_cycles)
        pal_program = self._pal_functions[name]
        self._in_pal = True
        saved_program, saved_pc = thread.program, thread.pc
        try:
            thread.program, thread.pc = pal_program, 0
            # Execute the entire PAL body inside this one step():
            # uninterruptible by construction.
            guard = 4 * PAL_MAX_INSTRUCTIONS
            while thread.pc < len(pal_program) and not thread.halted:
                instr = pal_program.instructions[thread.pc]
                thread.pc = self._execute(thread, instr)
                guard -= 1
                if guard <= 0:
                    raise ConfigError(
                        f"PAL function {name!r} looped past its slot")
        finally:
            self._in_pal = False
            thread.program, thread.pc = saved_program, saved_pc
            thread.halted = False
        self._advance_cycles(self.costs.pal_exit_cycles)

    def _do_syscall(self, thread: Thread, name: str) -> None:
        if name not in self._syscalls:
            raise ConfigError(f"no syscall {name!r} registered")
        self.stats.counter("syscalls").add()
        self._advance_cycles(self.costs.syscall_entry_cycles)
        self._in_kernel = True
        try:
            result = self._syscalls[name](thread, self)
        finally:
            self._in_kernel = False
        thread.set_reg("v0", result & WORD_MASK)
        self._advance_cycles(self.costs.syscall_exit_cycles)

    # -- helpers ---------------------------------------------------------------------------

    @property
    def in_kernel(self) -> bool:
        """Whether a syscall handler is currently executing."""
        return self._in_kernel

    def _access_ctx(self, thread: Thread) -> AccessContext:
        return AccessContext(issuer=thread.pid, kernel=self._in_kernel,
                             when=self.sim.now)

    def _advance_cycles(self, cycles: float) -> None:
        self.sim.advance(self.clock.cycles(cycles))

    @staticmethod
    def _value(thread: Thread, operand: Operand) -> int:
        if isinstance(operand, str):
            return thread.reg(operand)
        return operand & WORD_MASK

    @staticmethod
    def _effective(thread: Thread, addr: Addr) -> int:
        base = thread.reg(addr.base) if addr.base is not None else 0
        return (base + addr.disp) & WORD_MASK
