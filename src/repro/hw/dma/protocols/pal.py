"""The PAL-code method (§2.7).

Hardware-wise this is *identical* to SHRIMP-2: a STORE/LOAD pair over a
single pending latch.  The difference is entirely on the software side —
the pair executes inside a DEC Alpha PAL call, which cannot be
interrupted, so the race SHRIMP-2 needs a kernel hook to close simply
cannot occur.  :mod:`repro.core.methods` builds the user program as a
``CALL_PAL`` and the machine installs the two-instruction PAL function;
this subclass exists so traces, stats, and initiation records name the
method correctly.
"""

from __future__ import annotations

from .shrimp2 import PendingPairProtocol


class PalProtocol(PendingPairProtocol):
    """SHRIMP-2 hardware driven from an uninterruptible PAL call."""

    name = "pal"
