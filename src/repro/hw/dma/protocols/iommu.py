"""IOMMU virtual-address DMA initiation.

The two-instruction extended-shadow sequence (§3.2), but the argument a
process names is its own **virtual** buffer address (an IOVA), not a
physical one:

* ``STORE size TO shadow(vdestination)`` — latches (destination IOVA,
  size) in the register context named by the shadow address bits;
* ``LOAD FROM shadow(vsource)`` — pairs the load's source IOVA with the
  latch of the same context and attempts the start.

At start time the engine walks the kernel-managed per-context I/O page
table (:class:`~repro.hw.iommu.Iommu`): both ranges must translate with
the needed permission, or the initiation is aborted with **nothing
moved** — the same all-or-nothing contract as the ``page_bounded``
hardening.  Translations are cached in a small IOTLB; the kernel's
unmap explicitly shoots the stale entry down.

Construct with ``shootdown=False`` for the deliberately-weakened
variant (``iommu_noshootdown``): unmap removes the page-table entry but
leaves any cached IOTLB translation to rot, so a context that recently
used a since-revoked mapping can keep transferring through it.  The
synthesis hunt must rediscover that as UNSAFE.

Setup ops (kernel-side, untimed — see :class:`~repro.hw.dma.recognizer.
SetupOp`):

* ``("iommu-map", (ctx_id, iova_page, phys_page, writable))``
* ``("iommu-unmap", (ctx_id, iova_page))``
* ``("iommu-warm", (ctx_id, iova_page))`` — pre-fill the IOTLB,
  modelling translation traffic from earlier DMA activity;
* ``("iommu-inval", ())`` or ``("iommu-inval", (ctx_id,))`` — explicit
  IOTLB invalidation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ....errors import ConfigError
from ...iommu import Iommu
from ..recognizer import InitiationProtocol, SetupOp, ShadowAccess
from ..status import STATUS_FAILURE


@dataclass
class _Latch:
    iova_dst: int
    size: int


class IommuProtocol(InitiationProtocol):
    """Two-instruction initiation over IOVAs with engine-side translation."""

    def __init__(self, shootdown: bool = True) -> None:
        super().__init__()
        self.name = "iommu" if shootdown else "iommu_noshootdown"
        self.shootdown = shootdown
        self.iommu = Iommu(shootdown=shootdown)
        self.translation_faults = 0
        self.ctx_mismatches = 0
        self.empty_loads = 0
        self._latches: Dict[int, _Latch] = {}

    # -- the shadow region -------------------------------------------------

    def on_shadow_store(self, access: ShadowAccess) -> None:
        if access.ctx_id >= self.engine.layout.n_contexts:
            self.ctx_mismatches += 1
            return
        self._latches[access.ctx_id] = _Latch(iova_dst=access.paddr,
                                              size=access.data)

    def on_shadow_load(self, access: ShadowAccess) -> int:
        latch = self._latches.pop(access.ctx_id, None)
        if latch is None:
            self.empty_loads += 1
            return STATUS_FAILURE
        pdst = self.iommu.translate(access.ctx_id, latch.iova_dst,
                                    latch.size, write=True)
        psrc = self.iommu.translate(access.ctx_id, access.paddr,
                                    latch.size, write=False)
        if pdst is None or psrc is None:
            # Translation fault: abort with nothing moved — no start
            # attempt ever reaches the mover or the record log.
            self.translation_faults += 1
            return STATUS_FAILURE
        ctx = None
        if access.ctx_id < self.engine.layout.n_contexts:
            ctx = self.engine.contexts[access.ctx_id]
        return self.engine.try_start(psrc=psrc, pdst=pdst, size=latch.size,
                                     ctx=ctx, issuer=access.issuer)

    # -- kernel-managed setup ----------------------------------------------

    def apply_setup(self, op: SetupOp) -> None:
        if op.kind == "iommu-map":
            ctx_id, iova_page, phys_page, writable = op.args
            self.iommu.map(ctx_id, iova_page, phys_page, writable)
        elif op.kind == "iommu-unmap":
            ctx_id, iova_page = op.args
            self.iommu.unmap(ctx_id, iova_page)
        elif op.kind == "iommu-warm":
            ctx_id, iova_page = op.args
            self.iommu.warm(ctx_id, iova_page)
        elif op.kind == "iommu-inval":
            self.iommu.invalidate(*op.args)
        else:
            raise ConfigError(
                f"protocol {self.name} accepts no setup op {op.kind!r}")

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        self.iommu = Iommu(shootdown=self.shootdown)
        self.translation_faults = 0
        self.ctx_mismatches = 0
        self.empty_loads = 0
        self._latches = {}

    def state_label(self) -> str:
        """Which contexts currently hold an (IOVA destination, size) latch."""
        if not self._latches:
            return "idle"
        return "latched:" + ",".join(
            str(ctx_id) for ctx_id in sorted(self._latches))

    # -- snapshot/restore --------------------------------------------------

    def snapshot_state(self):
        # _Latch instances are never mutated after creation (stores
        # replace whole entries), so a shallow dict copy suffices; the
        # IOMMU snapshots its tables, IOTLB order, and counters.
        return (dict(self._latches), self.iommu.snapshot(),
                self.translation_faults, self.ctx_mismatches,
                self.empty_loads)

    def restore_state(self, state) -> None:
        latches, iommu_state, faults, mismatches, empty = state
        self._latches = dict(latches)
        self.iommu.restore(iommu_state)
        self.translation_faults = faults
        self.ctx_mismatches = mismatches
        self.empty_loads = empty

    def state_fingerprint(self):
        return (tuple(sorted(
                    (ctx_id, latch.iova_dst, latch.size)
                    for ctx_id, latch in self._latches.items())),
                self.iommu.fingerprint())
