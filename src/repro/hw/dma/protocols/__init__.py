"""Initiation-protocol state machines, one per method in the paper.

==================  =========================================  ============
Module              Method                                     Paper section
==================  =========================================  ============
``kernel``          no user-level DMA (baseline engine)        §2.2 / Fig. 1
``shrimp1``         mapped-out pages, one atomic access        §2.4
``shrimp2``         STORE+LOAD pair, kernel abort hook         §2.5 / Fig. 2
``flash``           current-process register, kernel hook      §2.6
``pal``             STORE+LOAD pair inside a PAL call          §2.7
``keyed``           register contexts guarded by secret keys   §3.1 / Fig. 3
``extshadow``       CONTEXT_ID bits in the shadow address      §3.2 / Fig. 4
``repeated``        repeated argument passing (3/4/5 instr.)   §3.3 / Fig. 7
``iommu``           IOVA arguments, engine-side translation    modern (ours)
``capio``           capability tokens with epoch revocation    modern (ours)
==================  =========================================  ============
"""

from .capio import CapioProtocol, pack_cap_word, unpack_cap_word
from .extshadow import ExtendedShadowProtocol
from .flash import FlashProtocol
from .iommu import IommuProtocol
from .kernel import KernelOnlyProtocol
from .keyed import KeyedProtocol, pack_key_word, unpack_key_word
from .pal import PalProtocol
from .repeated import RepeatedPassingProtocol
from .shrimp1 import MappedOutProtocol
from .shrimp2 import PendingPairProtocol

__all__ = [
    "CapioProtocol",
    "ExtendedShadowProtocol",
    "FlashProtocol",
    "IommuProtocol",
    "KernelOnlyProtocol",
    "KeyedProtocol",
    "MappedOutProtocol",
    "PalProtocol",
    "PendingPairProtocol",
    "RepeatedPassingProtocol",
    "pack_cap_word",
    "pack_key_word",
    "unpack_cap_word",
    "unpack_key_word",
]
