"""Repeated passing of arguments (§3.3, Figs. 5-7).

The engine watches the raw stream of shadow accesses for a fixed
STORE/LOAD pattern in which the two argument addresses are passed
*repeatedly*; the DMA starts only when every repetition matches.  A
process that was preempted mid-sequence almost certainly leaves a broken
pattern behind, so no mixed-argument DMA fires — and the legitimate
process simply retries on DMA_FAILURE (Fig. 7's loop).

Three variants, selectable with ``length``:

* ``3`` — Dubnicki's original LOAD / STORE / LOAD with matching first and
  third addresses.  **Exploitable** (Fig. 5): an adversary can complete a
  stale prefix and direct the victim's destination at its own source.
* ``4`` — STORE / LOAD / STORE / LOAD.  Safe against address mixing but an
  adversary with read access to the source can *steal the start* and leave
  the victim believing the DMA failed (Fig. 6).
* ``5`` — STORE / LOAD / STORE / LOAD / LOAD, destination passed three
  times, source twice (Fig. 7).  The paper's §3.3.1 argument (checked
  exhaustively by :mod:`repro.verify.model_check`) shows any started DMA
  had all five accesses issued by one process.

State-machine conventions:

* Any access that breaks the expected pattern resets the recognizer, and
  the breaking access is then reconsidered as the possible first access of
  a fresh attempt (a store for the 4/5-variants, a load for the
  3-variant).
* In-sequence intermediate loads return the distinguished
  :data:`STATUS_PENDING` word; pattern-breaking loads return
  :data:`STATUS_FAILURE`; the final load returns the start status (bytes
  remaining).  PENDING must be distinguishable from a started transfer or
  an adversary can fabricate a phantom success (see
  repro.hw.dma.status).
* The size word must repeat along with the destination address (the paper
  only states the address constraint; requiring the size to match as well
  strictly strengthens the check and costs nothing).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ....errors import ConfigError
from ..recognizer import InitiationProtocol, ShadowAccess
from ..status import STATUS_FAILURE, STATUS_PENDING

#: op pattern per variant: 'S' = shadow store, 'L' = shadow load.
_PATTERNS = {
    3: ("L", "S", "L"),
    4: ("S", "L", "S", "L"),
    5: ("S", "L", "S", "L", "L"),
}


class RepeatedPassingProtocol(InitiationProtocol):
    """The repeated-argument-passing sequence recognizer.

    Args:
        length: 3, 4, or 5 — the variant.
        require_size_repeat: also require the size word to repeat with
            the destination address (the default, and our strengthening
            of the paper's address-only constraint).  Disabling it
            models a paper-literal engine; the ablation tests show such
            an engine can fire with a *stale* size when a process
            abandons an attempt and restarts with a different length —
            a self-inflicted overrun the strict check prevents.
    """

    def __init__(self, length: int = 5,
                 require_size_repeat: bool = True) -> None:
        super().__init__()
        if length not in _PATTERNS:
            raise ConfigError(
                f"repeated-passing variant must be 3, 4, or 5, got {length}")
        self.length = length
        self.require_size_repeat = require_size_repeat
        self.name = f"repeated{length}"
        self.pattern: Tuple[str, ...] = _PATTERNS[length]
        self.resets = 0
        self.sequences_completed = 0
        #: Per completed sequence, the issuer pids of its five (or 3/4)
        #: accesses — tracing/verification only, never used by the FSM.
        self.completed_contributors: List[Tuple[Optional[int], ...]] = []
        self._pos = 0
        self._src: Optional[int] = None
        self._dst: Optional[int] = None
        self._size: Optional[int] = None
        self._issuers: List[Optional[int]] = []

    # ------------------------------------------------------------------

    def on_shadow_store(self, access: ShadowAccess) -> None:
        if self.pattern[self._pos] != "S" or not self._store_matches(access):
            self._reset_state()
            # A store can always open a fresh attempt in the S-first
            # variants; in the L-first variant it just resets.
            if self.pattern[0] != "S":
                return
        self._accept_store(access)

    def on_shadow_load(self, access: ShadowAccess) -> int:
        if self.pattern[self._pos] != "L" or not self._load_matches(access):
            self._reset_state()
            if self.pattern[0] != "L":
                return STATUS_FAILURE
            # The 3-variant starts with a load: reconsider this access as
            # a fresh attempt's first instruction.
            self._accept_load_slot(access)
            return STATUS_PENDING
        return self._accept_load(access)

    # ------------------------------------------------------------------
    # pattern matching
    # ------------------------------------------------------------------

    def _store_matches(self, access: ShadowAccess) -> bool:
        """Whether an in-turn store satisfies the repetition constraints."""
        if self._dst is None:
            # First store of the attempt (position 0 in the S-first
            # variants, position 1 in the L-first 3-variant).
            return True
        # Every later store must repeat the latched destination (and,
        # under the strict check, the size word too).
        if access.paddr != self._dst:
            return False
        return (not self.require_size_repeat
                or access.data == self._size)

    def _load_matches(self, access: ShadowAccess) -> bool:
        """Whether an in-turn load satisfies the repetition constraints."""
        expected = self._expected_load_addr()
        return expected is None or access.paddr == expected

    def _expected_load_addr(self) -> Optional[int]:
        """Which address the load at the current position must repeat."""
        if self.length == 3:
            # L S L : the final load repeats the first load's source.
            return self._src if self._pos == 2 else None
        if self.length == 4:
            # S L S L : the final load repeats the source.
            return self._src if self._pos == 3 else None
        # S L S L L : load@3 repeats the source, load@4 the destination.
        if self._pos == 3:
            return self._src
        if self._pos == 4:
            return self._dst
        return None

    # ------------------------------------------------------------------
    # acceptance
    # ------------------------------------------------------------------

    def _accept_store(self, access: ShadowAccess) -> None:
        if self._dst is None:
            self._dst = access.paddr
            self._size = access.data
        self._pos += 1
        self._issuers.append(access.issuer)
        # Stores never terminate a pattern in any variant.

    def _accept_load(self, access: ShadowAccess) -> int:
        self._accept_load_slot(access)
        if self._pos < self.length:
            return STATUS_PENDING
        # Pattern complete: fire (a completion is not a "reset").
        psrc, pdst, size = self._src, self._dst, self._size
        contributors = tuple(self._issuers)
        self._clear_state()
        self.sequences_completed += 1
        self.completed_contributors.append(contributors)
        assert psrc is not None and pdst is not None and size is not None
        return self.engine.try_start(psrc=psrc, pdst=pdst, size=size,
                                     issuer=access.issuer)

    def _accept_load_slot(self, access: ShadowAccess) -> None:
        if self._source_slot():
            self._src = access.paddr
        self._pos += 1
        self._issuers.append(access.issuer)

    def _source_slot(self) -> bool:
        """Whether the load at the current position defines the source."""
        if self.length == 3:
            return self._pos == 0
        return self._pos == 1

    def _reset_state(self) -> None:
        if self._pos != 0:
            self.resets += 1
        self._clear_state()

    def _clear_state(self) -> None:
        self._pos = 0
        self._src = None
        self._dst = None
        self._size = None
        self._issuers = []

    def reset(self) -> None:
        self._pos = 0
        self._src = None
        self._dst = None
        self._size = None
        self._issuers = []
        self.resets = 0
        self.sequences_completed = 0
        self.completed_contributors = []

    # ------------------------------------------------------------------

    def state_snapshot(self) -> List[Optional[int]]:
        """(pos, src, dst, size) — inspection hook for tests."""
        return [self._pos, self._src, self._dst, self._size]

    def state_label(self) -> str:
        """Recognizer position plus which arguments are latched."""
        if self._pos == 0:
            return "idle"
        latched = ("S" if self._src is not None else "-") + (
            "D" if self._dst is not None else "-")
        return f"pos{self._pos}/{self.length}:{latched}"

    # -- snapshot/restore -----------------------------------------------

    def snapshot_state(self):
        # completed_contributors is append-only: capture its length and
        # truncate on restore instead of copying the whole list.
        return (self._pos, self._src, self._dst, self._size,
                tuple(self._issuers), self.resets,
                self.sequences_completed, len(self.completed_contributors))

    def restore_state(self, state) -> None:
        (self._pos, self._src, self._dst, self._size, issuers,
         self.resets, self.sequences_completed, n_completed) = state
        self._issuers = list(issuers)
        del self.completed_contributors[n_completed:]

    def state_fingerprint(self):
        # The in-progress pattern state and the completed-contributor
        # history both matter: the former drives future transitions, the
        # latter feeds the single-issuer property at every leaf.  The
        # resets/sequences_completed counters are pure statistics.
        return (self._pos, self._src, self._dst, self._size,
                tuple(self._issuers), tuple(self.completed_contributors))
