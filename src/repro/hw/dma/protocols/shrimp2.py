"""The second SHRIMP solution: a STORE/LOAD pair (§2.5, Fig. 2).

The engine keeps **one** pending-argument latch:

* ``STORE size TO shadow(vdestination)`` latches (destination, size);
* ``LOAD FROM shadow(vsource)`` pairs the latched destination with the
  load's source and starts the DMA, returning the status.

The latch is the protocol's whole weakness: if the storing process is
preempted before its load, another process's store overwrites the latch
(or another process's load consumes it), and arguments from two processes
mix — Blumrich et al.'s fix is the kernel modification that invalidates
the latch on every context switch, modelled here by
:meth:`on_abort_pending` which the scheduler hook drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..recognizer import InitiationProtocol, ShadowAccess
from ..status import STATUS_FAILURE


@dataclass
class PendingStore:
    """The latched (destination, size) of a half-started initiation."""

    pdst: int
    size: int
    issuer: Optional[int]  # tracing only; never used for decisions


class PendingPairProtocol(InitiationProtocol):
    """SHRIMP-2: one global pending latch, no process discrimination."""

    name = "shrimp2"

    def __init__(self) -> None:
        super().__init__()
        self.pending: Optional[PendingStore] = None
        self.aborts = 0
        self.empty_loads = 0

    def on_shadow_store(self, access: ShadowAccess) -> None:
        # A new store simply replaces whatever was latched.
        self.pending = PendingStore(pdst=access.paddr, size=access.data,
                                    issuer=access.issuer)

    def on_shadow_load(self, access: ShadowAccess) -> int:
        if self.pending is None:
            self.empty_loads += 1
            return STATUS_FAILURE
        pending, self.pending = self.pending, None
        return self.engine.try_start(
            psrc=access.paddr, pdst=pending.pdst, size=pending.size,
            issuer=access.issuer)

    def on_abort_pending(self) -> None:
        """The SHRIMP kernel modification: invalidate half-started DMAs."""
        if self.pending is not None:
            self.aborts += 1
            self.pending = None

    def reset(self) -> None:
        self.pending = None
        self.aborts = 0
        self.empty_loads = 0

    def snapshot_state(self):
        # PendingStore instances are never mutated after creation (stores
        # replace the whole latch), so capturing the reference is safe.
        return (self.pending, self.aborts, self.empty_loads)

    def restore_state(self, state) -> None:
        self.pending, self.aborts, self.empty_loads = state

    def state_fingerprint(self):
        # The latch is the only state a decision reads; the counters are
        # pure statistics.
        if self.pending is None:
            return None
        return (self.pending.pdst, self.pending.size, self.pending.issuer)
