"""Key-based user-level DMA (§3.1, Fig. 3).

Each process that may start user-level DMAs owns one register context and
a secret key, both handed out by the OS.  Address arguments travel in
shadow **stores** whose data word carries ``key # context_id``; the engine
accepts the argument into the named context only when the key matches the
one the OS installed in the (user-unreadable) key table.  The size is a
plain store to the context page, and a load from the context page starts
the DMA and returns the status.

Data-word layout (the paper: "close to 60 bits available for the key
field" on 64-bit machines)::

    63                    4  3     1  0
    +----------------------+--------+---+
    |      key (60 bits)   | ctx(3) |arg|
    +----------------------+--------+---+

``arg`` selects which address register the store fills (0 = destination,
1 = source) so a retried or aborted sequence can never leave the context
expecting the "wrong next argument" — each store is self-describing.

Atomicity needs no kernel help: a preempted process's arguments sit in
*its own* context, where no other process's accesses can land (no other
process has the key, and the context page is mapped only in the owner).
"""

from __future__ import annotations

from typing import Tuple

from ....errors import ConfigError
from ..contexts import RegisterContext
from ..recognizer import InitiationProtocol, ShadowAccess
from ..status import STATUS_FAILURE

#: Destination-address argument selector.
ARG_DESTINATION = 0
#: Source-address argument selector.
ARG_SOURCE = 1

_CTX_SHIFT = 1
_CTX_BITS = 3
_KEY_SHIFT = _CTX_SHIFT + _CTX_BITS
_CTX_MASK = (1 << _CTX_BITS) - 1
KEY_FIELD_BITS = 64 - _KEY_SHIFT


def pack_key_word(key: int, ctx_id: int, arg: int) -> int:
    """Build the ``key#context_id`` data word for a shadow store.

    Raises:
        ConfigError: if any field overflows its width.
    """
    if not 0 <= key < (1 << KEY_FIELD_BITS):
        raise ConfigError(f"key {key:#x} overflows {KEY_FIELD_BITS} bits")
    if not 0 <= ctx_id <= _CTX_MASK:
        raise ConfigError(f"ctx_id {ctx_id} overflows {_CTX_BITS} bits")
    if arg not in (ARG_DESTINATION, ARG_SOURCE):
        raise ConfigError(f"arg selector must be 0 or 1, got {arg}")
    return (key << _KEY_SHIFT) | (ctx_id << _CTX_SHIFT) | arg


def unpack_key_word(word: int) -> Tuple[int, int, int]:
    """Split a data word into (key, ctx_id, arg)."""
    return (word >> _KEY_SHIFT,
            (word >> _CTX_SHIFT) & _CTX_MASK,
            word & 1)


class KeyedProtocol(InitiationProtocol):
    """The key-based register-context method."""

    name = "keyed"

    def __init__(self) -> None:
        super().__init__()
        self.key_rejections = 0

    # -- argument passing over shadow stores --------------------------------

    def on_shadow_store(self, access: ShadowAccess) -> None:
        key, ctx_id, arg = unpack_key_word(access.data)
        contexts = self.engine.contexts
        if ctx_id >= len(contexts):
            self.key_rejections += 1
            return
        expected = self.engine.key_table.get(ctx_id, 0)
        if expected == 0 or key != expected:
            # Wrong or missing key: the argument is silently dropped; the
            # attacker learns nothing (stores have no return path).
            self.key_rejections += 1
            return
        context = contexts[ctx_id]
        if arg == ARG_SOURCE:
            context.src = access.paddr
        else:
            context.dst = access.paddr
        context.failed = False

    def on_shadow_load(self, access: ShadowAccess) -> int:
        # Loads from the shadow region play no role in this method.
        return STATUS_FAILURE

    # -- the register-context page ---------------------------------------------

    def on_context_store(self, ctx: RegisterContext, offset: int,
                         value: int, access: ShadowAccess) -> None:
        # §3.1: every store to the context page reaches the size register
        # only; source/destination are unreachable by regular stores.
        ctx.size = value
        ctx.failed = False

    def on_context_load(self, ctx: RegisterContext, offset: int,
                        access: ShadowAccess) -> int:
        if ctx.args_complete:
            # Fig. 3's final LOAD: fire the DMA and report the outcome.
            assert ctx.src is not None and ctx.dst is not None
            assert ctx.size is not None
            status = self.engine.try_start(
                psrc=ctx.src, pdst=ctx.dst, size=ctx.size,
                ctx=ctx, issuer=access.issuer)
            ctx.clear_args()
            return status
        if ctx.transfer is not None or ctx.failed:
            # Polling path: §3.1's "bytes that need to be transferred
            # yet" (-1 on failure, 0 once complete).
            return ctx.status_word(access.when)
        # Nothing latched and nothing ever ran: the initiation attempt
        # did not happen (e.g. the key was wrong and the address
        # arguments were dropped) — report failure, not completion.
        return STATUS_FAILURE

    def reset(self) -> None:
        self.key_rejections = 0

    def state_label(self) -> str:
        """Which contexts hold partially or fully latched arguments."""
        parts = []
        for ctx in self.engine.contexts:
            if ctx.src is None and ctx.dst is None and ctx.size is None:
                continue
            parts.append(f"ctx{ctx.ctx_id}:"
                         + ("S" if ctx.src is not None else "-")
                         + ("D" if ctx.dst is not None else "-")
                         + ("Z" if ctx.size is not None else "-"))
        return " ".join(parts) if parts else "idle"

    def snapshot_state(self):
        # All decision state lives in the engine's register contexts and
        # key table, both captured by the engine's own snapshot.
        return self.key_rejections

    def restore_state(self, state) -> None:
        self.key_rejections = state

    def state_fingerprint(self):
        return ()
