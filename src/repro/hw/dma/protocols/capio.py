"""Capability-checked DMA initiation (CAPIO-style kernel bypass).

The kernel mints one **capability** per DMA buffer: an identifier plus
(base, limit, rights) and an unforgeable secret nonce, bound to the
register context (and process) it was minted for.  Address arguments
travel in shadow stores whose data word is a capability *token* — the
capability id, the epoch it was minted under, and the nonce — while the
shadow address bits carry the byte **offset** into the capability's
buffer.  The engine validates every token against its capability table:
unknown id, wrong nonce, stale epoch, out-of-bounds offset, or missing
rights all drop the argument silently (the keyed method's "attacker
learns nothing" contract).  The size is a plain store to the context
page, and a load from the context page re-validates both capabilities
(epoch and bounds, now including the size) before starting the DMA —
so a revocation between argument passing and start still wins.

Token word layout (64 bits)::

    63                 11 10      7 6        1  0
    +--------------------+---------+----------+---+
    |   nonce (53 bits)  | epoch(4)| cap_id(6)|arg|
    +--------------------+---------+----------+---+

Revocation is **by epoch**: the kernel bumps the capability's epoch and
every token minted earlier stops validating.  Construct with
``epoch_check=False`` for the deliberately-weakened variant
(``capio_noepoch``) where stale tokens keep working after revocation —
the synthesis hunt must rediscover that as UNSAFE.

Setup ops (kernel-side, untimed — see :class:`~repro.hw.dma.recognizer.
SetupOp`):

* ``("cap-mint", (cap_id, owner_ctx, owner_pid, base, limit,
  readable, writable, nonce))``
* ``("cap-revoke", (cap_id,))``

For verification bookkeeping the protocol records, per started DMA, the
pids whose accesses assembled it (``completed_contributors``) and the
pid the capabilities were minted for (``completed_authority``) — the
single-issuer property attributes capability-bearing completions to the
minting process, never to influence a protocol decision.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ....errors import ConfigError
from ..contexts import RegisterContext
from ..recognizer import InitiationProtocol, SetupOp, ShadowAccess
from ..status import STATUS_FAILURE
from .keyed import ARG_DESTINATION, ARG_SOURCE

_CAP_SHIFT = 1
_CAP_BITS = 6
_EPOCH_SHIFT = _CAP_SHIFT + _CAP_BITS
_EPOCH_BITS = 4
_NONCE_SHIFT = _EPOCH_SHIFT + _EPOCH_BITS
_CAP_MASK = (1 << _CAP_BITS) - 1
_EPOCH_MASK = (1 << _EPOCH_BITS) - 1
NONCE_FIELD_BITS = 64 - _NONCE_SHIFT


def pack_cap_word(cap_id: int, epoch: int, nonce: int, arg: int) -> int:
    """Build a capability token word for a shadow store.

    Raises:
        ConfigError: if any field overflows its width.
    """
    if not 0 <= cap_id <= _CAP_MASK:
        raise ConfigError(f"cap_id {cap_id} overflows {_CAP_BITS} bits")
    if epoch < 0:
        raise ConfigError(f"epoch {epoch} must be non-negative")
    if not 0 <= nonce < (1 << NONCE_FIELD_BITS):
        raise ConfigError(
            f"nonce {nonce:#x} overflows {NONCE_FIELD_BITS} bits")
    if arg not in (ARG_DESTINATION, ARG_SOURCE):
        raise ConfigError(f"arg selector must be 0 or 1, got {arg}")
    return ((nonce << _NONCE_SHIFT)
            | ((epoch & _EPOCH_MASK) << _EPOCH_SHIFT)
            | (cap_id << _CAP_SHIFT) | arg)


def unpack_cap_word(word: int) -> Tuple[int, int, int, int]:
    """Split a token word into (cap_id, epoch, nonce, arg)."""
    return ((word >> _CAP_SHIFT) & _CAP_MASK,
            (word >> _EPOCH_SHIFT) & _EPOCH_MASK,
            word >> _NONCE_SHIFT,
            word & 1)


@dataclass(frozen=True)
class Capability:
    """One capability-table entry.

    Attributes:
        base: physical base of the buffer the capability covers.
        limit: buffer length in bytes (valid offsets are [0, limit)).
        readable / writable: what DMA may do through this capability.
        epoch: current epoch; tokens carrying an older epoch are stale.
        nonce: the unforgeable secret embedded in valid tokens.
        owner_ctx: register context arguments latch into — a token can
            never steer another process's context.
        owner_pid: the process the kernel minted the capability for
            (verification bookkeeping only; never a protocol decision).
    """

    base: int
    limit: int
    readable: bool
    writable: bool
    epoch: int
    nonce: int
    owner_ctx: int
    owner_pid: Optional[int] = None


@dataclass(frozen=True)
class _ArgRef:
    """Provenance of one latched argument (for fire-time re-validation)."""

    cap_id: int
    epoch: int
    offset: int
    issuer: Optional[int]


class CapioProtocol(InitiationProtocol):
    """The capability-checked register-context method."""

    def __init__(self, epoch_check: bool = True) -> None:
        super().__init__()
        self.name = "capio" if epoch_check else "capio_noepoch"
        self.epoch_check = epoch_check
        self.cap_rejections = 0
        self._caps: Dict[int, Capability] = {}
        # ctx_id -> {"src"/"dst": _ArgRef} for latched arguments.
        self._arg_refs: Dict[int, Dict[str, _ArgRef]] = {}
        self._size_issuers: Dict[int, Optional[int]] = {}
        #: Per started DMA: (src, dst, size, load) issuer pids.
        self.completed_contributors: List[Tuple[Optional[int], ...]] = []
        #: Per started DMA: the minting pid when both capabilities share
        #: one owner, else None.
        self.completed_authority: List[Optional[int]] = []

    # -- token validation --------------------------------------------------

    def _validate(self, ref: _ArgRef, size: int,
                  write: bool) -> Optional[Capability]:
        """The capability *ref* currently authorizes [offset, offset+size).

        Returns the capability, or None (and counts a rejection at the
        caller).  Run at store time and again at fire time, so a
        revocation between argument passing and start still rejects.
        """
        entry = self._caps.get(ref.cap_id)
        if entry is None:
            return None
        if self.epoch_check and ref.epoch != (entry.epoch & _EPOCH_MASK):
            return None
        if not (entry.writable if write else entry.readable):
            return None
        if size <= 0 or not 0 <= ref.offset < entry.limit:
            return None
        if ref.offset + size > entry.limit:
            return None
        return entry

    # -- argument passing over shadow stores -------------------------------

    def on_shadow_store(self, access: ShadowAccess) -> None:
        cap_id, epoch, nonce, arg = unpack_cap_word(access.data)
        entry = self._caps.get(cap_id)
        if entry is None or nonce != entry.nonce:
            # Unknown capability or forged nonce: silently dropped; the
            # attacker learns nothing (stores have no return path).
            self.cap_rejections += 1
            return
        ref = _ArgRef(cap_id=cap_id, epoch=epoch, offset=access.paddr,
                      issuer=access.issuer)
        if self._validate(ref, size=1, write=(arg == ARG_DESTINATION)) is None:
            self.cap_rejections += 1
            return
        context = self.engine.contexts[entry.owner_ctx]
        phys = entry.base + ref.offset
        if arg == ARG_SOURCE:
            context.src = phys
            self._arg_refs.setdefault(entry.owner_ctx, {})["src"] = ref
        else:
            context.dst = phys
            self._arg_refs.setdefault(entry.owner_ctx, {})["dst"] = ref
        context.failed = False

    def on_shadow_load(self, access: ShadowAccess) -> int:
        # Loads from the shadow region play no role in this method.
        return STATUS_FAILURE

    # -- the register-context page -----------------------------------------

    def on_context_store(self, ctx: RegisterContext, offset: int,
                         value: int, access: ShadowAccess) -> None:
        ctx.size = value
        ctx.failed = False
        self._size_issuers[ctx.ctx_id] = access.issuer

    def on_context_load(self, ctx: RegisterContext, offset: int,
                        access: ShadowAccess) -> int:
        if ctx.args_complete:
            assert ctx.src is not None and ctx.dst is not None
            assert ctx.size is not None
            refs = self._arg_refs.get(ctx.ctx_id, {})
            src_ref = refs.get("src")
            dst_ref = refs.get("dst")
            src_cap = (None if src_ref is None else
                       self._validate(src_ref, ctx.size, write=False))
            dst_cap = (None if dst_ref is None else
                       self._validate(dst_ref, ctx.size, write=True))
            if src_cap is None or dst_cap is None or src_ref is None \
                    or dst_ref is None:
                # A capability expired (or the size outgrew its limit)
                # between argument passing and the start: abort with
                # nothing moved.
                self.cap_rejections += 1
                self._clear(ctx)
                ctx.failed = True
                return STATUS_FAILURE
            authority = None
            if (src_cap.owner_pid is not None
                    and src_cap.owner_pid == dst_cap.owner_pid):
                authority = src_cap.owner_pid
            contributors = (src_ref.issuer, dst_ref.issuer,
                            self._size_issuers.get(ctx.ctx_id),
                            access.issuer)
            status = self.engine.try_start(
                psrc=src_cap.base + src_ref.offset,
                pdst=dst_cap.base + dst_ref.offset,
                size=ctx.size, ctx=ctx, issuer=access.issuer)
            self.completed_contributors.append(contributors)
            self.completed_authority.append(authority)
            self._clear(ctx)
            return status
        if ctx.transfer is not None or ctx.failed:
            # Polling path: bytes remaining (-1 on failure).
            return ctx.status_word(access.when)
        # Nothing latched and nothing ever ran (e.g. every token was
        # rejected): report failure, not completion.
        return STATUS_FAILURE

    def _clear(self, ctx: RegisterContext) -> None:
        ctx.clear_args()
        self._arg_refs.pop(ctx.ctx_id, None)
        self._size_issuers.pop(ctx.ctx_id, None)

    # -- kernel-managed setup ----------------------------------------------

    def apply_setup(self, op: SetupOp) -> None:
        if op.kind == "cap-mint":
            (cap_id, owner_ctx, owner_pid, base, limit,
             readable, writable, nonce) = op.args
            if not 0 <= cap_id <= _CAP_MASK:
                raise ConfigError(
                    f"cap_id {cap_id} overflows {_CAP_BITS} bits")
            self._caps[cap_id] = Capability(
                base=base, limit=limit, readable=readable,
                writable=writable, epoch=0, nonce=nonce,
                owner_ctx=owner_ctx, owner_pid=owner_pid)
        elif op.kind == "cap-revoke":
            (cap_id,) = op.args
            entry = self._caps.get(cap_id)
            if entry is not None:
                self._caps[cap_id] = replace(entry, epoch=entry.epoch + 1)
        else:
            raise ConfigError(
                f"protocol {self.name} accepts no setup op {op.kind!r}")

    def capability(self, cap_id: int) -> Optional[Capability]:
        """The current table entry for *cap_id* (kernel bookkeeping)."""
        return self._caps.get(cap_id)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        self.cap_rejections = 0
        self._caps = {}
        self._arg_refs = {}
        self._size_issuers = {}
        self.completed_contributors = []
        self.completed_authority = []

    def state_label(self) -> str:
        """Which contexts hold capability-latched arguments."""
        parts = []
        for ctx_id in sorted(self._arg_refs):
            refs = self._arg_refs[ctx_id]
            parts.append(f"ctx{ctx_id}:"
                         + ("S" if "src" in refs else "-")
                         + ("D" if "dst" in refs else "-"))
        return " ".join(parts) if parts else "idle"

    # -- snapshot/restore --------------------------------------------------

    def snapshot_state(self):
        # Capability and _ArgRef instances are frozen (revocation
        # replaces whole entries), so shallow copies suffice; the
        # completion logs are append-only and captured as lengths.
        return (dict(self._caps),
                {ctx_id: dict(refs)
                 for ctx_id, refs in self._arg_refs.items()},
                dict(self._size_issuers),
                len(self.completed_contributors),
                self.cap_rejections)

    def restore_state(self, state) -> None:
        caps, arg_refs, size_issuers, n_completed, rejections = state
        self._caps = dict(caps)
        self._arg_refs = {ctx_id: dict(refs)
                          for ctx_id, refs in arg_refs.items()}
        self._size_issuers = dict(size_issuers)
        del self.completed_contributors[n_completed:]
        del self.completed_authority[n_completed:]
        self.cap_rejections = rejections

    def state_fingerprint(self):
        # The completion logs feed the single-issuer property at every
        # leaf, so their *content* (not just length) must match for two
        # states to share a subtree.
        return (tuple(sorted(self._caps.items())),
                tuple(sorted(
                    (ctx_id, tuple(sorted(refs.items())))
                    for ctx_id, refs in self._arg_refs.items())),
                tuple(sorted(self._size_issuers.items())),
                tuple(self.completed_contributors),
                tuple(self.completed_authority))
