"""Extended shadow addressing (§3.2, Fig. 4).

The OS embeds a small CONTEXT_ID in the *physical* side of every shadow
mapping it creates for a process, so every shadow access arrives at the
engine already labelled with the issuing process's context — no kernel
hook, no key, and only two instructions:

* ``STORE size TO shadow(vdestination)`` — latches (destination, size)
  in the register context named by the address bits;
* ``LOAD FROM shadow(vsource)`` — pairs the load's source with the latch
  *of the same context* and starts the DMA.

A process cannot forge another CONTEXT_ID because it simply has no virtual
mapping carrying those address bits; the MMU is the guard.

The paper also sketches a context-less engine that latches a single pair
and compares the CONTEXT_ID bits of the store and load, rejecting on
mismatch; construct with ``per_context=False`` to get that variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..recognizer import InitiationProtocol, ShadowAccess
from ..status import STATUS_FAILURE


@dataclass
class _Latch:
    pdst: int
    size: int
    ctx_id: int


class ExtendedShadowProtocol(InitiationProtocol):
    """Two-instruction initiation keyed by CONTEXT_ID address bits."""

    name = "extshadow"

    def __init__(self, per_context: bool = True) -> None:
        super().__init__()
        self.per_context = per_context
        self.ctx_mismatches = 0
        self.empty_loads = 0
        self._latches: Dict[int, _Latch] = {}
        self._single: Optional[_Latch] = None

    def on_shadow_store(self, access: ShadowAccess) -> None:
        latch = _Latch(pdst=access.paddr, size=access.data,
                       ctx_id=access.ctx_id)
        if self.per_context:
            if access.ctx_id >= self.engine.layout.n_contexts:
                self.ctx_mismatches += 1
                return
            self._latches[access.ctx_id] = latch
        else:
            self._single = latch

    def on_shadow_load(self, access: ShadowAccess) -> int:
        if self.per_context:
            latch = self._latches.pop(access.ctx_id, None)
            if latch is None:
                self.empty_loads += 1
                return STATUS_FAILURE
        else:
            latch, self._single = self._single, None
            if latch is None:
                self.empty_loads += 1
                return STATUS_FAILURE
            if latch.ctx_id != access.ctx_id:
                # §3.2: "If they are different, the DMA operation is not
                # started and an error code is returned".
                self.ctx_mismatches += 1
                return STATUS_FAILURE
        ctx = None
        if access.ctx_id < self.engine.layout.n_contexts:
            ctx = self.engine.contexts[access.ctx_id]
        return self.engine.try_start(
            psrc=access.paddr, pdst=latch.pdst, size=latch.size,
            ctx=ctx, issuer=access.issuer)

    def reset(self) -> None:
        self.ctx_mismatches = 0
        self.empty_loads = 0
        self._latches = {}
        self._single = None

    def state_label(self) -> str:
        """Which contexts currently hold a (destination, size) latch."""
        if self.per_context:
            if not self._latches:
                return "idle"
            return "latched:" + ",".join(
                str(ctx_id) for ctx_id in sorted(self._latches))
        return "latched" if self._single is not None else "idle"

    def snapshot_state(self):
        # _Latch instances are never mutated after creation (stores
        # replace whole entries), so a shallow dict copy suffices.
        return (dict(self._latches), self._single,
                self.ctx_mismatches, self.empty_loads)

    def restore_state(self, state) -> None:
        latches, single, mismatches, empty = state
        self._latches = dict(latches)
        self._single = single
        self.ctx_mismatches = mismatches
        self.empty_loads = empty

    def state_fingerprint(self):
        single = (None if self._single is None else
                  (self._single.pdst, self._single.size,
                   self._single.ctx_id))
        return (tuple(sorted(
                    (ctx_id, latch.pdst, latch.size, latch.ctx_id)
                    for ctx_id, latch in self._latches.items())),
                single)
