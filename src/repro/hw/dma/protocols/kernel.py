"""The kernel-only baseline: no user-level initiation at all (§2.2).

A traditional DMA engine ignores the shadow region entirely; the only way
to start a transfer is through the privileged Fig. 1 registers on the
control page, which only the kernel can reach.  User shadow accesses are
absorbed (and counted) — exactly what a conventional interface that knows
nothing about shadow addressing would do.
"""

from __future__ import annotations

from ..recognizer import InitiationProtocol, ShadowAccess
from ..status import STATUS_FAILURE


class KernelOnlyProtocol(InitiationProtocol):
    """Rejects every user-level initiation attempt."""

    name = "kernel"

    def __init__(self) -> None:
        super().__init__()
        self.ignored_accesses = 0

    def on_shadow_store(self, access: ShadowAccess) -> None:
        self.ignored_accesses += 1

    def on_shadow_load(self, access: ShadowAccess) -> int:
        self.ignored_accesses += 1
        return STATUS_FAILURE

    def on_shadow_exchange(self, access: ShadowAccess) -> int:
        self.ignored_accesses += 1
        return STATUS_FAILURE

    def reset(self) -> None:
        self.ignored_accesses = 0

    def snapshot_state(self):
        return self.ignored_accesses

    def restore_state(self, state) -> None:
        self.ignored_accesses = state

    def state_fingerprint(self):
        # ignored_accesses is a pure statistic: no decision reads it.
        return ()
