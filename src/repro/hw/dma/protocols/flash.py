"""The FLASH solution: a current-process register (§2.6).

Like SHRIMP-2, initiation is a STORE/LOAD pair over shadow addresses; but
the engine latches, together with the pending arguments, the value of its
**current-process register** — which the (modified) context-switch handler
writes on every switch.  A load only completes an initiation if the
register still holds the same value, so arguments latched by a preempted
process can never pair with another process's load.

The whole point of the paper: this works *only because* the kernel was
patched to keep the register current.  Run without the scheduler hook and
the register never changes, every tag matches, and the scheme collapses
into the racy SHRIMP-2 behaviour — the ablation benchmark shows exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..recognizer import InitiationProtocol, ShadowAccess
from ..status import STATUS_FAILURE


@dataclass
class TaggedPending:
    """A pending (destination, size) tagged with the announcing pid."""

    pdst: int
    size: int
    tag: int


class FlashProtocol(InitiationProtocol):
    """STORE/LOAD pair discriminated by the current-process register."""

    name = "flash"

    def __init__(self) -> None:
        super().__init__()
        self.pending: Optional[TaggedPending] = None
        self.tag_mismatches = 0
        self.empty_loads = 0

    def on_shadow_store(self, access: ShadowAccess) -> None:
        # The engine tags the latch with whoever the kernel last announced.
        self.pending = TaggedPending(pdst=access.paddr, size=access.data,
                                     tag=self.engine.current_pid)

    def on_shadow_load(self, access: ShadowAccess) -> int:
        if self.pending is None:
            self.empty_loads += 1
            return STATUS_FAILURE
        pending, self.pending = self.pending, None
        if pending.tag != self.engine.current_pid:
            self.tag_mismatches += 1
            return STATUS_FAILURE
        return self.engine.try_start(
            psrc=access.paddr, pdst=pending.pdst, size=pending.size,
            issuer=access.issuer)

    def on_context_switch(self, new_pid: int) -> None:
        """The FLASH kernel modification keeps current_pid fresh.

        The register itself lives on the engine; a stale pending latch is
        detected at load time via the tag comparison, so nothing else is
        needed here.
        """

    def reset(self) -> None:
        self.pending = None
        self.tag_mismatches = 0
        self.empty_loads = 0

    def snapshot_state(self):
        # TaggedPending instances are never mutated after creation.
        return (self.pending, self.tag_mismatches, self.empty_loads)

    def restore_state(self, state) -> None:
        self.pending, self.tag_mismatches, self.empty_loads = state

    def state_fingerprint(self):
        if self.pending is None:
            return None
        return (self.pending.pdst, self.pending.size, self.pending.tag)
