"""The first SHRIMP solution: mapped-out pages (§2.4).

Every communication page is "mapped out" to a fixed destination page
(installed by the OS in the engine's mapped-out table).  A DMA is started
with **one** atomic compare-and-exchange-style access to the shadow image
of the source address: the address argument carries the source, the data
argument carries the size, the destination is implied by the mapped-out
table, and the returned old value reports success or failure.

Because the whole initiation is one indivisible bus transaction, atomicity
is free — but a source page can only ever DMA to its mapped-out partner,
which is the restriction that motivated all the later schemes.
"""

from __future__ import annotations

from ..recognizer import InitiationProtocol, ShadowAccess
from ..status import STATUS_FAILURE


class MappedOutProtocol(InitiationProtocol):
    """Single-access initiation against the mapped-out table."""

    name = "shrimp1"

    def __init__(self) -> None:
        super().__init__()
        self.unmapped_attempts = 0

    def on_shadow_exchange(self, access: ShadowAccess) -> int:
        pdst = self.engine.mapout_destination(access.paddr)
        if pdst is None:
            self.unmapped_attempts += 1
            return STATUS_FAILURE
        return self.engine.try_start(
            psrc=access.paddr, pdst=pdst, size=access.data,
            issuer=access.issuer)

    def on_shadow_store(self, access: ShadowAccess) -> None:
        # Plain stores carry no atomic return path; SHRIMP-1 ignores them.
        return None

    def on_shadow_load(self, access: ShadowAccess) -> int:
        return STATUS_FAILURE

    def reset(self) -> None:
        self.unmapped_attempts = 0

    def snapshot_state(self):
        return self.unmapped_attempts

    def restore_state(self, state) -> None:
        self.unmapped_attempts = state

    def state_fingerprint(self):
        # unmapped_attempts is a pure statistic: no decision reads it.
        return ()
