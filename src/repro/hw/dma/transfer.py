"""The DMA data mover.

Once an initiation protocol has accepted a (source, destination, size)
triple, the :class:`DmaTransferEngine` performs the actual transfer in the
background: it models the transfer duration from a startup cost plus a
bandwidth term, schedules a completion event, and invokes a *mover*
callback that moves the bytes (a local RAM copy by default; the NIC
substitutes a network send for remote destinations).

Software observes progress exactly as §3.1 describes: a status read
returns the bytes still to be transferred, reaching 0 at completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ...errors import ConfigError
from ...obs.spans import SpanTracer
from ...sim.engine import Simulator
from ...sim.journal import UndoJournal
from ...units import Time, transfer_time

#: Moves the bytes when a transfer completes: (psrc, pdst, size) -> None.
MoverFn = Callable[[int, int, int], None]

#: Invoked after a transfer completes: (transfer) -> None.
CompletionFn = Callable[["Transfer"], None]

#: Fault-injection hook consulted when a transfer starts; returns None
#: (no fault) or ("drop" | "delay" | "duplicate", extra_time).
FaultHookFn = Callable[["Transfer"], Optional[Tuple[str, "Time"]]]

#: Completion time of a dropped completion: effectively never (~13 days
#: of simulated time), so status polls keep reporting bytes remaining
#: and bounded waits time out — the observable behaviour of a hung DMA.
NEVER_DURATION: Time = 1 << 60


@dataclass
class Transfer:
    """One in-flight or completed DMA transfer.

    Attributes:
        psrc / pdst: physical endpoints.
        size: bytes to move.
        started_at: simulation time the transfer began.
        duration: modelled transfer time.
        completed: set by the completion event.
    """

    psrc: int
    pdst: int
    size: int
    started_at: Time
    duration: Time
    completed: bool = False

    @property
    def completes_at(self) -> Time:
        """Absolute completion timestamp."""
        return self.started_at + self.duration

    def remaining(self, now: Time) -> int:
        """Bytes left to transfer as observed at time *now*.

        Progress is modelled as linear in time after the startup phase is
        folded in; the readout is what a §3.1 status poll returns.
        """
        if self.completed or now >= self.completes_at:
            return 0
        if now <= self.started_at or self.duration == 0:
            return self.size
        done_fraction = (now - self.started_at) / self.duration
        moved = int(self.size * done_fraction)
        return max(0, self.size - moved)


class DmaTransferEngine:
    """Schedules and performs DMA data movement.

    Args:
        sim: the event engine.
        bandwidth_bps: sustained transfer bandwidth in bits/second.
        startup: fixed per-transfer engine latency (arbitration, first
            descriptor fetch).
        mover: performs the byte movement at completion time.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float,
                 startup: Time, mover: MoverFn,
                 spans: Optional[SpanTracer] = None) -> None:
        if bandwidth_bps <= 0:
            raise ConfigError(
                f"bandwidth must be positive, got {bandwidth_bps}")
        if startup < 0:
            raise ConfigError(f"startup must be non-negative, got {startup}")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.startup = startup
        self._mover = mover
        #: Span tracer for per-transfer spans (disabled by default).
        self.spans = spans if spans is not None else SpanTracer(
            sim.time_source())
        self.transfers_started = 0
        self.bytes_moved = 0
        self.history: List[Transfer] = []
        #: Optional fault-injection hook (see repro.faults.injector);
        #: consulted once per started transfer.  Timed-simulation only —
        #: the checker harness injects faults at stream level instead,
        #: so snapshot/restore never needs to undo a hook decision.
        self.fault_hook: Optional[FaultHookFn] = None
        #: Initiation path of the most recent transfer ("kernel" or a
        #: user-level method name), set by DmaEngine.try_start so the
        #: fault hook can honour kernel immunity.
        self.last_via: Optional[str] = None
        # Shared undo journal (checker backtracking): None when unbound.
        self._undo: Optional[UndoJournal] = None
        self._j_epoch = 0
        # Prefix cache of fingerprint(): value tuples of history[:len].
        # History is append/truncate-only, so the cache keys on length;
        # completion-flag flips invalidate it explicitly.
        self._fp_hist: Tuple[tuple, ...] = ()

    def bind_journal(self, journal: Optional[UndoJournal]) -> None:
        """Attach (or detach, with None) a shared undo journal."""
        self._undo = journal
        self._j_epoch = 0
        self._fp_hist = ()

    def _j_scalars(self) -> None:
        """Once per journal epoch, capture the counter blob."""
        journal = self._undo
        if journal is not None and self._j_epoch != journal.epoch:
            self._j_epoch = journal.epoch
            journal.record_call(self._restore_scalars, (
                self.transfers_started, self.bytes_moved, self.last_via))

    def _restore_scalars(self, blob: tuple) -> None:
        self.transfers_started, self.bytes_moved, self.last_via = blob

    def _uncomplete(self, transfer: "Transfer") -> None:
        transfer.completed = False
        self._fp_hist = ()

    def duration_of(self, size: int) -> Time:
        """Modelled duration of a *size*-byte transfer."""
        return self.startup + transfer_time(size, self.bandwidth_bps)

    def start(self, psrc: int, pdst: int, size: int,
              on_complete: Optional[CompletionFn] = None) -> Transfer:
        """Begin a transfer; returns its tracking object immediately.

        The byte movement and completion callback fire as a simulation
        event at the modelled completion time.

        Raises:
            ConfigError: if *size* is not positive (the initiation
                protocols reject bad sizes before reaching here).
        """
        if size <= 0:
            raise ConfigError(f"transfer size must be positive, got {size}")
        transfer = Transfer(
            psrc=psrc, pdst=pdst, size=size,
            started_at=self.sim.now, duration=self.duration_of(size))
        journal = self._undo
        if journal is not None:
            self._j_scalars()
            journal.record_append(self.history)
        self.transfers_started += 1
        if len(self._fp_hist) > len(self.history):
            # An undo truncated history below the cached prefix; the new
            # entry replaces a cached slot, so cut the cache back first.
            self._fp_hist = self._fp_hist[:len(self.history)]
        self.history.append(transfer)

        span = None
        if self.spans.enabled:
            # Background span: it ends at the completion event, long
            # after the initiating synchronous code has returned.
            span = self.spans.begin(
                "dma.transfer", track="engine", stack=False,
                psrc=psrc, pdst=pdst, size=size,
                via=self.last_via or "unknown")

        fault = (self.fault_hook(transfer)
                 if self.fault_hook is not None else None)
        if fault is not None and fault[0] == "drop":
            # Lost completion: the bytes never move, the status readout
            # never reaches zero, and no event fires.  Recovery is the
            # software's job (bounded waits + retry).  The span stays
            # open — exactly the hang the exporters flag.
            transfer.duration = NEVER_DURATION
            if span is not None:
                span.set(fault="drop")
            return transfer

        def complete() -> None:
            if self._undo is not None:
                self._j_scalars()
                self._undo.record_call(self._uncomplete, transfer)
            self._mover(psrc, pdst, size)
            transfer.completed = True
            self.bytes_moved += size
            self._fp_hist = ()
            # A duplicated completion re-runs the mover; the span must
            # close exactly once.
            if span is not None and not span.closed:
                self.spans.end(span, outcome="completed")
            if on_complete is not None:
                on_complete(transfer)

        if fault is not None and fault[0] == "delay":
            transfer.duration += fault[1]
        self.sim.schedule(transfer.duration, complete,
                          label=f"dma-complete[{size}B]", transient=True)
        if fault is not None and fault[0] == "duplicate":
            # A second, spurious completion event re-runs the mover (an
            # idempotent copy) — visible as double-counted bytes_moved.
            self.sim.schedule(transfer.duration + max(fault[1], 1),
                              complete, label=f"dma-complete-dup[{size}B]")
        return transfer

    # -- snapshot/restore -----------------------------------------------------

    def snapshot(self) -> tuple:
        """Capture counters plus the history length and completion flags.

        History is append-only, so a length marker plus the ``completed``
        flag of each surviving transfer reproduces it exactly; the
        completion *events* themselves are the simulator's to restore.
        """
        return (self.transfers_started, self.bytes_moved, len(self.history),
                [t.completed for t in self.history])

    def restore(self, token: tuple) -> None:
        """Return to a state captured by :meth:`snapshot`."""
        started, moved, length, flags = token
        self.transfers_started = started
        self.bytes_moved = moved
        del self.history[length:]
        for transfer, completed in zip(self.history, flags):
            transfer.completed = completed
        self._fp_hist = ()

    def fingerprint(self) -> tuple:
        """Hashable value capture of every transfer plus the counters.

        The per-transfer value tuples are cached as a prefix keyed on the
        history length (history only ever appends or truncates); sites
        that flip a ``completed`` flag drop the cache.
        """
        cached = self._fp_hist
        n = len(self.history)
        if len(cached) != n:
            if len(cached) > n:
                cached = cached[:n]
            else:
                cached = cached + tuple(
                    (t.psrc, t.pdst, t.size, t.started_at, t.duration,
                     t.completed) for t in self.history[len(cached):])
            self._fp_hist = cached
        return (self.transfers_started, self.bytes_moved, cached)
