"""Status words the DMA engine returns to software.

The paper (§3.1) defines the readout of a register context as "the number
of bytes that need to be transferred yet (-1 means failure, 0 means
completed DMA operation)".  On 64-bit hardware -1 reads back as all-ones.

Loads that are part of an initiation sequence return either
:data:`STATUS_FAILURE` (the sequence was broken — Fig. 7's retry condition)
or a non-failure word: the remaining byte count for a started DMA, or
:data:`STATUS_ACK` for an in-sequence intermediate load.
"""

from __future__ import annotations

WORD_MASK = (1 << 64) - 1

#: -1 as an unsigned 64-bit word: the initiation failed / sequence broken.
STATUS_FAILURE = WORD_MASK

#: -2 as an unsigned word: the access was accepted *mid-sequence* (the
#: repeated-passing recognizer advanced but no DMA started yet).
#:
#: The paper leaves the return value of in-sequence intermediate loads
#: unspecified.  Model checking the 5-instruction variant (see
#: repro.verify) shows that if intermediate acks are indistinguishable
#: from success, an adversary can time its own stores so the victim's
#: *final* load lands mid-pattern and reads back an ack — a phantom
#: success with no DMA started.  Hardware must therefore return a
#: distinguished PENDING word, and the Fig. 7 software loop must retry
#: when the final load reads PENDING.
STATUS_PENDING = WORD_MASK - 1

#: "Transfer complete" when read from a register context.
STATUS_ACK = 0


def is_failure(status: int) -> bool:
    """Whether a status word signals DMA_FAILURE."""
    return status == STATUS_FAILURE


def is_rejection(status: int) -> bool:
    """Whether a status word means "no DMA started on your behalf"."""
    return status in (STATUS_FAILURE, STATUS_PENDING)


def to_signed(status: int) -> int:
    """Interpret a status word as the signed value software sees."""
    if status > (1 << 63) - 1:
        return status - (1 << 64)
    return status
