"""The DMA engine device.

One MMIO device implements everything the paper's prototype board did:

* decodes **shadow accesses** and feeds them to the active initiation
  protocol (§2.3);
* exposes **register-context pages**, one per context, that the OS maps
  into at most one process each (§3.1);
* exposes a **kernel-only key table** ("memory locations un-readable by
  user processes", §3.1);
* exposes a **kernel-only control page** with the classic Fig. 1 DMA
  registers (SOURCE / DESTINATION / SIZE / STATUS), the mapped-out table
  programming registers for SHRIMP-1, and the two hook registers that
  model the SHRIMP-2 / FLASH kernel modifications (CURRENT_PID, ABORT);
* owns the **data mover** that performs accepted transfers in background
  simulated time.

Every accepted or rejected initiation is recorded in
:attr:`DmaEngine.initiations` with the issuing process id — bookkeeping
the verification layer uses to check the paper's safety properties.  The
protocols themselves never see it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...errors import ConfigError, DeviceError
from ...obs.spans import Span, SpanTracer
from ...sim.engine import Simulator
from ...sim.journal import UndoJournal
from ...sim.trace import TraceLog
from ...units import Time, mbps, ns
from ..device import AccessContext, MmioDevice
from ..memory import PhysicalMemory
from ..pagetable import PAGE_MASK, PAGE_SHIFT, page_base, page_offset
from .contexts import RegisterContext
from .recognizer import InitiationProtocol, ShadowAccess
from .shadow import ShadowLayout
from .status import STATUS_FAILURE
from .transfer import DmaTransferEngine, Transfer

# Control-page register offsets (Fig. 1 names).
REG_SOURCE = 0x00
REG_DESTINATION = 0x08
REG_SIZE = 0x10
REG_STATUS = 0x18
REG_CURRENT_PID = 0x20
REG_ABORT = 0x28
REG_MAPOUT_SRC = 0x30
REG_MAPOUT_DST = 0x38


@dataclass(frozen=True)
class InitiationRecord:
    """One initiation attempt that reached the start logic.

    Attributes:
        when: simulation time of the attempt.
        psrc / pdst / size: the argument triple presented.
        issuer: pid of the access that triggered the start attempt
            (verification bookkeeping only).
        via: "kernel" or the user-level protocol name.
        ctx_id: register context involved, or None.
        ok: whether a transfer actually started.
    """

    when: Time
    psrc: int
    pdst: int
    size: int
    issuer: Optional[int]
    via: str
    ctx_id: Optional[int]
    ok: bool


class DmaEngine(MmioDevice):
    """The paper's DMA/network-interface engine as a bus device.

    Args:
        sim: event engine.
        ram: host physical memory (transfer endpoints live here).
        protocol: the active user-level initiation protocol.
        layout: window geometry.
        bandwidth_bps: data-mover bandwidth.
        startup: fixed per-transfer latency.
        trace: optional shared trace log.
        page_bounded: harden user-level initiations against corrupted
            size words — reject any start whose source or destination
            range crosses a page boundary, unless it came through the
            kernel path.  A user-level argument travels as one word on
            the bus; a bit-flip in its size field could otherwise grow
            a transfer into a neighbouring process's page even though
            every *authorized* page the MMU let the process name was
            fine.  Off by default (the paper's engine trusts the bus);
            fault-tolerant configurations turn it on and split large
            transfers per page.
        name: device name.
    """

    def __init__(self, sim: Simulator, ram: PhysicalMemory,
                 protocol: InitiationProtocol,
                 layout: Optional[ShadowLayout] = None,
                 bandwidth_bps: float = mbps(400.0),
                 startup: Time = ns(200),
                 trace: Optional[TraceLog] = None,
                 page_bounded: bool = False,
                 spans: Optional[SpanTracer] = None,
                 name: str = "dma") -> None:
        super().__init__(name)
        self.sim = sim
        self.ram = ram
        self.layout = layout if layout is not None else ShadowLayout()
        if ram.size > self.layout.max_argument_paddr:
            raise ConfigError(
                "RAM does not fit in the shadow argument field; "
                "enlarge ctx_shift or shrink RAM")
        self.trace = trace if trace is not None else TraceLog()
        #: Causal span tracer (disabled by default; one branch per access).
        self.spans = spans if spans is not None else SpanTracer(
            sim.time_source())
        self.contexts = [RegisterContext(i)
                         for i in range(self.layout.n_contexts)]
        self.key_table: Dict[int, int] = {}
        self.mapout_table: Dict[int, int] = {}
        self.current_pid: int = -1
        self.initiations: List[InitiationRecord] = []
        self.protocol_violations = 0
        self.page_bounded = page_bounded
        self.oversize_rejections = 0
        #: Optional software-coherence callback: (pdst, size) invoked
        #: after the mover writes local memory, so a CPU-side cache can
        #: invalidate the destination lines (non-coherent I/O model).
        self.coherence_hook = None
        self.transfer_engine = DmaTransferEngine(
            sim, bandwidth_bps, startup, self._move_bytes,
            spans=self.spans)
        self._control_src = 0
        self._control_dst = 0
        self._control_status = 0
        self._control_transfer: Optional[Transfer] = None
        self._mapout_src_latch: Optional[int] = None
        # Shared undo journal (checker backtracking): None when unbound.
        self._undo: Optional[UndoJournal] = None
        self._j_epoch = 0
        # Fingerprint caches, valid only because every mutation site
        # either keys them on a length (append/truncate-only lists) or
        # invalidates them explicitly (table writes, undo callbacks).
        self._init_fp: tuple = ()
        self._tables_fp: Optional[tuple] = None
        self.protocol = protocol
        protocol.attach(self)

    # ------------------------------------------------------------------
    # Undo journal (the checker's O(changes) snapshot/restore substrate)
    # ------------------------------------------------------------------

    def bind_journal(self, journal: Optional[UndoJournal]) -> None:
        """Attach (or detach, with None) a shared undo journal.

        While bound, the first MMIO access of each journal epoch captures
        the engine's hot mutable state (protocol FSM blob, scalar
        registers, all register contexts) as journal entries, and the
        rare mutations (table writes, initiation-record appends) record
        individually — so ``journal.mark()``/``undo_to`` replace
        :meth:`snapshot`/:meth:`restore` at cost proportional to what
        actually changed.  Cascades to the transfer engine.
        """
        self._undo = journal
        self._j_epoch = 0
        self._init_fp = ()
        self._tables_fp = None
        self.transfer_engine.bind_journal(journal)

    def _j_access(self) -> None:
        """Once per journal epoch, capture the per-access hot state."""
        journal = self._undo
        if journal is None or self._j_epoch == journal.epoch:
            return
        self._j_epoch = journal.epoch
        journal.record_call(self.protocol.restore_state,
                            self.protocol.snapshot_state())
        journal.record_call(self._restore_scalar_state, self._scalar_state())
        journal.record_call(self._restore_contexts,
                            tuple(c.snapshot() for c in self.contexts))
        if self.trace.enabled or len(self.trace):
            journal.record_call(self.trace.restore, self.trace.snapshot())
        span_state = self.spans.snapshot()
        if span_state is not None:
            journal.record_call(self.spans.restore, span_state)

    def _scalar_state(self) -> tuple:
        """Scalar engine state captured once per journal epoch.

        Subclasses with extra scalar state extend the tuple (and override
        :meth:`_restore_scalar_state` to match).
        """
        return (self.current_pid, self.protocol_violations,
                self.oversize_rejections, self._control_src,
                self._control_dst, self._control_status,
                self._control_transfer, self._mapout_src_latch)

    def _restore_scalar_state(self, blob: tuple) -> None:
        (self.current_pid, self.protocol_violations,
         self.oversize_rejections, self._control_src, self._control_dst,
         self._control_status, self._control_transfer,
         self._mapout_src_latch) = blob

    def _restore_contexts(self, blobs: tuple) -> None:
        for context, state in zip(self.contexts, blobs):
            context.restore(state)

    def _j_table(self, table: Dict[int, int], key: int) -> None:
        """Journal a privileged-table write (undo restores or re-deletes)."""
        self._tables_fp = None
        journal = self._undo
        if journal is None:
            return
        if key in table:
            journal.record_call(self._restore_table_item,
                                (table, key, table[key]))
        else:
            journal.record_call(self._restore_table_del, (table, key))

    def _restore_table_item(self, entry: tuple) -> None:
        table, key, value = entry
        table[key] = value
        self._tables_fp = None

    def _restore_table_del(self, entry: tuple) -> None:
        table, key = entry
        table.pop(key, None)
        self._tables_fp = None

    # ------------------------------------------------------------------
    # MMIO entry points
    # ------------------------------------------------------------------

    def mmio_write(self, offset: int, value: int, ctx: AccessContext) -> None:
        self._j_access()
        shadow = self.layout.decode_offset(offset)
        if shadow is not None:
            access = self._shadow_access("store", shadow.ctx_id,
                                         shadow.paddr, value, ctx)
            if self.trace.enabled:
                self.trace.emit(ctx.when, self.name, "shadow-store",
                                ctx_id=access.ctx_id, paddr=access.paddr,
                                data=value, issuer=ctx.issuer)
            if self.spans.enabled:
                sp = self._access_span("dma.shadow_store", ctx,
                                       ctx_id=access.ctx_id,
                                       paddr=access.paddr, data=value)
                self.protocol.on_shadow_store(access)
                self.spans.end(sp, state_to=self.protocol.state_label())
            else:
                self.protocol.on_shadow_store(access)
            return
        ctx_index = self.layout.context_of_offset(offset)
        if ctx_index is not None:
            access = self._shadow_access("store", ctx_index, 0, value, ctx)
            if self.trace.enabled:
                self.trace.emit(ctx.when, self.name, "context-store",
                                ctx_id=ctx_index, data=value,
                                issuer=ctx.issuer)
            if self.spans.enabled:
                sp = self._access_span("dma.context_store", ctx,
                                       ctx_id=ctx_index, data=value)
                self.protocol.on_context_store(
                    self.contexts[ctx_index], offset & PAGE_MASK, value,
                    access)
                self.spans.end(sp, state_to=self.protocol.state_label())
            else:
                self.protocol.on_context_store(
                    self.contexts[ctx_index], offset & PAGE_MASK, value,
                    access)
            return
        page = offset >> PAGE_SHIFT
        reg = offset & PAGE_MASK
        if page == self.layout.key_page_offset >> PAGE_SHIFT:
            self._key_write(reg, value, ctx)
            return
        if page == self.layout.control_page_offset >> PAGE_SHIFT:
            self._control_write(reg, value, ctx)
            return
        raise DeviceError(f"{self.name}: write to unmapped offset {offset:#x}")

    def mmio_read(self, offset: int, ctx: AccessContext) -> int:
        self._j_access()
        shadow = self.layout.decode_offset(offset)
        if shadow is not None:
            access = self._shadow_access("load", shadow.ctx_id,
                                         shadow.paddr, 0, ctx)
            if self.spans.enabled:
                sp = self._access_span("dma.shadow_load", ctx,
                                       ctx_id=access.ctx_id,
                                       paddr=access.paddr)
                status = self.protocol.on_shadow_load(access)
                self.spans.end(sp, state_to=self.protocol.state_label(),
                               status=status)
            else:
                status = self.protocol.on_shadow_load(access)
            if self.trace.enabled:
                self.trace.emit(ctx.when, self.name, "shadow-load",
                                ctx_id=access.ctx_id, paddr=access.paddr,
                                status=status, issuer=ctx.issuer)
            return status
        ctx_index = self.layout.context_of_offset(offset)
        if ctx_index is not None:
            access = self._shadow_access("load", ctx_index, 0, 0, ctx)
            if self.spans.enabled:
                sp = self._access_span("dma.context_load", ctx,
                                       ctx_id=ctx_index)
                status = self.protocol.on_context_load(
                    self.contexts[ctx_index], offset & PAGE_MASK, access)
                self.spans.end(sp, state_to=self.protocol.state_label(),
                               status=status)
            else:
                status = self.protocol.on_context_load(
                    self.contexts[ctx_index], offset & PAGE_MASK, access)
            if self.trace.enabled:
                self.trace.emit(ctx.when, self.name, "context-load",
                                ctx_id=ctx_index, status=status,
                                issuer=ctx.issuer)
            return status
        page = offset >> PAGE_SHIFT
        reg = offset & PAGE_MASK
        if page == self.layout.key_page_offset >> PAGE_SHIFT:
            return self._key_read(reg, ctx)
        if page == self.layout.control_page_offset >> PAGE_SHIFT:
            return self._control_read(reg, ctx)
        raise DeviceError(f"{self.name}: read of unmapped offset {offset:#x}")

    def mmio_exchange(self, offset: int, value: int,
                      ctx: AccessContext) -> int:
        """Atomic read-modify-write access (SHRIMP-1's initiation, §2.4)."""
        self._j_access()
        shadow = self.layout.decode_offset(offset)
        if shadow is None:
            raise DeviceError(
                f"{self.name}: atomic exchange outside shadow region "
                f"at offset {offset:#x}")
        access = self._shadow_access("exchange", shadow.ctx_id,
                                     shadow.paddr, value, ctx)
        if self.spans.enabled:
            sp = self._access_span("dma.shadow_exchange", ctx,
                                   ctx_id=access.ctx_id, paddr=access.paddr,
                                   data=value)
            status = self.protocol.on_shadow_exchange(access)
            self.spans.end(sp, state_to=self.protocol.state_label(),
                           status=status)
        else:
            status = self.protocol.on_shadow_exchange(access)
        if self.trace.enabled:
            self.trace.emit(ctx.when, self.name, "shadow-exchange",
                            ctx_id=access.ctx_id, paddr=access.paddr,
                            data=value, status=status, issuer=ctx.issuer)
        return status

    def _access_span(self, name: str, ctx: AccessContext,
                     **attrs) -> Span:
        """Open a recognizer span for one MMIO access.

        The recognizer state *before* the protocol callback is recorded
        at begin time; callers add ``state_to`` when ending the span, so
        every span shows the FSM transition the access caused.
        """
        track = (f"proc{ctx.issuer}" if ctx.issuer is not None
                 else self.name)
        return self.spans.begin(
            name, track=track, protocol=self.protocol.name,
            state_from=self.protocol.state_label(), **attrs)

    # ------------------------------------------------------------------
    # Start logic (shared by every protocol and the kernel path)
    # ------------------------------------------------------------------

    def try_start(self, psrc: int, pdst: int, size: int,
                  ctx: Optional[RegisterContext] = None,
                  issuer: Optional[int] = None,
                  via: Optional[str] = None) -> int:
        """Validate and, if legal, start a transfer.

        Returns the status word software sees: bytes remaining (== size at
        start time) on success, ``STATUS_FAILURE`` otherwise.
        """
        via_name = via if via is not None else self.protocol.name
        ok = (size > 0
              and self._valid_source(psrc, size)
              and self._valid_endpoint(pdst, size))
        if ok and self.page_bounded and via_name != "kernel":
            if (page_base(psrc) != page_base(psrc + size - 1)
                    or page_base(pdst) != page_base(pdst + size - 1)):
                self.oversize_rejections += 1
                ok = False
        if self._undo is not None:
            self._j_access()
            self._undo.record_append(self.initiations)
        if len(self._init_fp) > len(self.initiations):
            # An undo truncated the records below the cached prefix; the
            # new record replaces a cached slot, so cut the cache first.
            self._init_fp = self._init_fp[:len(self.initiations)]
        self.initiations.append(InitiationRecord(
            when=self.sim.now, psrc=psrc, pdst=pdst, size=size,
            issuer=issuer, via=via_name,
            ctx_id=ctx.ctx_id if ctx is not None else None, ok=ok))
        if not ok:
            if ctx is not None:
                ctx.failed = True
            if self.trace.enabled:
                self.trace.emit(self.sim.now, self.name, "start-rejected",
                                psrc=psrc, pdst=pdst, size=size,
                                via=via_name)
            if self.spans.enabled:
                # Instant span: begin and end at the same timestamp.
                sp = self.spans.begin("dma.rejected", track="engine",
                                      psrc=psrc, pdst=pdst, size=size,
                                      via=via_name)
                self.spans.end(sp, outcome="rejected")
            return STATUS_FAILURE
        self.transfer_engine.last_via = via_name
        transfer = self.transfer_engine.start(psrc, pdst, size)
        if ctx is not None:
            ctx.transfer = transfer
            ctx.failed = False
            ctx.initiations += 1
        if self.trace.enabled:
            self.trace.emit(self.sim.now, self.name, "start",
                            psrc=psrc, pdst=pdst, size=size, via=via_name,
                            issuer=issuer)
        return transfer.remaining(self.sim.now)

    def started_transfers(self) -> List[InitiationRecord]:
        """All successful initiations, in order."""
        return [r for r in self.initiations if r.ok]

    def _valid_endpoint(self, paddr: int, size: int) -> bool:
        """Whether [paddr, paddr+size) is a legal transfer destination.

        The base engine accepts only local RAM; the NIC subclass also
        accepts remote global addresses.
        """
        return self.ram.contains(paddr, size)

    def _valid_source(self, paddr: int, size: int) -> bool:
        """Whether [paddr, paddr+size) is a legal transfer source.

        Sources must always be memory this engine can read — local RAM
        (the NIC subclass additionally requires the node bits to name
        *this* node).
        """
        return self._valid_endpoint(paddr, size)

    def _move_bytes(self, psrc: int, pdst: int, size: int) -> None:
        """Default mover: a local RAM copy."""
        self.ram.copy(psrc, pdst, size)
        if self.coherence_hook is not None:
            self.coherence_hook(pdst, size)

    # ------------------------------------------------------------------
    # Privileged pages
    # ------------------------------------------------------------------

    def _key_write(self, reg: int, value: int, ctx: AccessContext) -> None:
        if not ctx.kernel:
            self.protocol_violations += 1
            return
        ctx_id = reg // 8
        if 0 <= ctx_id < len(self.contexts):
            self._j_table(self.key_table, ctx_id)
            self.key_table[ctx_id] = value

    def _key_read(self, reg: int, ctx: AccessContext) -> int:
        if not ctx.kernel:
            self.protocol_violations += 1
            return STATUS_FAILURE
        return self.key_table.get(reg // 8, 0)

    def _control_write(self, reg: int, value: int,
                       ctx: AccessContext) -> None:
        if not ctx.kernel:
            self.protocol_violations += 1
            return
        if reg == REG_SOURCE:
            self._control_src = value
        elif reg == REG_DESTINATION:
            self._control_dst = value
        elif reg == REG_SIZE:
            # Fig. 1: writing SIZE starts the kernel-level DMA.
            status = self.try_start(self._control_src, self._control_dst,
                                    value, issuer=ctx.issuer, via="kernel")
            self._control_status = status
            self._control_transfer = (
                self.transfer_engine.history[-1]
                if status != STATUS_FAILURE else None)
        elif reg == REG_CURRENT_PID:
            self.current_pid = value
            self.protocol.on_context_switch(value)
        elif reg == REG_ABORT:
            self.protocol.on_abort_pending()
        elif reg == REG_MAPOUT_SRC:
            self._mapout_src_latch = value
        elif reg == REG_MAPOUT_DST:
            if self._mapout_src_latch is None:
                raise DeviceError(
                    f"{self.name}: MAPOUT_DST written with no source latched")
            self._j_table(self.mapout_table, page_base(self._mapout_src_latch))
            self.mapout_table[page_base(self._mapout_src_latch)] = value
            self._mapout_src_latch = None
        else:
            raise DeviceError(
                f"{self.name}: write to unknown control register {reg:#x}")

    def _control_read(self, reg: int, ctx: AccessContext) -> int:
        if not ctx.kernel:
            self.protocol_violations += 1
            return STATUS_FAILURE
        if reg == REG_STATUS:
            if self._control_transfer is not None:
                return self._control_transfer.remaining(ctx.when)
            return self._control_status
        if reg == REG_SOURCE:
            return self._control_src
        if reg == REG_DESTINATION:
            return self._control_dst
        if reg == REG_CURRENT_PID:
            return self.current_pid & ((1 << 64) - 1)
        raise DeviceError(
            f"{self.name}: read of unknown control register {reg:#x}")

    # ------------------------------------------------------------------
    # Administration (OS boot/setup paths; not on any timed fast path)
    # ------------------------------------------------------------------

    def install_key(self, ctx_id: int, key: int) -> None:
        """Install the protection key for context *ctx_id* (OS setup)."""
        self._check_ctx_id(ctx_id)
        self._j_table(self.key_table, ctx_id)
        self.key_table[ctx_id] = key

    def assign_context(self, ctx_id: int, pid: int) -> RegisterContext:
        """Record OS assignment of a context to a process, resetting it."""
        self._check_ctx_id(ctx_id)
        context = self.contexts[ctx_id]
        context.reset()
        context.owner_pid = pid
        return context

    def release_context(self, ctx_id: int) -> None:
        """OS released a context: scrub state, key, and ownership."""
        self._check_ctx_id(ctx_id)
        self.contexts[ctx_id].reset()
        self.contexts[ctx_id].owner_pid = None
        self._j_table(self.key_table, ctx_id)
        self.key_table.pop(ctx_id, None)

    def install_mapout(self, psrc_page: int, pdst: int) -> None:
        """Install a SHRIMP-1 mapped-out entry (OS setup path)."""
        self._j_table(self.mapout_table, page_base(psrc_page))
        self.mapout_table[page_base(psrc_page)] = pdst

    def mapout_destination(self, psrc: int) -> Optional[int]:
        """The mapped-out destination for *psrc*, or None."""
        base = self.mapout_table.get(page_base(psrc))
        if base is None:
            return None
        return base + page_offset(psrc)

    # ------------------------------------------------------------------
    # Snapshot/restore (the incremental checker's backtracking substrate)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture all engine-owned mutable state.

        Covers the register contexts, privileged tables, control page,
        initiation records (append-only — captured as a length), the
        protocol FSM, the transfer engine, and the trace log.  The
        simulator and RAM are externally owned and snapshot separately
        (see :meth:`repro.verify.interleave.ProtocolHarness.snapshot`).
        """
        return {
            "contexts": [c.snapshot() for c in self.contexts],
            "key_table": dict(self.key_table),
            "mapout_table": dict(self.mapout_table),
            "current_pid": self.current_pid,
            "n_initiations": len(self.initiations),
            "protocol_violations": self.protocol_violations,
            "oversize_rejections": self.oversize_rejections,
            "control": (self._control_src, self._control_dst,
                        self._control_status, self._control_transfer,
                        self._mapout_src_latch),
            "protocol": self.protocol.snapshot_state(),
            "transfer_engine": self.transfer_engine.snapshot(),
            "trace": self.trace.snapshot(),
            "spans": self.spans.snapshot(),
        }

    def restore(self, token: dict) -> None:
        """Return to a state captured by :meth:`snapshot`."""
        for context, state in zip(self.contexts, token["contexts"]):
            context.restore(state)
        self.key_table = dict(token["key_table"])
        self.mapout_table = dict(token["mapout_table"])
        self._tables_fp = None
        self.current_pid = token["current_pid"]
        del self.initiations[token["n_initiations"]:]
        self.protocol_violations = token["protocol_violations"]
        self.oversize_rejections = token["oversize_rejections"]
        (self._control_src, self._control_dst, self._control_status,
         self._control_transfer, self._mapout_src_latch) = token["control"]
        self.protocol.restore_state(token["protocol"])
        self.transfer_engine.restore(token["transfer_engine"])
        self.trace.restore(token["trace"])
        self.spans.restore(token["spans"])

    def fingerprint(self) -> tuple:
        """Hashable capture of all behaviour-determining engine state.

        Two engine states with equal fingerprints (plus equal simulator,
        RAM, and delivered-access positions) behave identically on every
        future access — the transposition table's merging criterion.
        """
        control_transfer = self._control_transfer
        control_value = (None if control_transfer is None else
                         (control_transfer.psrc, control_transfer.pdst,
                          control_transfer.size, control_transfer.started_at,
                          control_transfer.duration,
                          control_transfer.completed))
        tables = self._tables_fp
        if tables is None:
            tables = (tuple(sorted(self.key_table.items())),
                      tuple(sorted(self.mapout_table.items())))
            self._tables_fp = tables
        cached = self._init_fp
        n = len(self.initiations)
        if len(cached) != n:
            # Initiations only append or truncate (undo), so the value
            # tuple is cached as a length-keyed prefix; the append site
            # cuts the cache back when an undo shrank the list first.
            if len(cached) > n:
                cached = cached[:n]
            else:
                cached = cached + tuple(self.initiations[len(cached):])
            self._init_fp = cached
        return (
            tuple(c.fingerprint() for c in self.contexts),
            tables[0],
            tables[1],
            self.current_pid,
            cached,
            self.protocol_violations,
            self.oversize_rejections,
            (self._control_src, self._control_dst, self._control_status,
             control_value, self._mapout_src_latch),
            self.protocol.state_fingerprint(),
            self.transfer_engine.fingerprint(),
        )

    def reset(self) -> None:
        """Power-on reset: contexts, tables, protocol state, records."""
        for context in self.contexts:
            context.reset()
            context.owner_pid = None
        self.key_table.clear()
        self.mapout_table.clear()
        self._tables_fp = None
        self.current_pid = -1
        self.initiations.clear()
        self._init_fp = ()
        self.protocol_violations = 0
        self.oversize_rejections = 0
        self._control_src = 0
        self._control_dst = 0
        self._control_status = 0
        self._control_transfer = None
        self._mapout_src_latch = None
        self.protocol.reset()

    # ------------------------------------------------------------------

    def _shadow_access(self, op: str, ctx_id: int, paddr: int, data: int,
                       ctx: AccessContext) -> ShadowAccess:
        return ShadowAccess(op=op, ctx_id=ctx_id, paddr=paddr, data=data,
                            issuer=ctx.issuer, kernel=ctx.kernel,
                            when=ctx.when)

    def _check_ctx_id(self, ctx_id: int) -> None:
        if not 0 <= ctx_id < len(self.contexts):
            raise ConfigError(
                f"context id {ctx_id} out of range "
                f"[0, {len(self.contexts)})")
