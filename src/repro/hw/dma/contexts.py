"""DMA register contexts (§3.1).

"The DMA engine is equipped with several (say 4 to 8) register contexts.
Each context has a source register, a destination register, and a size
register [...] Distinct contexts are mapped into distinct memory pages so
that each process gets access rights for only a single context."

A context accumulates the arguments of one process's in-flight initiation
and tracks the status of its most recent transfer.  User software can only
reach the *size* register (any store to the context page lands there) and
the status readout (any load); the source/destination registers are filled
exclusively through shadow-address argument passing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...units import Time
from .status import STATUS_ACK, STATUS_FAILURE
from .transfer import Transfer


@dataclass
class RegisterContext:
    """One register context inside the DMA engine.

    Attributes:
        ctx_id: index of this context.
        src: latched source physical address (None until passed).
        dst: latched destination physical address.
        size: latched transfer size in bytes (None until stored).
        owner_pid: the process the OS assigned this context to (privileged
            bookkeeping — the protocol FSMs never read it).
        transfer: the most recently started transfer, for status reads.
        failed: sticky failure from the last initiation attempt.
    """

    ctx_id: int
    src: Optional[int] = None
    dst: Optional[int] = None
    size: Optional[int] = None
    owner_pid: Optional[int] = None
    transfer: Optional[Transfer] = None
    failed: bool = False
    initiations: int = field(default=0)

    @property
    def args_complete(self) -> bool:
        """Whether source, destination, and size have all been passed."""
        return (self.src is not None and self.dst is not None
                and self.size is not None)

    def clear_args(self) -> None:
        """Drop latched arguments (after a start or a reassignment)."""
        self.src = None
        self.dst = None
        self.size = None

    def reset(self) -> None:
        """Full reset: arguments, status, and ownership bookkeeping."""
        self.clear_args()
        self.transfer = None
        self.failed = False

    def snapshot(self) -> tuple:
        """Capture all mutable fields (the transfer ref is captured as-is;
        its own ``completed`` flag is the transfer engine's to restore)."""
        return (self.src, self.dst, self.size, self.owner_pid,
                self.transfer, self.failed, self.initiations)

    def restore(self, token: tuple) -> None:
        """Return to a state captured by :meth:`snapshot`."""
        (self.src, self.dst, self.size, self.owner_pid,
         self.transfer, self.failed, self.initiations) = token

    def fingerprint(self) -> tuple:
        """Hashable value capture (the transfer by value, not identity)."""
        transfer = self.transfer
        transfer_value = (None if transfer is None else
                          (transfer.psrc, transfer.pdst, transfer.size,
                           transfer.started_at, transfer.duration,
                           transfer.completed))
        return (self.src, self.dst, self.size, self.owner_pid,
                transfer_value, self.failed, self.initiations)

    def status_word(self, now: Time) -> int:
        """The value a load from this context page returns (§3.1).

        -1 (all-ones) on failure, otherwise the bytes remaining in the
        current transfer (0 once complete, also 0 if nothing ever ran).
        """
        if self.failed:
            return STATUS_FAILURE
        if self.transfer is None:
            return STATUS_ACK
        return self.transfer.remaining(now)
