"""Initiation-protocol plug-in interface.

The DMA engine forwards every access it receives to the active
:class:`InitiationProtocol`.  A protocol sees:

* **shadow accesses** — loads/stores/atomic-exchanges whose decoded
  :class:`ShadowAccess` carries the argument physical address, the
  CONTEXT_ID from the address bits (0 under plain shadow encoding), and
  the raw data word;
* **register-context accesses** — loads/stores to a context page (§3.1:
  stores land on the size register, loads return the status word);
* **control events** — the privileged hook register writes that model the
  SHRIMP-2 ("abort pending on context switch") and FLASH ("tell the engine
  who runs now") kernel modifications.

Hard rule, enforced by the verification suite: a protocol may read
``access.issuer`` **only for tracing** — never to make a protocol
decision.  The engine cannot know the issuing process in real hardware;
that is the entire problem the paper solves.  (The FLASH baseline learns
the process identity only through its explicit current-pid register, which
is exactly the kernel modification it requires.)
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Tuple

from ...errors import ConfigError
from ...sim.snapshot import freeze
from ...units import Time
from .status import STATUS_FAILURE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .contexts import RegisterContext
    from .engine import DmaEngine


@dataclass(frozen=True)
class ShadowAccess:
    """One decoded access to the shadow region.

    Attributes:
        op: "load", "store", or "exchange".
        ctx_id: CONTEXT_ID bits carried in the shadow address.
        paddr: the decoded argument physical address.
        data: the store/exchange data word (0 for loads).
        issuer: issuing process id — tracing/verification only.
        kernel: whether issued from kernel mode.
        when: delivery timestamp.
    """

    op: str
    ctx_id: int
    paddr: int
    data: int
    issuer: Optional[int]
    kernel: bool
    when: Time


@dataclass(frozen=True)
class SetupOp:
    """One privileged (kernel-side) protocol configuration operation.

    Methods whose protection state lives device-side — IOMMU page-table
    entries, capability-table entries — receive it through these ops
    rather than through MMIO accesses: the kernel performs them on an
    untimed setup path, exactly like :meth:`~repro.hw.dma.engine.
    DmaEngine.install_key` for the keyed method.  The verification
    harness replays a scenario's setup ops after every reset, so they
    describe the world *before* the racing streams run.

    Attributes:
        kind: operation name; each protocol documents the kinds it
            accepts (e.g. ``iommu-map``, ``cap-mint``).
        args: kind-specific positional arguments (hashable values only,
            so scenarios stay usable as fixture data).
    """

    kind: str
    args: Tuple = ()


class InitiationProtocol(ABC):
    """Base class for the per-method DMA-initiation state machines."""

    #: Method name, e.g. "keyed"; set by subclasses.
    name: str = "abstract"

    def __init__(self) -> None:
        self._engine: Optional["DmaEngine"] = None

    # -- wiring -----------------------------------------------------------------

    def attach(self, engine: "DmaEngine") -> None:
        """Bind this protocol to its engine.  Called by the engine."""
        self._engine = engine
        self.reset()

    @property
    def engine(self) -> "DmaEngine":
        """The owning engine (raises if unattached)."""
        if self._engine is None:
            raise RuntimeError(f"protocol {self.name} is not attached")
        return self._engine

    # -- the shadow region --------------------------------------------------------

    @abstractmethod
    def on_shadow_store(self, access: ShadowAccess) -> None:
        """Handle a store to a shadow address."""

    @abstractmethod
    def on_shadow_load(self, access: ShadowAccess) -> int:
        """Handle a load from a shadow address; return the status word."""

    def on_shadow_exchange(self, access: ShadowAccess) -> int:
        """Handle an atomic exchange to a shadow address.

        Only SHRIMP-1 uses these; everyone else reports failure.
        """
        return STATUS_FAILURE

    # -- register-context pages ------------------------------------------------------

    def on_context_store(self, ctx: "RegisterContext", offset: int,
                         value: int, access: ShadowAccess) -> None:
        """A store to a context page.  Default (§3.1): set the size."""
        ctx.size = value
        ctx.failed = False

    def on_context_load(self, ctx: "RegisterContext", offset: int,
                        access: ShadowAccess) -> int:
        """A load from a context page.  Default (§3.1): the status word."""
        return ctx.status_word(access.when)

    # -- privileged setup (kernel-managed protocol configuration) ----------------------

    def apply_setup(self, op: "SetupOp") -> None:
        """Apply one kernel-side configuration operation.

        Only protocols with device-side protection state (IOMMU tables,
        capability tables) accept setup ops; everyone else rejects them
        loudly so a scenario cannot silently misconfigure a method.
        """
        raise ConfigError(
            f"protocol {self.name} accepts no setup op {op.kind!r}")

    # -- privileged hooks (the kernel modifications our methods avoid) -----------------

    def on_context_switch(self, new_pid: int) -> None:
        """FLASH hook: the kernel announced the running process."""

    def on_abort_pending(self) -> None:
        """SHRIMP-2 hook: the kernel invalidated half-started initiations."""

    # -- lifecycle ----------------------------------------------------------------------

    @abstractmethod
    def reset(self) -> None:
        """Return to power-on state (also called on attach)."""

    # -- observability ------------------------------------------------------------------

    def state_label(self) -> str:
        """A short human-readable label of the recognizer's FSM state.

        Used only by the span layer to annotate shadow-access spans with
        the state transition they caused (``state_from`` / ``state_to``)
        — never by any protocol decision.  The default names the class;
        protocols with interesting state override it.
        """
        return type(self).__name__

    # -- snapshot/restore ---------------------------------------------------------------

    def snapshot_state(self) -> Any:
        """Capture the FSM's mutable state for later :meth:`restore_state`.

        The base implementation deep-copies every attribute except the
        engine back-reference, which is correct for any FSM whose state
        is scalars/dicts/lists/dataclasses; concrete protocols override
        it with cheap hand-rolled tuples on the checking hot path.
        """
        state = dict(self.__dict__)
        state.pop("_engine", None)
        return copy.deepcopy(state)

    def restore_state(self, state: Any) -> None:
        """Return to a state captured by :meth:`snapshot_state`."""
        self.__dict__.update(copy.deepcopy(state))

    def state_fingerprint(self) -> Any:
        """Hashable capture of the state that determines future behaviour.

        Used by the transposition table to merge converged states: two
        prefixes whose fingerprints (and other component fingerprints)
        match have identical subtrees.  Pure statistics counters that no
        decision or property ever reads may be excluded by overrides.
        """
        return freeze(self.snapshot_state())
