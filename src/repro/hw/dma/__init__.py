"""The DMA engine and the paper's initiation protocols.

The engine (:mod:`repro.hw.dma.engine`) is an MMIO device whose physical
window contains three kinds of addresses:

* **register-context pages** (§3.1) — one page per context, mappable into
  exactly one process's address space;
* **privileged pages** — the key table and the kernel's classic DMA
  registers (Fig. 1), mapped only in kernel space;
* the **shadow region** (§2.3) — where a load or store is interpreted as
  *argument passing*: the decoded physical address is the argument, never a
  real memory access.

Each initiation method from the paper is a pluggable
:class:`~repro.hw.dma.recognizer.InitiationProtocol` implementing the exact
sequence semantics of Figs. 1–4 and 7.
"""

from .contexts import RegisterContext
from .engine import DmaEngine, InitiationRecord
from .recognizer import InitiationProtocol, ShadowAccess
from .shadow import ShadowLayout, ShadowRef
from .status import STATUS_ACK, STATUS_FAILURE, is_failure
from .transfer import DmaTransferEngine, Transfer

__all__ = [
    "DmaEngine",
    "DmaTransferEngine",
    "InitiationProtocol",
    "InitiationRecord",
    "RegisterContext",
    "STATUS_ACK",
    "STATUS_FAILURE",
    "ShadowAccess",
    "ShadowLayout",
    "ShadowRef",
    "Transfer",
    "is_failure",
]
