"""Shadow-address encoding and decoding (§2.3, §3.2).

A *shadow address* is a physical address inside the DMA engine's window
that the engine interprets as "the argument is this physical address" —
no load or store is actually performed there.  The OS creates, for every
communication page a process owns, a second (uncached) virtual mapping
whose physical side is ``shadow(paddr)``; the MMU therefore guarantees that
a process can only emit shadow addresses for pages it has rights on.

Two encodings share one codec:

* **Plain shadow** (§2.3): ``shadow(p) = SHADOW_BASE + p`` — used by the
  SHRIMP, PAL, key-based and repeated-passing methods (context id 0).
* **Extended shadow** (§3.2): the high bits of the shadow physical address
  carry a small CONTEXT_ID assigned per process by the OS, so the engine
  knows *which process* each access belongs to without any kernel hook:
  ``shadow(p, ctx) = SHADOW_BASE + (ctx << ctx_shift) + p``.

The layout also fixes where the register-context pages and privileged
pages sit inside the engine window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...errors import AddressError, ConfigError
from ..pagetable import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE


@dataclass(frozen=True)
class ShadowRef:
    """A decoded shadow access target.

    Attributes:
        ctx_id: the CONTEXT_ID carried in the address (0 under plain
            shadow encoding).
        paddr: the physical address being passed as an argument.
    """

    ctx_id: int
    paddr: int


@dataclass(frozen=True)
class ShadowLayout:
    """Geometry of the DMA engine's physical window.

    Window map (offsets relative to ``window_base``)::

        [0, n_contexts * PAGE)          register-context pages, one per ctx
        [n_contexts * PAGE, +PAGE)      key table (kernel-only)
        [(n_contexts+1) * PAGE, +PAGE)  control page (kernel-only, Fig. 1
                                        registers + hook registers)
        [shadow_offset, shadow_offset + (1 << (ctx_bits + ctx_shift)))
                                        the shadow region

    Attributes:
        window_base: physical base of the whole engine window.
        n_contexts: number of register contexts (paper: "say 4 to 8").
        ctx_bits: width of the CONTEXT_ID field (paper envisions 1-2 bits
            for extended shadow; the keyed method can use more).
        ctx_shift: bits of argument address space per context; every
            physical memory address the engine can name must fit below
            ``1 << ctx_shift``.
        shadow_offset: offset of the shadow region inside the window.
    """

    window_base: int = 1 << 40
    n_contexts: int = 4
    ctx_bits: int = 2
    ctx_shift: int = 34
    shadow_offset: int = 1 << 36

    def __post_init__(self) -> None:
        if self.window_base & PAGE_MASK:
            raise ConfigError("window_base must be page-aligned")
        if not 1 <= self.n_contexts <= 64:
            raise ConfigError(
                f"n_contexts must be in [1, 64], got {self.n_contexts}")
        if self.ctx_bits < 0 or (1 << self.ctx_bits) < self.n_contexts:
            raise ConfigError(
                f"ctx_bits={self.ctx_bits} cannot name "
                f"{self.n_contexts} contexts")
        if self.shadow_offset < (self.n_contexts + 2) * PAGE_SIZE:
            raise ConfigError("shadow region overlaps register pages")

    # -- derived geometry -----------------------------------------------------

    @property
    def key_page_offset(self) -> int:
        """Window offset of the kernel-only key-table page."""
        return self.n_contexts * PAGE_SIZE

    @property
    def control_page_offset(self) -> int:
        """Window offset of the kernel-only control page."""
        return (self.n_contexts + 1) * PAGE_SIZE

    @property
    def shadow_region_size(self) -> int:
        """Bytes of shadow space (all contexts)."""
        return 1 << (self.ctx_bits + self.ctx_shift)

    @property
    def window_size(self) -> int:
        """Total bytes of the engine window."""
        return self.shadow_offset + self.shadow_region_size

    @property
    def max_argument_paddr(self) -> int:
        """Exclusive upper bound on encodable argument addresses."""
        return 1 << self.ctx_shift

    # -- register pages ------------------------------------------------------------

    def context_page_paddr(self, ctx_id: int) -> int:
        """Physical base of register-context page *ctx_id*."""
        self._check_ctx(ctx_id)
        return self.window_base + ctx_id * PAGE_SIZE

    def context_of_offset(self, offset: int) -> Optional[int]:
        """Which context page *offset* falls in, or None."""
        page = offset >> PAGE_SHIFT
        if 0 <= page < self.n_contexts:
            return page
        return None

    # -- shadow encode/decode -----------------------------------------------------------

    def shadow_paddr(self, paddr: int, ctx_id: int = 0) -> int:
        """Encode ``shadow(paddr)`` (optionally with a CONTEXT_ID).

        Raises:
            AddressError: if *paddr* does not fit the argument field.
        """
        self._check_ctx(ctx_id)
        if not 0 <= paddr < self.max_argument_paddr:
            raise AddressError(
                f"paddr {paddr:#x} does not fit in "
                f"{self.ctx_shift}-bit shadow argument field")
        return (self.window_base + self.shadow_offset
                + (ctx_id << self.ctx_shift) + paddr)

    def decode_offset(self, offset: int) -> Optional[ShadowRef]:
        """Decode a window *offset* as a shadow reference, or None.

        Returns None for offsets in the register/privileged region.
        """
        rel = offset - self.shadow_offset
        if rel < 0 or rel >= self.shadow_region_size:
            return None
        ctx_id = rel >> self.ctx_shift
        paddr = rel & (self.max_argument_paddr - 1)
        return ShadowRef(ctx_id=ctx_id, paddr=paddr)

    def decode_paddr(self, shadow_addr: int) -> Optional[ShadowRef]:
        """Decode an absolute physical address as a shadow reference."""
        return self.decode_offset(shadow_addr - self.window_base)

    def is_shadow(self, paddr: int) -> bool:
        """Whether an absolute physical address lies in the shadow region."""
        return self.decode_paddr(paddr) is not None

    def _check_ctx(self, ctx_id: int) -> None:
        if not 0 <= ctx_id < self.n_contexts:
            raise AddressError(
                f"context id {ctx_id} out of range "
                f"[0, {self.n_contexts})")
