"""Page tables and protection bits.

The paper's protection argument rests entirely on page-granularity virtual
memory: the OS creates mappings (including *shadow* mappings into the DMA
engine's physical window), and the hardware enforces read/write permissions
on every access.  We model an Alpha-style 8 KiB page.

A :class:`PageTable` is a per-process map from virtual page number to
:class:`Pte`.  PTEs carry the physical frame base, permission bits, and a
``user`` bit (kernel-only mappings are invisible to user mode — this is how
the key table inside the DMA engine stays unreadable, §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Flag, auto
from typing import Dict, Iterator, Optional, Tuple

from ..errors import AddressError, PageFault, ProtectionFault

#: Alpha 21064 page size: 8 KiB.
PAGE_SHIFT = 13
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class Perm(Flag):
    """Page permission bits."""

    NONE = 0
    READ = auto()
    WRITE = auto()
    RW = READ | WRITE


@dataclass(frozen=True)
class Pte:
    """A page-table entry.

    Attributes:
        pframe: physical base address of the mapped frame (page-aligned).
        perm: permission bits for user-mode accesses.
        user: whether user mode may use this mapping at all.
        uncached: whether accesses through this mapping bypass the cache
            (device/MMIO mappings — all shadow mappings are uncached).
    """

    pframe: int
    perm: Perm
    user: bool = True
    uncached: bool = False

    def __post_init__(self) -> None:
        if self.pframe & PAGE_MASK:
            raise AddressError(
                f"PTE frame {self.pframe:#x} is not page-aligned")

    def allows(self, access: str) -> bool:
        """Whether this PTE permits *access* ("read" or "write")."""
        if access == "read":
            return bool(self.perm & Perm.READ)
        if access == "write":
            return bool(self.perm & Perm.WRITE)
        raise ValueError(f"unknown access kind {access!r}")


def vpn_of(vaddr: int) -> int:
    """Virtual page number containing *vaddr*."""
    return vaddr >> PAGE_SHIFT


def page_base(addr: int) -> int:
    """The page-aligned base of the page containing *addr*."""
    return addr & ~PAGE_MASK


def page_offset(addr: int) -> int:
    """The offset of *addr* within its page."""
    return addr & PAGE_MASK


def pages_covering(addr: int, nbytes: int) -> Iterator[int]:
    """Yield the VPNs of every page touched by [addr, addr+nbytes)."""
    if nbytes <= 0:
        raise AddressError(f"range length must be positive, got {nbytes}")
    first = vpn_of(addr)
    last = vpn_of(addr + nbytes - 1)
    yield from range(first, last + 1)


class PageTable:
    """A per-process virtual-to-physical mapping.

    The table is sparse (dict-backed) and enforces page alignment on both
    sides of every mapping.
    """

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self._entries: Dict[int, Pte] = {}

    # -- construction ---------------------------------------------------------

    def map_page(self, vaddr: int, pte: Pte) -> None:
        """Install *pte* for the page containing *vaddr*.

        Raises:
            AddressError: if *vaddr* is not page-aligned or already mapped.
        """
        if vaddr & PAGE_MASK:
            raise AddressError(f"map of unaligned vaddr {vaddr:#x}")
        vpn = vpn_of(vaddr)
        if vpn in self._entries:
            raise AddressError(
                f"vaddr {vaddr:#x} already mapped in {self.owner or 'table'}")
        self._entries[vpn] = pte

    def map_range(self, vaddr: int, paddr: int, nbytes: int, perm: Perm,
                  user: bool = True, uncached: bool = False) -> None:
        """Map a contiguous range of whole pages.

        Raises:
            AddressError: on misalignment or a partial-page length.
        """
        if vaddr & PAGE_MASK or paddr & PAGE_MASK:
            raise AddressError(
                f"range map must be page-aligned: v={vaddr:#x} p={paddr:#x}")
        if nbytes <= 0 or nbytes & PAGE_MASK:
            raise AddressError(
                f"range length must be a positive page multiple: {nbytes}")
        for offset in range(0, nbytes, PAGE_SIZE):
            self.map_page(vaddr + offset,
                          Pte(paddr + offset, perm, user, uncached))

    def unmap_page(self, vaddr: int) -> Pte:
        """Remove and return the mapping for the page containing *vaddr*.

        Raises:
            PageFault: if the page is not mapped.
        """
        vpn = vpn_of(vaddr)
        if vpn not in self._entries:
            raise PageFault(vaddr, "unmap")
        return self._entries.pop(vpn)

    def protect_page(self, vaddr: int, perm: Perm) -> None:
        """Change the permissions of an existing mapping.

        Raises:
            PageFault: if the page is not mapped.
        """
        vpn = vpn_of(vaddr)
        if vpn not in self._entries:
            raise PageFault(vaddr, "protect")
        old = self._entries[vpn]
        self._entries[vpn] = Pte(old.pframe, perm, old.user, old.uncached)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, vaddr: int) -> Optional[Pte]:
        """Return the PTE for *vaddr*'s page, or None if unmapped."""
        return self._entries.get(vpn_of(vaddr))

    def translate(self, vaddr: int, access: str,
                  user_mode: bool = True) -> int:
        """Translate *vaddr* with protection checks.

        Args:
            vaddr: the virtual address.
            access: "read" or "write".
            user_mode: whether the access comes from user mode; kernel mode
                bypasses the user bit and permission checks (the kernel has
                already done its own checking, as in Fig. 1's pseudo-code).

        Returns:
            The physical address.

        Raises:
            PageFault: if the page is unmapped (or kernel-only in user mode).
            ProtectionFault: if the permission bits deny the access.
        """
        pte = self.lookup(vaddr)
        if pte is None:
            raise PageFault(vaddr, access)
        if user_mode:
            if not pte.user:
                raise PageFault(vaddr, access)
            if not pte.allows(access):
                raise ProtectionFault(vaddr, access)
        return pte.pframe | page_offset(vaddr)

    def check_range(self, vaddr: int, nbytes: int, access: str) -> None:
        """Verify an entire byte range is mapped with *access* permission.

        This is the kernel's ``check_size()`` from Fig. 1: before starting a
        kernel-level DMA the OS validates every page in the transfer.

        Raises:
            PageFault / ProtectionFault: on the first offending page.
        """
        for vpn in pages_covering(vaddr, nbytes):
            self.translate(vpn << PAGE_SHIFT, access, user_mode=True)

    def mapped_pages(self) -> Iterator[Tuple[int, Pte]]:
        """Yield (vpn, pte) pairs for every mapping, in VPN order."""
        for vpn in sorted(self._entries):
            yield vpn, self._entries[vpn]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vaddr: int) -> bool:
        return vpn_of(vaddr) in self._entries
