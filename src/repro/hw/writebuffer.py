"""The CPU write buffer.

Stores to uncached (device) space are *posted*: the CPU deposits them in a
small write buffer and continues; the buffer drains to the bus in FIFO
order when a memory barrier executes, when an uncached load needs ordering,
or when the buffer fills.

Crucially for the paper, real write buffers may **collapse** successive
stores to the same address (footnote 6): the second store simply replaces
the first entry's data and never appears on the bus as a separate
transaction.  The repeated-passing protocol (§3.3) stores to the *same*
shadow address twice, so without explicit memory barriers the DMA engine
never sees the repeats and the initiation cannot succeed.  The ablation
benchmark flips :attr:`WriteBuffer.collapsing` to demonstrate exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ConfigError
from ..units import Time

#: Signature of the drain target: (paddr, value) -> bus cost.
DrainFn = Callable[[int, int], Time]


@dataclass
class _PendingStore:
    paddr: int
    value: int


class WriteBuffer:
    """A FIFO of posted uncached stores with optional same-address collapsing.

    Two ordering models are supported:

    * **strong** (``relaxed=False``, the default): an uncached load drains
      every pending store first, so the device observes program order.
      This is the behaviour of a bus interface that keeps one CPU's
      accesses to a device FIFO.
    * **relaxed** (``relaxed=True``): uncached loads bypass pending stores
      (the device may see the load *before* earlier stores), and a load
      whose address matches a pending entry is *serviced by the write
      buffer* — it returns the buffered data and never reaches the device
      at all.  This is the hardware behaviour the paper's footnote 6
      warns about, and it is fatal to the repeated-passing sequence
      unless memory barriers are inserted; the ablation benchmark
      demonstrates exactly that.

    Args:
        capacity: number of entries (typical early-90s CPUs: 4).
        collapsing: merge a new store into an existing same-address entry
            instead of appending (footnote 6's "collapsed in ... the
            write buffer").
        relaxed: enable load bypassing and load forwarding as above.
    """

    def __init__(self, capacity: int = 4, collapsing: bool = True,
                 relaxed: bool = False) -> None:
        if capacity <= 0:
            raise ConfigError(
                f"write buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.collapsing = collapsing
        self.relaxed = relaxed
        self.stores_posted = 0
        self.stores_collapsed = 0
        self.loads_forwarded = 0
        self.drains = 0
        self._entries: List[_PendingStore] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """Whether a new entry would exceed capacity."""
        return len(self._entries) >= self.capacity

    def pending_addresses(self) -> List[int]:
        """Addresses currently buffered, oldest first."""
        return [e.paddr for e in self._entries]

    def forward(self, paddr: int) -> Optional[int]:
        """Service a load from a pending same-address entry (relaxed mode).

        Returns the buffered value, or None when the load must go to the
        bus.  Only active in relaxed mode — a strongly ordered interface
        drains before the load instead.
        """
        if not self.relaxed:
            return None
        for entry in reversed(self._entries):
            if entry.paddr == paddr:
                self.loads_forwarded += 1
                return entry.value
        return None

    def post(self, paddr: int, value: int,
             drain: DrainFn) -> Time:
        """Post a store.

        If the buffer is full the oldest entry drains first (cost charged).
        With collapsing enabled, a same-address entry is overwritten in
        place at zero bus cost.

        Returns:
            Bus time spent making room (0 unless the buffer was full).
        """
        self.stores_posted += 1
        if self.collapsing:
            for entry in self._entries:
                if entry.paddr == paddr:
                    entry.value = value
                    self.stores_collapsed += 1
                    return 0
        cost: Time = 0
        if self.full:
            cost = self._drain_one(drain)
        self._entries.append(_PendingStore(paddr, value))
        return cost

    def flush(self, drain: DrainFn) -> Time:
        """Drain every entry in FIFO order (memory barrier).

        Returns:
            Total bus time of the drained stores.
        """
        total: Time = 0
        while self._entries:
            total += self._drain_one(drain)
        return total

    def discard(self) -> int:
        """Drop all entries without performing them (power-on reset only).

        Returns:
            The number of entries dropped.
        """
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    def _drain_one(self, drain: DrainFn) -> Time:
        entry = self._entries.pop(0)
        self.drains += 1
        return drain(entry.paddr, entry.value)
