"""A per-context I/O page table with a small IOTLB.

The paper's methods pass *physical* addresses because the 1997 engine
has no translation hardware; the MMU-mediated shadow mapping is what
keeps processes honest.  An IOMMU moves the guard into the device: user
processes name **virtual** buffer addresses (IOVAs), and the engine
walks a kernel-managed per-context I/O page table at initiation time.
A translation fault aborts the transfer with nothing moved — the same
all-or-nothing contract as the engine's ``page_bounded`` hardening.

Real IOMMUs cache translations in an IOTLB, and that cache is exactly
where the protection can rot: an unmap **must** shoot the stale entry
down, or a device can keep writing a page the kernel already revoked
and reused.  The model makes the shoot-down explicit so the
verification pipeline can check both the correct protocol (invalidate
on unmap) and the deliberately-weakened one (stale entries survive;
see :mod:`repro.hw.dma.protocols.iommu`).

Mapping granularity is the system page (:data:`~repro.hw.pagetable.
PAGE_SIZE`); translation of a byte range walks every page it touches,
requires the needed permission on each, and requires the physical
frames to be contiguous (the mover takes one base+size pair).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigError
from .pagetable import PAGE_SIZE, page_base, page_offset

#: Default IOTLB capacity ("small" — a handful of hot translations).
IOTLB_CAPACITY = 8


@dataclass(frozen=True)
class IommuEntry:
    """One I/O page-table (or IOTLB) entry.

    Attributes:
        phys_page: physical frame base the IOVA page maps to.
        writable: whether the device may write through this entry
            (read permission is always implied, matching the MMU
            model's write-implies-read).
    """

    phys_page: int
    writable: bool


class Iommu:
    """Per-context I/O page tables plus one shared FIFO IOTLB.

    The page tables are kernel-owned (map/unmap are privileged setup
    operations, never on a timed user path); the IOTLB is engine-owned
    and consulted first on every translation.  ``shootdown`` selects
    whether :meth:`unmap` invalidates the matching IOTLB entry — the
    correct behaviour — or leaves it to rot (the weakened variant the
    synthesis hunt must rediscover as unsafe).
    """

    def __init__(self, shootdown: bool = True,
                 tlb_capacity: int = IOTLB_CAPACITY) -> None:
        if tlb_capacity < 1:
            raise ConfigError("IOTLB capacity must be >= 1")
        self.shootdown = shootdown
        self.tlb_capacity = tlb_capacity
        # (ctx_id, iova_page) -> entry; the authoritative kernel tables.
        self._mappings: Dict[Tuple[int, int], IommuEntry] = {}
        # FIFO IOTLB over the same key space (insertion order = age).
        self._tlb: "OrderedDict[Tuple[int, int], IommuEntry]" = OrderedDict()
        self.tlb_hits = 0
        self.tlb_misses = 0
        self.faults = 0

    # -- kernel-managed page-table updates --------------------------------

    def map(self, ctx_id: int, iova_page: int, phys_page: int,
            writable: bool = True) -> None:
        """Install (or replace) one IOVA-page mapping for *ctx_id*."""
        key = (ctx_id, page_base(iova_page))
        self._mappings[key] = IommuEntry(page_base(phys_page), writable)
        # A replaced translation must not serve stale rights either.
        self._tlb.pop(key, None)

    def unmap(self, ctx_id: int, iova_page: int) -> None:
        """Remove one mapping; shoot down its IOTLB entry if configured."""
        key = (ctx_id, page_base(iova_page))
        self._mappings.pop(key, None)
        if self.shootdown:
            self._tlb.pop(key, None)

    def warm(self, ctx_id: int, iova_page: int) -> None:
        """Pre-fill the IOTLB from the page table (models prior DMA)."""
        key = (ctx_id, page_base(iova_page))
        entry = self._mappings.get(key)
        if entry is not None:
            self._fill(key, entry)

    def invalidate(self, ctx_id: Optional[int] = None) -> None:
        """Explicit IOTLB invalidation: everything, or one context's."""
        if ctx_id is None:
            self._tlb.clear()
            return
        for key in [k for k in self._tlb if k[0] == ctx_id]:
            del self._tlb[key]

    # -- translation ------------------------------------------------------

    def lookup_page(self, ctx_id: int, iova_page: int) -> Optional[IommuEntry]:
        """Translate one IOVA page, IOTLB first; None on fault."""
        key = (ctx_id, page_base(iova_page))
        cached = self._tlb.get(key)
        if cached is not None:
            self.tlb_hits += 1
            return cached
        self.tlb_misses += 1
        entry = self._mappings.get(key)
        if entry is None:
            return None
        self._fill(key, entry)
        return entry

    def translate(self, ctx_id: int, iova: int, size: int,
                  write: bool) -> Optional[int]:
        """Translate ``[iova, iova+size)``; None aborts the transfer.

        Every page the range touches must be mapped with the needed
        permission, and the physical frames must be contiguous so the
        result is a single base address the mover can use.
        """
        if size <= 0:
            self.faults += 1
            return None
        base_entry = self.lookup_page(ctx_id, iova)
        if base_entry is None or (write and not base_entry.writable):
            self.faults += 1
            return None
        phys = base_entry.phys_page + page_offset(iova)
        expected = base_entry.phys_page
        page = page_base(iova) + PAGE_SIZE
        while page < iova + size:
            entry = self.lookup_page(ctx_id, page)
            expected += PAGE_SIZE
            if (entry is None or (write and not entry.writable)
                    or entry.phys_page != expected):
                self.faults += 1
                return None
            page += PAGE_SIZE
        return phys

    def _fill(self, key: Tuple[int, int], entry: IommuEntry) -> None:
        self._tlb.pop(key, None)
        if len(self._tlb) >= self.tlb_capacity:
            self._tlb.popitem(last=False)
        self._tlb[key] = entry

    # -- snapshot/restore (checker backtracking substrate) ----------------

    def snapshot(self) -> tuple:
        """Capture tables, IOTLB contents *and order*, and counters."""
        return (dict(self._mappings), tuple(self._tlb.items()),
                self.tlb_hits, self.tlb_misses, self.faults)

    def restore(self, state: tuple) -> None:
        """Return to a state captured by :meth:`snapshot`."""
        mappings, tlb, hits, misses, faults = state
        self._mappings = dict(mappings)
        self._tlb = OrderedDict(tlb)
        self.tlb_hits = hits
        self.tlb_misses = misses
        self.faults = faults

    def fingerprint(self) -> tuple:
        """Hashable capture of behaviour-determining state.

        IOTLB order matters (FIFO eviction), so entries are captured in
        cache order; hit/miss/fault counters are statistics no decision
        reads and are excluded.
        """
        return (tuple(sorted(self._mappings.items())),
                tuple(self._tlb.items()))
