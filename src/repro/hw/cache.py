"""An optional direct-mapped data cache.

The paper's OS-slowness argument leans on Ousterhout's and Rosenblum's
observations that kernel code suffers poor locality — context switches
and syscalls run with cold caches.  The default timing model folds that
into the flat syscall cycle cost (which is what it calibrates against
Table 1), so the cache is **off by default**; enabling it
(``MachineConfig.data_cache=True``) lets experiments study the locality
effect explicitly: cached RAM accesses hit after the first touch, and a
context switch or a cache flush makes the next pass expensive again.

The model is a classic direct-mapped write-through cache over physical
addresses: tag per line, no dirty state (write-through keeps RAM
authoritative so DMA always sees current data without a coherence
protocol — the same simplification early NOW interfaces made by placing
communication buffers in uncached or write-through space).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError


class DataCache:
    """Direct-mapped, write-through, physically indexed cache.

    Args:
        n_lines: number of lines (power of two).
        line_bytes: bytes per line (power of two).
        hit_cycles: CPU cycles charged on a hit.
        miss_cycles: CPU cycles charged on a miss (the line fill).
    """

    def __init__(self, n_lines: int = 256, line_bytes: int = 32,
                 hit_cycles: float = 2.0,
                 miss_cycles: float = 20.0) -> None:
        if n_lines <= 0 or n_lines & (n_lines - 1):
            raise ConfigError(
                f"n_lines must be a power of two, got {n_lines}")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ConfigError(
                f"line_bytes must be a power of two, got {line_bytes}")
        self.n_lines = n_lines
        self.line_bytes = line_bytes
        self.hit_cycles = hit_cycles
        self.miss_cycles = miss_cycles
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self._tags: List[Optional[int]] = [None] * n_lines

    def _split(self, paddr: int) -> "tuple[int, int]":
        line_addr = paddr // self.line_bytes
        return line_addr % self.n_lines, line_addr // self.n_lines

    def access(self, paddr: int) -> float:
        """Perform one access; returns the CPU cycles it costs.

        Write-through with write-allocate: reads and writes behave
        identically for tag purposes.
        """
        index, tag = self._split(paddr)
        if self._tags[index] == tag:
            self.hits += 1
            return self.hit_cycles
        self.misses += 1
        self._tags[index] = tag
        return self.miss_cycles

    def contains(self, paddr: int) -> bool:
        """Whether *paddr*'s line is currently cached."""
        index, tag = self._split(paddr)
        return self._tags[index] == tag

    def invalidate_range(self, paddr: int, nbytes: int) -> int:
        """Invalidate every line overlapping [paddr, paddr+nbytes).

        The DMA engine calls this for transfer destinations so the CPU
        never reads stale lines after a transfer lands (the simple
        software-coherence discipline real non-coherent-I/O systems
        used).

        Returns:
            The number of lines invalidated.
        """
        if nbytes <= 0:
            return 0
        first = paddr // self.line_bytes
        last = (paddr + nbytes - 1) // self.line_bytes
        dropped = 0
        for line_addr in range(first, last + 1):
            index = line_addr % self.n_lines
            tag = line_addr // self.n_lines
            if self._tags[index] == tag:
                self._tags[index] = None
                dropped += 1
        return dropped

    def flush(self) -> None:
        """Drop every line (context switch on a cold-cache model)."""
        self.flushes += 1
        self._tags = [None] * self.n_lines

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 before any access)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
