"""A small fully associative TLB with LRU replacement.

The TLB matters to the reproduction for two reasons: it is part of the
timing model (TLB hits make the user-level shadow accesses cheap; kernel
entry costs include TLB effects folded into the syscall constant), and it is
flushed on context switch (the Alpha 21064 has address-space numbers, but
the conservative flush model is sufficient here and slightly *favours* the
kernel-level baseline, making the reproduced gap a lower bound).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..errors import ConfigError
from .pagetable import Pte, vpn_of


class Tlb:
    """Fully associative, LRU-replaced translation cache.

    Attributes:
        capacity: number of entries (Alpha 21064 DTB: 32).
        hits / misses: lookup outcome counters.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ConfigError(f"TLB capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self._entries: "OrderedDict[int, Pte]" = OrderedDict()

    def lookup(self, vaddr: int) -> Optional[Pte]:
        """Return the cached PTE for *vaddr*'s page, updating LRU order."""
        vpn = vpn_of(vaddr)
        pte = self._entries.get(vpn)
        if pte is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(vpn)
        return pte

    def insert(self, vaddr: int, pte: Pte) -> None:
        """Cache *pte* for *vaddr*'s page, evicting LRU if full."""
        vpn = vpn_of(vaddr)
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
        self._entries[vpn] = pte
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, vaddr: int) -> bool:
        """Drop the entry for *vaddr*'s page.  Returns whether it existed."""
        return self._entries.pop(vpn_of(vaddr), None) is not None

    def flush(self) -> None:
        """Drop every entry (context switch)."""
        self.flushes += 1
        self._entries.clear()

    @property
    def occupancy(self) -> int:
        """Number of live entries."""
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when no lookups yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
