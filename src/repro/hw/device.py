"""Base class for memory-mapped (MMIO) devices.

Devices attach to a :class:`repro.hw.bus.Bus` at a physical window and
receive word-sized reads and writes.  Each access carries the issuing
context (:class:`AccessContext`) so devices can trace *who* touched them —
the protocol FSMs must not use the issuer identity (that is the point of
the paper), but the verification layer asserts properties against it, and
the FLASH baseline consumes the identity only through its explicit
current-process register.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..units import Time


@dataclass(frozen=True)
class AccessContext:
    """Metadata travelling with a bus access.

    Attributes:
        issuer: process id of the instruction that caused the access, or
            None for accesses with no process context (e.g. DMA engines
            mastering the bus).
        kernel: whether the access was issued from kernel mode.
        when: bus-delivery timestamp in ps.
    """

    issuer: Optional[int]
    kernel: bool
    when: Time


class MmioDevice(ABC):
    """A device occupying a window of physical address space.

    Subclasses implement word-granularity register semantics.  Offsets are
    relative to the device's window base.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    @abstractmethod
    def mmio_read(self, offset: int, ctx: AccessContext) -> int:
        """Handle a word read at *offset*; return the 64-bit value."""

    @abstractmethod
    def mmio_write(self, offset: int, value: int, ctx: AccessContext) -> None:
        """Handle a word write of *value* at *offset*."""

    def reset(self) -> None:
        """Return the device to power-on state.  Default: nothing."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
