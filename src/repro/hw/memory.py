"""Physical memory and frame allocation.

:class:`PhysicalMemory` is a flat byte-addressable RAM starting at physical
address 0.  The DMA engine's data mover reads and writes it directly (that
is the whole point of DMA), and tests verify end-to-end data integrity
through it.

:class:`FrameAllocator` hands out page frames to the OS's virtual-memory
manager.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import AddressError, MemoryError_
from ..sim.journal import UndoJournal
from .pagetable import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE

#: Width of a machine word (Alpha: 64-bit).
WORD_BYTES = 8
WORD_MASK = (1 << 64) - 1


class PhysicalMemory:
    """Flat RAM at physical [0, size).

    All bulk operations are bounds-checked; word operations additionally
    require natural alignment, as the Alpha does.
    """

    def __init__(self, size: int) -> None:
        if size <= 0 or size & PAGE_MASK:
            raise MemoryError_(
                f"RAM size must be a positive page multiple, got {size}")
        self.size = size
        self._data = bytearray(size)
        # Undo journal for snapshot/restore: None when journaling is off
        # (the default — zero overhead beyond one branch per mutation).
        self._journal: Optional[List[Tuple[int, bytes]]] = None
        # Shared undo journal (page-granular CoW mode): None when unbound.
        self._undo: Optional[UndoJournal] = None
        self._page_epochs: Dict[int, int] = {}
        #: Page saves recorded but not yet undone.  While non-zero the
        #: RAM content is not derivable from the harness fingerprint, so
        #: the checker must skip memoization (same role journal_writes
        #: plays for the legacy byte-range journal).
        self.outstanding_page_saves = 0
        #: Cumulative dirty pages copied since the journal was bound.
        self.dirty_pages_saved = 0

    # -- range helpers --------------------------------------------------------

    def _check_range(self, paddr: int, nbytes: int, op: str) -> None:
        if nbytes < 0:
            raise AddressError(f"{op}: negative length {nbytes}")
        if paddr < 0 or paddr + nbytes > self.size:
            raise MemoryError_(
                f"{op}: [{paddr:#x}, {paddr + nbytes:#x}) outside RAM "
                f"of size {self.size:#x}")

    def contains(self, paddr: int, nbytes: int = 1) -> bool:
        """Whether [paddr, paddr+nbytes) lies entirely inside RAM."""
        return 0 <= paddr and paddr + nbytes <= self.size and nbytes >= 1

    # -- byte access ------------------------------------------------------------

    def read(self, paddr: int, nbytes: int) -> bytes:
        """Read *nbytes* starting at *paddr*."""
        self._check_range(paddr, nbytes, "read")
        return bytes(self._data[paddr:paddr + nbytes])

    def write(self, paddr: int, data: bytes) -> None:
        """Write *data* starting at *paddr*."""
        self._check_range(paddr, len(data), "write")
        self._journal_range(paddr, len(data))
        self._data[paddr:paddr + len(data)] = data

    def fill(self, paddr: int, nbytes: int, value: int = 0) -> None:
        """Fill a range with a repeated byte value."""
        if not 0 <= value <= 0xFF:
            raise ValueError(f"fill value must be a byte, got {value}")
        self._check_range(paddr, nbytes, "fill")
        self._journal_range(paddr, nbytes)
        self._data[paddr:paddr + nbytes] = bytes([value]) * nbytes

    def copy(self, psrc: int, pdst: int, nbytes: int) -> None:
        """Copy *nbytes* from *psrc* to *pdst* (overlap-safe).

        This is the primitive the DMA data mover uses.
        """
        self._check_range(psrc, nbytes, "copy-src")
        self._check_range(pdst, nbytes, "copy-dst")
        self._journal_range(pdst, nbytes)
        self._data[pdst:pdst + nbytes] = self._data[psrc:psrc + nbytes]

    # -- snapshot/restore -----------------------------------------------------

    def _journal_range(self, paddr: int, nbytes: int) -> None:
        """Record the bytes about to be overwritten (journaling only)."""
        if nbytes <= 0:
            return
        if self._journal is not None:
            self._journal.append(
                (paddr, bytes(self._data[paddr:paddr + nbytes])))
        if self._undo is not None:
            self._cow_range(paddr, nbytes)

    def bind_journal(self, journal: Optional[UndoJournal]) -> None:
        """Attach (or detach, with None) a shared undo journal.

        While bound, mutations copy each dirty page once per journal
        epoch (page-granular copy-on-write): the first write to a page
        after a ``mark()``/``undo_to()`` saves the whole 8 KiB page into
        the journal, and further writes to it in the same epoch are
        free.  Restore is ``journal.undo_to(mark)``.
        """
        self._undo = journal
        self._page_epochs = {}
        self.outstanding_page_saves = 0
        self.dirty_pages_saved = 0

    def _cow_range(self, paddr: int, nbytes: int) -> None:
        """Save every page overlapping the range, once per journal epoch."""
        journal = self._undo
        assert journal is not None
        epoch = journal.epoch
        epochs = self._page_epochs
        data = self._data
        last = (paddr + nbytes - 1) >> PAGE_SHIFT
        for page in range(paddr >> PAGE_SHIFT, last + 1):
            if epochs.get(page) == epoch:
                continue
            epochs[page] = epoch
            base = page << PAGE_SHIFT
            journal.record_call(
                self._restore_page, (base, bytes(data[base:base + PAGE_SIZE])))
            self.outstanding_page_saves += 1
            self.dirty_pages_saved += 1

    def _restore_page(self, saved: Tuple[int, bytes]) -> None:
        base, old = saved
        self._data[base:base + PAGE_SIZE] = old
        self.outstanding_page_saves -= 1

    @property
    def journal_writes(self) -> int:
        """Mutations recorded since journaling began (0 when off)."""
        return len(self._journal) if self._journal is not None else 0

    def snapshot(self) -> int:
        """Capture RAM state as an undo-journal mark (O(1)).

        The first snapshot turns journaling on: from then on every
        mutation records the bytes it overwrites, so restore costs
        O(bytes written since the mark), not O(RAM size).
        """
        if self._journal is None:
            self._journal = []
        return len(self._journal)

    def restore(self, mark: int) -> None:
        """Undo every mutation made since :meth:`snapshot` returned *mark*."""
        if self._journal is None:
            raise MemoryError_("restore without a prior snapshot")
        for paddr, old in reversed(self._journal[mark:]):
            self._data[paddr:paddr + len(old)] = old
        del self._journal[mark:]

    # -- word access --------------------------------------------------------------

    def read_word(self, paddr: int) -> int:
        """Read a naturally aligned 64-bit little-endian word."""
        if paddr % WORD_BYTES:
            raise AddressError(f"unaligned word read at {paddr:#x}")
        return int.from_bytes(self.read(paddr, WORD_BYTES), "little")

    def write_word(self, paddr: int, value: int) -> None:
        """Write a naturally aligned 64-bit little-endian word."""
        if paddr % WORD_BYTES:
            raise AddressError(f"unaligned word write at {paddr:#x}")
        self.write(paddr, (value & WORD_MASK).to_bytes(WORD_BYTES, "little"))


class FrameAllocator:
    """Hands out physical page frames from a RAM region.

    Frames are allocated low-to-high; freed frames are reused LIFO.  The OS
    reserves an initial region for itself (kernel text/data) by allocating
    from a non-zero base.
    """

    def __init__(self, base: int, size: int) -> None:
        if base & PAGE_MASK or size & PAGE_MASK:
            raise MemoryError_(
                f"allocator region must be page-aligned: "
                f"base={base:#x} size={size:#x}")
        if size <= 0:
            raise MemoryError_(f"allocator region must be non-empty: {size}")
        self.base = base
        self.limit = base + size
        self._next = base
        self._free: List[int] = []
        self._outstanding = 0

    @property
    def total_frames(self) -> int:
        """Total frames managed by this allocator."""
        return (self.limit - self.base) // PAGE_SIZE

    @property
    def frames_in_use(self) -> int:
        """Frames currently allocated."""
        return self._outstanding

    def alloc_frame(self) -> int:
        """Allocate one frame; returns its physical base address.

        Raises:
            MemoryError_: when the region is exhausted.
        """
        self._outstanding += 1
        if self._free:
            return self._free.pop()
        if self._next >= self.limit:
            self._outstanding -= 1
            raise MemoryError_("out of physical frames")
        frame = self._next
        self._next += PAGE_SIZE
        return frame

    def alloc_contiguous(self, npages: int) -> int:
        """Allocate *npages* physically contiguous frames.

        Contiguity can only be guaranteed from the never-allocated tail,
        so this ignores the free list.

        Raises:
            MemoryError_: when the tail cannot satisfy the request.
        """
        if npages <= 0:
            raise MemoryError_(f"npages must be positive, got {npages}")
        nbytes = npages * PAGE_SIZE
        if self._next + nbytes > self.limit:
            raise MemoryError_(
                f"cannot allocate {npages} contiguous frames")
        base = self._next
        self._next += nbytes
        self._outstanding += npages
        return base

    def free_frame(self, frame: int) -> None:
        """Return one frame to the allocator.

        Raises:
            MemoryError_: if the frame is outside the region or unaligned.
        """
        if frame & PAGE_MASK or not self.base <= frame < self.limit:
            raise MemoryError_(f"bogus frame free: {frame:#x}")
        if self._outstanding <= 0:
            raise MemoryError_("double free: no frames outstanding")
        self._outstanding -= 1
        self._free.append(frame)


def make_ram_and_allocator(size: int,
                           reserved: int = 0,
                           ) -> "tuple[PhysicalMemory, FrameAllocator]":
    """Convenience: build RAM plus an allocator skipping *reserved* bytes."""
    ram = PhysicalMemory(size)
    if reserved & PAGE_MASK:
        raise MemoryError_(f"reserved must be page-aligned, got {reserved}")
    allocator = FrameAllocator(reserved, size - reserved)
    return ram, allocator
