"""The instruction set the simulated CPU executes.

This is a deliberately small Alpha-flavoured ISA — just enough to express
every initiation sequence in the paper verbatim:

* ``LOAD`` / ``STORE`` with base-register + displacement addressing
  (Figs. 1–4, 7 are sequences of exactly these),
* ``MB`` — the memory barrier footnote 6 requires for repeated passing,
* ``CEX`` — an atomic compare-and-exchange-style access for the SHRIMP-1
  single-instruction initiation (§2.4),
* ``CALL_PAL`` — uninterruptible PAL calls (§2.7),
* ``SYSCALL`` — trap to the kernel (the Fig. 1 baseline),
* moves, adds, compares and conditional branches for the Fig. 7 retry loop.

Programs are flat instruction lists; labels are pseudo-instructions
resolved by :func:`assemble`.  Register names follow Alpha conventions:
``v0`` (return value), ``a0``–``a5`` (arguments), ``t0``–``t11`` (temps),
``zero``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ConfigError

#: An operand is either an immediate integer or a register name.
Operand = Union[int, str]

REGISTER_NAMES = (
    ("v0",)
    + tuple(f"a{i}" for i in range(6))
    + tuple(f"t{i}" for i in range(12))
    + tuple(f"s{i}" for i in range(7))
    + ("zero", "ra", "sp")
)

#: The canonical limit on PAL call length (the paper: "PAL code is
#: organized in 16-instruction long PAL calls").
PAL_MAX_INSTRUCTIONS = 16


@dataclass(frozen=True)
class Addr:
    """A base-register + displacement effective address.

    ``Addr(None, 0x1000)`` is an absolute address; ``Addr("a0", 8)`` is
    ``8(a0)`` in Alpha syntax.
    """

    base: Optional[str] = None
    disp: int = 0

    def __post_init__(self) -> None:
        if self.base is not None and self.base not in REGISTER_NAMES:
            raise ConfigError(f"unknown base register {self.base!r}")

    def __repr__(self) -> str:
        if self.base is None:
            return f"[{self.disp:#x}]"
        return f"[{self.base}+{self.disp:#x}]"


class Instruction:
    """Marker base class for all instructions."""

    __slots__ = ()


@dataclass(frozen=True)
class Load(Instruction):
    """``dst <- MEM[addr]`` (64-bit, through the MMU)."""

    dst: str
    addr: Addr


@dataclass(frozen=True)
class Store(Instruction):
    """``MEM[addr] <- src`` (64-bit, through the MMU and write buffer)."""

    addr: Addr
    src: Operand


@dataclass(frozen=True)
class CompareExchange(Instruction):
    """Atomic read-modify-write access used by SHRIMP-1 (§2.4).

    The address names the source page, the data operand carries the size,
    and the old value (the initiation status) lands in *dst* — one single
    indivisible bus transaction.
    """

    dst: str
    addr: Addr
    src: Operand


@dataclass(frozen=True)
class Mb(Instruction):
    """Memory barrier: drain the write buffer before proceeding."""


@dataclass(frozen=True)
class Mov(Instruction):
    """``dst <- src`` (register or immediate)."""

    dst: str
    src: Operand


@dataclass(frozen=True)
class Add(Instruction):
    """``dst <- a + b``."""

    dst: str
    a: Operand
    b: Operand


@dataclass(frozen=True)
class Beq(Instruction):
    """Branch to *target* when ``a == b``."""

    a: Operand
    b: Operand
    target: str


@dataclass(frozen=True)
class Bne(Instruction):
    """Branch to *target* when ``a != b``."""

    a: Operand
    b: Operand
    target: str


@dataclass(frozen=True)
class Jump(Instruction):
    """Unconditional branch to *target*."""

    target: str


@dataclass(frozen=True)
class Label(Instruction):
    """A branch target; assembles to nothing."""

    name: str


@dataclass(frozen=True)
class CallPal(Instruction):
    """Invoke the installed PAL function *name* uninterruptibly (§2.7)."""

    name: str


@dataclass(frozen=True)
class Syscall(Instruction):
    """Trap into the kernel handler *name* (args in a0.., result in v0)."""

    name: str


@dataclass(frozen=True)
class Halt(Instruction):
    """End the program."""


@dataclass(frozen=True)
class Nop(Instruction):
    """Do nothing (pipeline filler)."""


@dataclass
class Program:
    """An assembled program: label-free instructions + branch table.

    Attributes:
        instructions: the executable stream (no Label pseudo-ops).
        labels: label name -> instruction index.
        name: optional display name.
    """

    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    name: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def target(self, label: str) -> int:
        """Resolve *label* to an instruction index."""
        if label not in self.labels:
            raise ConfigError(
                f"program {self.name!r}: unknown label {label!r}")
        return self.labels[label]


def assemble(source: Sequence[Instruction], name: str = "") -> Program:
    """Resolve labels and validate a raw instruction sequence.

    Raises:
        ConfigError: on duplicate labels, dangling branch targets, or
            unknown register names.
    """
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for item in source:
        if isinstance(item, Label):
            if item.name in labels:
                raise ConfigError(f"duplicate label {item.name!r}")
            labels[item.name] = len(instructions)
        else:
            instructions.append(item)
    program = Program(instructions, labels, name)
    _validate(program)
    return program


def _validate(program: Program) -> None:
    for index, instr in enumerate(program.instructions):
        for reg in _registers_of(instr):
            if reg not in REGISTER_NAMES:
                raise ConfigError(
                    f"{program.name!r}[{index}]: unknown register {reg!r}")
        target = getattr(instr, "target", None)
        if target is not None and target not in program.labels:
            raise ConfigError(
                f"{program.name!r}[{index}]: dangling label {target!r}")


def _registers_of(instr: Instruction) -> List[str]:
    regs: List[str] = []
    for attr in ("dst", "src", "a", "b"):
        value = getattr(instr, attr, None)
        if isinstance(value, str):
            regs.append(value)
    addr = getattr(instr, "addr", None)
    if addr is not None and addr.base is not None:
        regs.append(addr.base)
    return regs


def count_memory_accesses(program: Program) -> int:
    """Number of LOAD/STORE/CEX instructions in *program*.

    Used to report the paper's "2 to 5 assembly instructions" claim.
    """
    return sum(
        1 for instr in program.instructions
        if isinstance(instr, (Load, Store, CompareExchange)))


def _fmt_operand(operand: Operand) -> str:
    if isinstance(operand, str):
        return operand
    if operand > 0xFFFF:
        return f"{operand:#x}"
    return str(operand)


def format_instruction(instr: Instruction) -> str:
    """Render one instruction in Alpha-flavoured assembly syntax.

    Examples::

        stq   a2, [a1+0x100000000000]
        ldq   v0, [0x40000000000]
        call_pal user_level_dma
    """
    if isinstance(instr, Load):
        return f"ldq   {instr.dst}, {instr.addr!r}"
    if isinstance(instr, Store):
        return f"stq   {_fmt_operand(instr.src)}, {instr.addr!r}"
    if isinstance(instr, CompareExchange):
        return (f"cex   {instr.dst}, {_fmt_operand(instr.src)}, "
                f"{instr.addr!r}")
    if isinstance(instr, Mb):
        return "mb"
    if isinstance(instr, Mov):
        return f"mov   {instr.dst}, {_fmt_operand(instr.src)}"
    if isinstance(instr, Add):
        return (f"addq  {instr.dst}, {_fmt_operand(instr.a)}, "
                f"{_fmt_operand(instr.b)}")
    if isinstance(instr, Beq):
        return (f"beq   {_fmt_operand(instr.a)}, "
                f"{_fmt_operand(instr.b)}, {instr.target}")
    if isinstance(instr, Bne):
        return (f"bne   {_fmt_operand(instr.a)}, "
                f"{_fmt_operand(instr.b)}, {instr.target}")
    if isinstance(instr, Jump):
        return f"br    {instr.target}"
    if isinstance(instr, Label):
        return f"{instr.name}:"
    if isinstance(instr, CallPal):
        return f"call_pal {instr.name}"
    if isinstance(instr, Syscall):
        return f"syscall {instr.name}"
    if isinstance(instr, Halt):
        return "halt"
    if isinstance(instr, Nop):
        return "nop"
    return repr(instr)


def format_program(program: Program, indent: str = "    ") -> str:
    """Multi-line assembly listing of *program* with label lines.

    Labels are re-interleaved at their target indices so the listing
    reads like the source the sequence builders produced.
    """
    by_index: Dict[int, List[str]] = {}
    for name, index in program.labels.items():
        by_index.setdefault(index, []).append(name)
    lines: List[str] = []
    for index, instr in enumerate(program.instructions):
        for name in by_index.get(index, []):
            lines.append(f"{name}:")
        lines.append(indent + format_instruction(instr))
    for name in by_index.get(len(program.instructions), []):
        lines.append(f"{name}:")
    return "\n".join(lines)
