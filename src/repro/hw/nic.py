"""The network interface: a DMA engine whose destinations may be remote.

The paper's context is a Network of Workstations with user-level
memory-mapped network interfaces (Telegraphos, SHRIMP, Memory Channel...).
Following the authors' own Telegraphos design, the cluster exposes a
**global physical address space**: the high bits of a transfer destination
name the workstation, the low bits the address within that workstation's
memory.  A NIC therefore accepts exactly the same initiation protocols as
the plain DMA engine — the only difference is the data mover, which routes
remote destinations over a network fabric instead of copying locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from ..errors import AddressError, ConfigError, NetworkError
from ..obs.spans import SpanTracer
from ..sim.engine import Simulator
from ..sim.trace import TraceLog
from ..units import Time, mbps, ns
from .dma.engine import DmaEngine
from .dma.recognizer import InitiationProtocol
from .dma.shadow import ShadowLayout
from .memory import PhysicalMemory


@dataclass(frozen=True)
class GlobalAddressMap:
    """Encodes (node, local physical address) into one global address.

    Attributes:
        node_bits: width of the node-id field.
        local_bits: width of the per-node address field; every node's RAM
            must fit below ``1 << local_bits``.
    """

    node_bits: int = 6
    local_bits: int = 28

    def __post_init__(self) -> None:
        if self.node_bits <= 0 or self.local_bits <= 0:
            raise ConfigError("address fields must be positive widths")

    @property
    def max_nodes(self) -> int:
        """Number of addressable nodes."""
        return 1 << self.node_bits

    @property
    def local_size(self) -> int:
        """Per-node address-space size in bytes."""
        return 1 << self.local_bits

    def encode(self, node: int, local: int) -> int:
        """Build the global address of (*node*, *local*)."""
        if not 0 <= node < self.max_nodes:
            raise AddressError(f"node {node} out of range")
        if not 0 <= local < self.local_size:
            raise AddressError(
                f"local address {local:#x} overflows {self.local_bits} bits")
        return (node << self.local_bits) | local

    def decode(self, global_addr: int) -> "tuple[int, int]":
        """Split a global address into (node, local)."""
        if global_addr < 0:
            raise AddressError(f"negative global address {global_addr:#x}")
        node = global_addr >> self.local_bits
        if node >= self.max_nodes:
            raise AddressError(
                f"global address {global_addr:#x} names node {node} "
                f">= {self.max_nodes}")
        return node, global_addr & (self.local_size - 1)


class Fabric(Protocol):
    """What a NIC needs from the network substrate (see repro.net.now)."""

    def send_write(self, src_node: int, dst_node: int, pdst_local: int,
                   payload: bytes) -> None:
        """Deliver *payload* into *dst_node*'s memory at *pdst_local*."""

    def node_ram(self, node: int) -> PhysicalMemory:
        """The RAM of *node* (for destination validation)."""


class NetworkInterface(DmaEngine):
    """A DMA engine on the cluster fabric.

    Args:
        node_id: this workstation's id in the global address map.
        fabric: the cluster fabric (None for a standalone machine — the
            NIC then behaves exactly like a local DmaEngine but still
            understands self-addressed global destinations).
        addr_map: the global address encoding.
        Remaining arguments as for :class:`DmaEngine`.
    """

    def __init__(self, sim: Simulator, ram: PhysicalMemory,
                 protocol: InitiationProtocol, node_id: int = 0,
                 fabric: Optional[Fabric] = None,
                 addr_map: Optional[GlobalAddressMap] = None,
                 layout: Optional[ShadowLayout] = None,
                 bandwidth_bps: float = mbps(400.0),
                 startup: Time = ns(200),
                 trace: Optional[TraceLog] = None,
                 page_bounded: bool = False,
                 spans: Optional[SpanTracer] = None,
                 name: str = "nic") -> None:
        self.addr_map = addr_map if addr_map is not None else GlobalAddressMap()
        if ram.size > self.addr_map.local_size:
            raise ConfigError(
                "RAM exceeds the per-node global address space; "
                "widen local_bits")
        self.node_id = node_id
        self.fabric = fabric
        self.remote_sends = 0
        super().__init__(sim, ram, protocol, layout=layout,
                         bandwidth_bps=bandwidth_bps, startup=startup,
                         trace=trace, page_bounded=page_bounded,
                         spans=spans, name=name)

    # -- DmaEngine overrides -----------------------------------------------------

    def _valid_endpoint(self, paddr: int, size: int) -> bool:
        """Accept local RAM and remote global addresses (destinations)."""
        node, local = self._decode_or_local(paddr)
        if node == self.node_id:
            return self.ram.contains(local, size)
        if self.fabric is None:
            return False
        try:
            remote = self.fabric.node_ram(node)
        except NetworkError:
            return False
        return remote.contains(local, size)

    def _valid_source(self, paddr: int, size: int) -> bool:
        """Sources must be local: the engine only reads its host memory."""
        node, local = self._decode_or_local(paddr)
        return node == self.node_id and self.ram.contains(local, size)

    def _move_bytes(self, psrc: int, pdst: int, size: int) -> None:
        src_node, src_local = self._decode_or_local(psrc)
        if src_node != self.node_id:
            raise NetworkError(
                f"nic on node {self.node_id} cannot read remote "
                f"source {psrc:#x}")
        payload = self.ram.read(src_local, size)
        dst_node, dst_local = self._decode_or_local(pdst)
        if dst_node == self.node_id:
            self.ram.write(dst_local, payload)
            if self.coherence_hook is not None:
                self.coherence_hook(dst_local, size)
            return
        if self.fabric is None:
            raise NetworkError(
                f"nic on node {self.node_id} has no fabric for remote "
                f"destination {pdst:#x}")
        self.remote_sends += 1
        self.fabric.send_write(self.node_id, dst_node, dst_local, payload)

    # -- snapshot/restore ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Engine snapshot plus the NIC's own send counter."""
        token = super().snapshot()
        token["remote_sends"] = self.remote_sends
        return token

    def restore(self, token: dict) -> None:
        super().restore(token)
        self.remote_sends = token["remote_sends"]

    def _scalar_state(self) -> tuple:
        return super()._scalar_state() + (self.remote_sends,)

    def _restore_scalar_state(self, blob: tuple) -> None:
        super()._restore_scalar_state(blob[:-1])
        self.remote_sends = blob[-1]

    # -- helpers -------------------------------------------------------------------

    def global_address(self, local: int) -> int:
        """This node's global address for local physical *local*."""
        return self.addr_map.encode(self.node_id, local)

    def _decode_or_local(self, paddr: int) -> "tuple[int, int]":
        """Decode *paddr* as global; plain local addresses are node 0...

        Addresses below the per-node size decode to (node 0, addr), which
        for node 0 is identical to a local address — standalone machines
        use node_id 0 so purely local software never notices the map.
        """
        return self.addr_map.decode(paddr)
