"""The MMU: TLB plus page-table walk plus access checks.

Every CPU memory instruction goes through :meth:`Mmu.translate`, which
returns both the physical address and the attributes the rest of the
pipeline needs (uncached?) plus the translation cost for the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import PageFault, ProtectionFault
from ..units import Time
from .pagetable import PAGE_MASK, PageTable, Pte
from .tlb import Tlb


@dataclass(frozen=True)
class Translation:
    """The result of one MMU translation.

    Attributes:
        paddr: the physical address.
        pte: the page-table entry used.
        cost: time charged for the translation (TLB hit or walk).
        tlb_hit: whether the TLB satisfied the lookup.
    """

    paddr: int
    pte: Pte
    cost: Time
    tlb_hit: bool


class Mmu:
    """Per-CPU memory-management unit.

    The active page table is swapped by the scheduler on context switch
    (which also flushes the TLB).

    Args:
        tlb: the translation cache.
        hit_cost: time charged on a TLB hit (usually folded into the
            instruction's base cost, so 0 by default).
        walk_cost: time charged on a TLB miss for the hardware/PAL-assisted
            page-table walk.
    """

    def __init__(self, tlb: Tlb, hit_cost: Time = 0,
                 walk_cost: Time = 0) -> None:
        self.tlb = tlb
        self.hit_cost = hit_cost
        self.walk_cost = walk_cost
        self._table: Optional[PageTable] = None

    @property
    def page_table(self) -> Optional[PageTable]:
        """The currently active page table (None before first activation)."""
        return self._table

    def activate(self, table: PageTable, flush: bool = True) -> None:
        """Make *table* the active address space.

        Args:
            flush: flush the TLB (the conservative context-switch model).
        """
        self._table = table
        if flush:
            self.tlb.flush()

    def translate(self, vaddr: int, access: str,
                  user_mode: bool = True) -> Translation:
        """Translate *vaddr*, enforcing protection.

        Protection is enforced even on a TLB hit (the permission bits live
        in the cached PTE), exactly as real hardware does.

        Raises:
            PageFault / ProtectionFault: from the page table (or from the
                cached PTE's permission bits).
        """
        if self._table is None:
            raise RuntimeError("MMU has no active page table")
        pte = self.tlb.lookup(vaddr)
        if pte is not None:
            self._check(pte, vaddr, access, user_mode)
            return Translation(pte.pframe | (vaddr & PAGE_MASK), pte,
                               self.hit_cost, tlb_hit=True)
        # Miss: walk the active table (raises on fault), then cache.
        paddr = self._table.translate(vaddr, access, user_mode)
        pte = self._table.lookup(vaddr)
        assert pte is not None  # translate() would have raised otherwise
        self.tlb.insert(vaddr, pte)
        return Translation(paddr, pte, self.hit_cost + self.walk_cost,
                           tlb_hit=False)

    @staticmethod
    def _check(pte: Pte, vaddr: int, access: str, user_mode: bool) -> None:
        """Re-run protection checks against a TLB-cached PTE."""
        if user_mode:
            if not pte.user:
                raise PageFault(vaddr, access)
            if not pte.allows(access):
                raise ProtectionFault(vaddr, access)
