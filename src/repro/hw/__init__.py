"""Hardware substrate: memory, MMU, CPU, buses, and the DMA engine.

Everything here models the machine the paper's prototype ran on — a DEC
Alpha workstation with a TurboChannel I/O bus carrying an FPGA DMA/network
interface board — at the level of fidelity the paper's claims need:
instruction sequences, uncached MMIO accesses, write-buffer effects, page
protection, and per-access bus timing.
"""

from .memory import FrameAllocator, PhysicalMemory
from .pagetable import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE, PageTable, Perm, Pte
from .tlb import Tlb
from .mmu import Mmu, Translation

__all__ = [
    "FrameAllocator",
    "Mmu",
    "PAGE_MASK",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageTable",
    "Perm",
    "PhysicalMemory",
    "Pte",
    "Tlb",
    "Translation",
]
