"""Time, frequency, size, and bandwidth units.

The whole simulator keeps time as an **integer number of picoseconds**.
Integer time makes event ordering exact and reproducible: there is no
floating-point drift when thousands of sub-nanosecond costs are accumulated,
and two runs with the same seed produce byte-identical traces.

Helpers here convert between human units and picoseconds, and between clock
frequencies and periods.  Bandwidths are expressed in bits per second and
converted to per-byte transfer times.
"""

from __future__ import annotations

from .errors import ClockError

#: Type alias for simulation timestamps/durations (integer picoseconds).
Time = int

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


def ps(value: float) -> Time:
    """Return *value* picoseconds as an integer :data:`Time`."""
    return round(value)


def ns(value: float) -> Time:
    """Return *value* nanoseconds in picoseconds."""
    return round(value * PS_PER_NS)


def us(value: float) -> Time:
    """Return *value* microseconds in picoseconds."""
    return round(value * PS_PER_US)


def ms(value: float) -> Time:
    """Return *value* milliseconds in picoseconds."""
    return round(value * PS_PER_MS)


def seconds(value: float) -> Time:
    """Return *value* seconds in picoseconds."""
    return round(value * PS_PER_S)


def to_ns(t: Time) -> float:
    """Convert picoseconds to nanoseconds (float, for reporting only)."""
    return t / PS_PER_NS


def to_us(t: Time) -> float:
    """Convert picoseconds to microseconds (float, for reporting only)."""
    return t / PS_PER_US


def to_ms(t: Time) -> float:
    """Convert picoseconds to milliseconds (float, for reporting only)."""
    return t / PS_PER_MS


def to_seconds(t: Time) -> float:
    """Convert picoseconds to seconds (float, for reporting only)."""
    return t / PS_PER_S


def mhz(value: float) -> float:
    """Return *value* MHz in Hz."""
    return value * 1_000_000.0


def ghz(value: float) -> float:
    """Return *value* GHz in Hz."""
    return value * 1_000_000_000.0


def period_ps(frequency_hz: float) -> Time:
    """Return the period of a clock running at *frequency_hz*, in ps.

    Raises:
        ClockError: if the frequency is not positive.
    """
    if frequency_hz <= 0:
        raise ClockError(f"frequency must be positive, got {frequency_hz}")
    return round(PS_PER_S / frequency_hz)


# --- sizes -----------------------------------------------------------------

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def kib(value: float) -> int:
    """Return *value* KiB in bytes."""
    return round(value * KIB)


def mib(value: float) -> int:
    """Return *value* MiB in bytes."""
    return round(value * MIB)


def gib(value: float) -> int:
    """Return *value* GiB in bytes."""
    return round(value * GIB)


# --- bandwidth -------------------------------------------------------------


def mbps(value: float) -> float:
    """Return *value* megabits/second in bits/second."""
    return value * 1_000_000.0


def gbps(value: float) -> float:
    """Return *value* gigabits/second in bits/second."""
    return value * 1_000_000_000.0


def transfer_time(nbytes: int, bandwidth_bps: float) -> Time:
    """Time to move *nbytes* at *bandwidth_bps*, in integer picoseconds.

    Raises:
        ClockError: if the bandwidth is not positive.
    """
    if bandwidth_bps <= 0:
        raise ClockError(f"bandwidth must be positive, got {bandwidth_bps}")
    return round(nbytes * 8 * PS_PER_S / bandwidth_bps)


def bandwidth_of(nbytes: int, elapsed: Time) -> float:
    """Achieved bandwidth in bits/second for *nbytes* over *elapsed* ps."""
    if elapsed <= 0:
        raise ClockError(f"elapsed time must be positive, got {elapsed}")
    return nbytes * 8 * PS_PER_S / elapsed


def fmt_time(t: Time) -> str:
    """Human-readable rendering of a :data:`Time` value."""
    if t >= PS_PER_MS:
        return f"{to_ms(t):.3f} ms"
    if t >= PS_PER_US:
        return f"{to_us(t):.3f} us"
    if t >= PS_PER_NS:
        return f"{to_ns(t):.2f} ns"
    return f"{t} ps"


def fmt_bandwidth(bps: float) -> str:
    """Human-readable rendering of a bandwidth in bits/second."""
    if bps >= 1e9:
        return f"{bps / 1e9:.2f} Gb/s"
    if bps >= 1e6:
        return f"{bps / 1e6:.2f} Mb/s"
    if bps >= 1e3:
        return f"{bps / 1e3:.2f} kb/s"
    return f"{bps:.1f} b/s"
