"""repro — a reproduction of Markatos & Katevenis, "User-Level DMA without
Operating System Kernel Modification" (HPCA-3, 1997).

The package simulates the paper's whole world — an Alpha-class CPU with
MMU/TLB and a write buffer, a TurboChannel/PCI I/O bus, a DMA/network-
interface engine with shadow addressing and register contexts, an OS
kernel with a costly syscall path and a preemptive scheduler — and
implements every DMA-initiation method the paper discusses, the four it
proposes and the four prior-work baselines, plus the §3.5 user-level
atomic operations.

Quickstart::

    from repro import DmaChannel, MachineConfig, Workstation

    ws = Workstation(MachineConfig(method="keyed"))
    proc = ws.kernel.spawn("app")
    ws.kernel.enable_user_dma(proc)
    src = ws.kernel.alloc_buffer(proc, 8192)
    dst = ws.kernel.alloc_buffer(proc, 8192)
    ws.ram.write(src.paddr, b"hello, user-level DMA")

    chan = DmaChannel(ws, proc)
    result = chan.dma(src.vaddr, dst.vaddr, 4096)
    assert result.ok
    print(f"initiated in {result.initiation.elapsed_us:.2f} us")
"""

from .core.api import DmaChannel, DmaResult, InitiationResult, open_channel
from .core.atomics import AtomicChannel, AtomicResult
from .core.machine import MachineConfig, Workstation
from .core.methods import (
    BASELINE_METHODS,
    METHODS,
    MethodInfo,
    PAPER_METHODS,
    TABLE1_METHODS,
    get_method,
    make_protocol,
)
from .core.timing import (
    ALPHA3000_TURBOCHANNEL,
    ALPHA_PCI_33,
    ALPHA_PCI_66,
    FAST_HOST_PCI_66,
    MachineTiming,
    TIMING_PRESETS,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ALPHA3000_TURBOCHANNEL",
    "ALPHA_PCI_33",
    "ALPHA_PCI_66",
    "AtomicChannel",
    "AtomicResult",
    "BASELINE_METHODS",
    "DmaChannel",
    "DmaResult",
    "FAST_HOST_PCI_66",
    "InitiationResult",
    "METHODS",
    "MachineConfig",
    "MachineTiming",
    "MethodInfo",
    "PAPER_METHODS",
    "ReproError",
    "TABLE1_METHODS",
    "TIMING_PRESETS",
    "Workstation",
    "get_method",
    "open_channel",
    "make_protocol",
    "__version__",
]
