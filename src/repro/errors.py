"""Exception hierarchy for the repro library.

Every error raised by the simulation substrate derives from
:class:`ReproError`, so callers can catch the whole family with one clause.
Hardware-visible faults (protection violations, bus errors) are modelled as
exceptions only when the *simulation* is misused; faults that the simulated
hardware reports to simulated software (e.g. a rejected DMA initiation) are
returned as status codes, exactly as the paper's hardware does.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A machine, device, or experiment was configured inconsistently."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class ClockError(SimulationError):
    """A clock-domain conversion was impossible (e.g. zero frequency)."""


class MemoryError_(ReproError):
    """Physical-memory misuse: out-of-range frame, exhausted memory, etc.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class AddressError(ReproError):
    """An address was malformed for the operation (alignment, range)."""


class PageFault(ReproError):
    """A virtual address had no valid translation.

    Attributes:
        vaddr: the faulting virtual address.
        access: the access kind that faulted ("read", "write", or "execute").
    """

    def __init__(self, vaddr: int, access: str = "read") -> None:
        super().__init__(f"page fault at {vaddr:#x} on {access}")
        self.vaddr = vaddr
        self.access = access


class ProtectionFault(ReproError):
    """A translation existed but the access right was missing.

    Attributes:
        vaddr: the offending virtual address.
        access: the access kind that was denied.
    """

    def __init__(self, vaddr: int, access: str) -> None:
        super().__init__(f"protection fault at {vaddr:#x} on {access}")
        self.vaddr = vaddr
        self.access = access


class BusError(ReproError):
    """A physical access hit no device window and no RAM."""

    def __init__(self, paddr: int, op: str = "access") -> None:
        super().__init__(f"bus error: {op} to unmapped physical {paddr:#x}")
        self.paddr = paddr
        self.op = op


class DeviceError(ReproError):
    """A device was driven in a way its register interface forbids."""


class DmaConfigError(DeviceError):
    """The DMA engine was built with inconsistent parameters."""


class KernelError(ReproError):
    """A syscall was invoked with arguments the kernel must reject."""


class SchedulerError(ReproError):
    """The scheduler was asked to do something impossible."""


class NetworkError(ReproError):
    """A network operation referenced unknown nodes or dead links."""


class VerificationError(ReproError):
    """The model checker or stress harness was misconfigured."""


class ObservabilityError(ReproError):
    """The span/metrics layer was misused (e.g. unbalanced span pairs)."""
