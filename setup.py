"""Setuptools shim.

Kept alongside pyproject.toml so that legacy editable installs
(``pip install -e . --no-use-pep517``) work in offline environments that
lack the ``wheel`` package needed by the PEP-517 editable path.
"""

from setuptools import setup

setup()
