"""Figs. 5 and 6 replayed on the *whole machine* (CPU + scheduler).

The model checker proves the attacks exist at the engine level; these
tests drive real processes through the scripted scheduler so the attack
travels the full path: user instructions -> MMU -> write buffer -> bus ->
engine FSM -> data mover.
"""


from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation
from repro.hw.isa import Halt, Load, Store, Addr, assemble
from repro.os.process import shadow_vaddr
from repro.os.scheduler import ScriptedPolicy


def machine_with_attacker(method):
    """Victim owns A(src), B(dst); attacker owns C, foo; attacker can
    also read A (shared page)."""
    ws = Workstation(MachineConfig(method=method))
    victim = ws.kernel.spawn("victim")
    attacker = ws.kernel.spawn("attacker")
    ws.kernel.enable_user_dma(victim)
    ws.kernel.enable_user_dma(attacker)
    buf_a = ws.kernel.alloc_buffer(victim, 8192)
    buf_b = ws.kernel.alloc_buffer(victim, 8192)
    buf_c = ws.kernel.alloc_buffer(attacker, 8192)
    buf_foo = ws.kernel.alloc_buffer(attacker, 8192)
    from repro.hw.pagetable import Perm

    shared_a = ws.kernel.share_buffer(victim, buf_a, attacker,
                                      perm=Perm.READ)
    return ws, victim, attacker, buf_a, buf_b, buf_c, buf_foo, shared_a


def test_fig5_attack_on_the_full_machine():
    """3-instruction variant: attacker's C lands in victim's B."""
    (ws, victim, attacker, buf_a, buf_b, buf_c, buf_foo,
     shared_a) = machine_with_attacker("repeated3")
    ws.ram.write(buf_c.paddr, b"EVIL" * 16)
    ws.ram.write(buf_b.paddr, b"good" * 16)

    chan = DmaChannel(ws, victim)
    victim_prog = chan.program(buf_a.vaddr, buf_b.vaddr, 64,
                               with_retry=False)
    shadow = lambda v: Addr(None, shadow_vaddr(v))
    attacker_prog = assemble([
        Store(shadow(buf_foo.vaddr), 64),   # STORE foo TO shadow(foo)
        Load("t0", shadow(buf_foo.vaddr)),  # LOAD FROM shadow(foo)
        Load("t1", shadow(buf_c.vaddr)),    # LOAD FROM shadow(C)
        Load("v0", shadow(buf_c.vaddr)),    # LOAD FROM shadow(C)
        Halt(),
    ], name="fig5-attacker")

    # Fig. 5's interleaving: V1  M2 M3 M4  V5  M6  V7 (+ halts).
    script = [0, 1, 1, 1, 0, 1, 0, 0, 1]
    scheduler = ws.make_scheduler(ScriptedPolicy(script + [0] * 8))
    scheduler.add(victim, victim.new_thread(victim_prog))
    scheduler.add(attacker, attacker.new_thread(attacker_prog))
    scheduler.run()
    ws.drain()

    started = ws.engine.started_transfers()
    assert len(started) == 1
    assert started[0].psrc == ws.engine.global_address(buf_c.paddr)
    assert started[0].pdst == ws.engine.global_address(buf_b.paddr)
    # The attacker's bytes really did land in the victim's buffer.
    assert ws.ram.read(buf_b.paddr, 64) == b"EVIL" * 16


def test_fig6_attack_on_the_full_machine():
    """4-instruction variant: attacker steals the start; victim is told
    FAILURE although its transfer ran."""
    (ws, victim, attacker, buf_a, buf_b, buf_c, buf_foo,
     shared_a) = machine_with_attacker("repeated4")
    ws.ram.write(buf_a.paddr, b"data" * 16)

    chan = DmaChannel(ws, victim)
    victim_prog = chan.program(buf_a.vaddr, buf_b.vaddr, 64,
                               with_retry=False)
    attacker_prog = assemble([
        Load("v0", Addr(None, shadow_vaddr(shared_a))),
        Halt(),
    ], name="fig6-attacker")

    # Victim program: S, Mb, L, S, Mb, L, Halt.  The attacker's load
    # slots in after the victim's second store (and its barrier).
    script = [0, 0, 0, 0, 0, 1, 1, 0, 0]
    scheduler = ws.make_scheduler(ScriptedPolicy(script + [0] * 8))
    victim_thread = victim.new_thread(victim_prog)
    attacker_thread = attacker.new_thread(attacker_prog)
    scheduler.add(victim, victim_thread)
    scheduler.add(attacker, attacker_thread)
    scheduler.run()
    ws.drain()

    started = ws.engine.started_transfers()
    assert len(started) == 1
    assert started[0].issuer == attacker.pid        # stolen start
    from repro.hw.dma.status import is_rejection

    assert is_rejection(victim_thread.reg("v0"))    # victim misinformed
    assert not is_rejection(attacker_thread.reg("v0"))
    # The data did move (it was the victim's transfer).
    assert ws.ram.read(buf_b.paddr, 64) == b"data" * 16


def test_same_interleaving_is_harmless_under_repeated5():
    """The Fig. 6 steal cannot happen on the 5-variant: the final access
    repeats the destination, which the attacker cannot name."""
    (ws, victim, attacker, buf_a, buf_b, buf_c, buf_foo,
     shared_a) = machine_with_attacker("repeated5")
    chan = DmaChannel(ws, victim)
    victim_prog = chan.program(buf_a.vaddr, buf_b.vaddr, 64,
                               with_retry=False)
    attacker_prog = assemble([
        Load("v0", Addr(None, shadow_vaddr(shared_a))),
        Halt(),
    ], name="fig6-attacker")
    script = [0, 0, 0, 0, 0, 1, 1, 0, 0, 0]
    scheduler = ws.make_scheduler(ScriptedPolicy(script + [0] * 10))
    victim_thread = victim.new_thread(victim_prog)
    scheduler.add(victim, victim_thread)
    scheduler.add(attacker, attacker.new_thread(attacker_prog))
    scheduler.run()
    ws.drain()
    started = ws.engine.started_transfers()
    # Either the victim's own DMA ran intact, or nothing did — but the
    # attacker can never be the issuer of a started transfer.
    assert all(r.issuer == victim.pid for r in started)


def test_attacker_address_space_cannot_name_victims_private_frame():
    """The §2.3 protection: no shadow mapping in the attacker's address
    space decodes to the victim's private destination frame, so the
    attacker cannot construct a shadow access naming it at all — and a
    store to an unmapped shadow address simply faults."""
    (ws, victim, attacker, buf_a, buf_b, buf_c, buf_foo,
     shared_a) = machine_with_attacker("repeated4")
    forbidden = ws.engine.global_address(buf_b.paddr)
    for _vpn, pte in attacker.page_table.mapped_pages():
        decoded = ws.engine.layout.decode_paddr(pte.pframe)
        if decoded is not None:
            assert decoded.paddr != forbidden

    unmapped = shadow_vaddr(0x7000_0000)  # no mapping anywhere near
    thread = attacker.new_thread(assemble([
        Store(Addr(None, unmapped), 64), Halt()], name="forge"))
    from repro.hw.cpu import StepStatus

    assert ws.run_thread(thread) is StepStatus.FAULTED
    assert thread.fault is not None


def test_read_only_share_blocks_shadow_store_but_allows_load():
    """Shadow permissions mirror data permissions (§2.3): the attacker
    can pass shared_a as a *source* (load) but not as a destination
    (store)."""
    (ws, victim, attacker, buf_a, buf_b, buf_c, buf_foo,
     shared_a) = machine_with_attacker("repeated4")
    from repro.hw.cpu import StepStatus

    load_ok = attacker.new_thread(assemble([
        Load("v0", Addr(None, shadow_vaddr(shared_a))), Halt()]))
    assert ws.run_thread(load_ok) is StepStatus.HALTED

    store_blocked = attacker.new_thread(assemble([
        Store(Addr(None, shadow_vaddr(shared_a)), 64), Halt()]))
    assert ws.run_thread(store_blocked) is StepStatus.FAULTED
