"""Smoke tests: every shipped example runs to completion.

Each example is executed in a subprocess (as a user would run it) and
its output is spot-checked for the headline it is supposed to print.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", "destination now holds"),
    ("method_comparison.py", "Table 1"),
    ("adversary_demo.py", "VERIFIED"),
    ("now_cluster.py", "speedup"),
    ("atomic_counters.py", "counter = 20"),
    ("multiprogramming_stress.py", "CLEAN"),
    ("context_exhaustion.py", "kernel fallback"),
    ("message_library.py", "syscalls on the data path: 0"),
    ("halo_exchange.py", "faster"),
]


@pytest.mark.parametrize("script,expected",
                         CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True,
        timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout


def test_all_examples_are_covered():
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    tested = {script for script, _ in CASES}
    assert shipped == tested, (
        f"untested examples: {shipped - tested}; "
        f"missing files: {tested - shipped}")
