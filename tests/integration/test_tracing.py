"""Trace-based tests: the engine sees exactly the access sequence the
paper's figures prescribe."""

from tests.conftest import ready_channel


def trace_kinds(ws, source="nic"):
    return [e.kind for e in ws.trace.events(source=source)]


def test_keyed_initiation_trace():
    ws, proc, src, dst, chan = ready_channel("keyed",
                                             trace_enabled=True)
    chan.initiate(src.vaddr, dst.vaddr, 64)
    kinds = trace_kinds(ws)
    # Fig. 3: two keyed shadow stores, a size store to the context page,
    # then the start fires inside the handling of the status load.
    assert kinds[:3] == ["shadow-store", "shadow-store", "context-store"]
    assert kinds[3:] == ["start", "context-load"]


def test_extshadow_initiation_trace():
    ws, proc, src, dst, chan = ready_channel("extshadow",
                                             trace_enabled=True)
    chan.initiate(src.vaddr, dst.vaddr, 64)
    kinds = trace_kinds(ws)
    assert kinds[0] == "shadow-store"
    assert "start" in kinds
    # Exactly one shadow store and one shadow load (Fig. 4).
    assert kinds.count("shadow-store") == 1
    assert kinds.count("shadow-load") == 1


def test_repeated5_trace_shows_five_shadow_accesses():
    ws, proc, src, dst, chan = ready_channel("repeated5",
                                             trace_enabled=True)
    chan.initiate(src.vaddr, dst.vaddr, 64, with_retry=False)
    kinds = trace_kinds(ws)
    shadow = [k for k in kinds if k.startswith("shadow")]
    assert shadow == ["shadow-store", "shadow-load", "shadow-store",
                      "shadow-load", "shadow-load"]


def test_trace_records_issuers():
    ws, proc, src, dst, chan = ready_channel("keyed",
                                             trace_enabled=True)
    chan.initiate(src.vaddr, dst.vaddr, 64)
    stores = ws.trace.events(source="nic", kind="shadow-store")
    assert all(e.detail["issuer"] == proc.pid for e in stores)


def test_trace_records_decoded_arguments():
    ws, proc, src, dst, chan = ready_channel("extshadow",
                                             trace_enabled=True)
    chan.initiate(src.vaddr, dst.vaddr, 64)
    store = ws.trace.events(source="nic", kind="shadow-store")[0]
    assert store.detail["paddr"] == ws.engine.global_address(dst.paddr)
    start = ws.trace.events(source="nic", kind="start")[0]
    assert start.detail["psrc"] == ws.engine.global_address(src.paddr)
    assert start.detail["size"] == 64


def test_rejected_start_traced():
    ws, proc, src, dst, chan = ready_channel("extshadow",
                                             trace_enabled=True)
    chan.initiate(src.vaddr, dst.vaddr, 1 << 30)  # too large
    assert ws.trace.events(source="nic", kind="start-rejected")


def test_disabled_trace_costs_nothing():
    ws, proc, src, dst, chan = ready_channel("keyed",
                                             trace_enabled=False)
    chan.initiate(src.vaddr, dst.vaddr, 64)
    assert len(ws.trace) == 0
