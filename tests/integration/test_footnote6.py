"""Footnote 6: write-buffer collapsing vs. memory barriers.

"Some hardware devices (e.g. write buffers) may attempt to collapse
successive read/write operations to the same address.  In these cases
appropriate memory barrier commands should be used."

On a machine with a *relaxed* write buffer (loads bypass posted stores;
same-address loads are serviced from the buffer), the repeated-passing
sequence silently falls apart without MBs — and works with them.  On the
default strongly ordered machine, both variants work.
"""


from tests.conftest import ready_channel


def run_repeated5(relaxed, with_mb, collapsing=True):
    ws, proc, src, dst, chan = ready_channel(
        "repeated5", relaxed_write_buffer=relaxed,
        write_buffer_collapsing=collapsing)
    ws.ram.write(src.paddr, b"footnote six")
    result = chan.initiate(src.vaddr, dst.vaddr, 64, with_retry=False,
                           with_mb=with_mb)
    return ws, result


def test_relaxed_buffer_without_mb_never_starts_a_dma():
    """The engine never assembles the pattern: stores collapse and the
    final load is serviced by the write buffer."""
    ws, result = run_repeated5(relaxed=True, with_mb=False)
    assert ws.engine.started_transfers() == []
    assert ws.engine.protocol.sequences_completed == 0


def test_relaxed_buffer_without_mb_is_a_silent_phantom_success():
    """Worse than failing: the forwarded final load returns the *size
    word* the store posted, which software cannot distinguish from a
    successful "64 bytes remaining" status — the initiation looks OK
    while no data will ever move.  This is why footnote 6 mandates the
    barriers rather than relying on the retry loop to catch it."""
    ws, result = run_repeated5(relaxed=True, with_mb=False)
    assert result.ok            # looks fine to the program...
    assert result.status == 64  # ...the store's own data word
    assert ws.engine.started_transfers() == []  # ...but nothing ran


def test_relaxed_buffer_with_mb_works():
    ws, result = run_repeated5(relaxed=True, with_mb=True)
    assert result.ok
    assert len(ws.engine.started_transfers()) == 1


def test_strong_buffer_works_either_way():
    for with_mb in (False, True):
        ws, result = run_repeated5(relaxed=False, with_mb=with_mb)
        assert result.ok, f"with_mb={with_mb}"


def test_relaxed_failure_is_the_forwarding_effect():
    """Without MBs the repeated loads are serviced by the write buffer
    and never reach the engine — exactly the parenthetical in the
    footnote ("collapsed in (or serviced by) the write buffer")."""
    ws, result = run_repeated5(relaxed=True, with_mb=False)
    assert ws.write_buffer.loads_forwarded > 0


def test_retry_loop_with_mb_still_terminates_relaxed():
    ws, proc, src, dst, chan = ready_channel(
        "repeated5", relaxed_write_buffer=True)
    result = chan.initiate(src.vaddr, dst.vaddr, 64, with_retry=True,
                           with_mb=True)
    assert result.ok


def test_other_methods_unaffected_by_relaxed_buffer():
    """Methods without repeated same-address stores survive relaxation
    as long as ordering is restored at their single load (which drains
    when the buffer is strongly ordered; in relaxed mode the final Halt
    drains and the engine sees the store late -> the load fails).  The
    keyed method's loads hit the *context page*, a different address
    from its stores, so only ordering matters.
    """
    ws, proc, src, dst, chan = ready_channel("keyed",
                                             relaxed_write_buffer=False)
    assert chan.initiate(src.vaddr, dst.vaddr, 64).ok
