"""The compare_bench CLI gate over service soak reports."""

import json
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "benchmarks"))

from compare_bench import main as compare_main  # noqa: E402


def write(path, report):
    path.write_text(json.dumps(report))
    return str(path)


def service_report(goodput=100.0, p99=50.0, wrong=0, verdict="RECOVERED"):
    return {
        "benchmark": "service_soak",
        "goodput_mbytes_per_s": goodput,
        "latency_us": {"p99": p99},
        "requests": {"wrong_transfers": wrong, "completed": 100},
        "faults": {"verdict": verdict},
    }


def checker_report():
    return {"scenarios": [
        {"name": "s1", "incremental": {"orders_per_s": 1000.0}}]}


def table1_report(iommu=1.11, capio=2.32, keyed=2.30):
    return {
        "benchmark": "table1",
        "rows": {
            "iommu": {"simulated_us": iommu, "paper_us": None},
            "capio": {"simulated_us": capio, "paper_us": None},
            "keyed": {"simulated_us": keyed, "paper_us": 2.3},
        },
    }


def test_matching_table1_reports_pass(tmp_path, capsys):
    base = write(tmp_path / "base.json", table1_report())
    cand = write(tmp_path / "cand.json", table1_report())
    assert compare_main([base, cand]) == 0
    assert "table1 latency gate passed" in capsys.readouterr().out


def test_table1_latency_regression_fails(tmp_path, capsys):
    base = write(tmp_path / "base.json", table1_report())
    cand = write(tmp_path / "cand.json", table1_report(capio=3.20))
    assert compare_main([base, cand]) == 1
    assert "capio" in capsys.readouterr().out


def test_table1_regression_margin_is_tunable(tmp_path):
    base = write(tmp_path / "base.json", table1_report())
    cand = write(tmp_path / "cand.json", table1_report(iommu=1.50))
    assert compare_main([base, cand]) == 1
    assert compare_main([base, cand, "--max-regression", "0.40"]) == 0


def test_table1_paper_drift_fails(tmp_path, capsys):
    base = write(tmp_path / "base.json", table1_report())
    cand = write(tmp_path / "cand.json", table1_report(keyed=2.80))
    assert compare_main([base, cand]) == 1
    assert "paper" in capsys.readouterr().out


def test_table1_against_checker_report_refused(tmp_path, capsys):
    base = write(tmp_path / "base.json", table1_report())
    cand = write(tmp_path / "cand.json", checker_report())
    assert compare_main([base, cand]) == 1
    assert "cannot compare" in capsys.readouterr().out


def test_committed_table1_baseline_is_valid():
    baseline = json.loads(
        (ROOT / "benchmarks/results/BENCH_table1.json").read_text())
    assert baseline["benchmark"] == "table1"
    rows = baseline["rows"]
    for method in ("kernel", "extshadow", "keyed", "repeated5",
                   "iommu", "capio"):
        assert rows[method]["simulated_us"] > 0
    # The modern methods keep the paper's ~10x kernel/user gap.
    for method in ("iommu", "capio"):
        assert (rows["kernel"]["simulated_us"]
                / rows[method]["simulated_us"]) > 6


def test_matching_service_reports_pass(tmp_path, capsys):
    base = write(tmp_path / "base.json", service_report())
    cand = write(tmp_path / "cand.json", service_report())
    assert compare_main([base, cand]) == 0
    assert "service benchmark gate passed" in capsys.readouterr().out


def test_goodput_regression_fails(tmp_path, capsys):
    base = write(tmp_path / "base.json", service_report())
    cand = write(tmp_path / "cand.json", service_report(goodput=80.0))
    assert compare_main([base, cand]) == 1
    assert "goodput" in capsys.readouterr().out


def test_latency_regression_fails_and_is_tunable(tmp_path):
    base = write(tmp_path / "base.json", service_report())
    cand = write(tmp_path / "cand.json", service_report(p99=58.0))
    assert compare_main([base, cand]) == 1
    assert compare_main([base, cand,
                         "--max-latency-regression", "0.20"]) == 0


def test_wrong_transfers_fatal(tmp_path, capsys):
    base = write(tmp_path / "base.json", service_report())
    cand = write(tmp_path / "cand.json", service_report(wrong=2))
    assert compare_main([base, cand]) == 1
    assert "wrong-page" in capsys.readouterr().out


def test_mixed_families_refused(tmp_path, capsys):
    base = write(tmp_path / "base.json", checker_report())
    cand = write(tmp_path / "cand.json", service_report())
    assert compare_main([base, cand]) == 1
    assert "cannot compare" in capsys.readouterr().out


def test_checker_reports_still_gate(tmp_path, capsys):
    base = write(tmp_path / "base.json", checker_report())
    cand = write(tmp_path / "cand.json", checker_report())
    assert compare_main([base, cand]) == 0
    assert "benchmark gate passed" in capsys.readouterr().out


def test_committed_baseline_is_a_valid_service_report():
    baseline = json.loads(
        (ROOT / "benchmarks/results/BENCH_service.json").read_text())
    assert baseline["benchmark"] == "service_soak"
    assert baseline["requests"]["wrong_transfers"] == 0
    assert baseline["faults"]["verdict"] in ("CLEAN", "RECOVERED")
    assert baseline["vs_faultfree"]["goodput_ratio"] >= 0.95
    assert baseline["config"]["tenants"] == 1000
    assert baseline["config"]["seed"] == 7


@pytest.mark.parametrize("flag,value", [
    ("--max-regression", "1.5"),
    ("--max-latency-regression", "-1"),
])
def test_bad_thresholds_error(tmp_path, flag, value):
    base = write(tmp_path / "base.json", service_report())
    cand = write(tmp_path / "cand.json", service_report())
    with pytest.raises(SystemExit):
        compare_main([base, cand, flag, value])
