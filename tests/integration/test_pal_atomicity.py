"""§2.7: PAL-mode uninterruptibility is what makes the PAL method safe.

Hardware-wise the PAL method is SHRIMP-2 — a single pending latch with a
known race.  These tests put both under the *same* adversarial scheduler
and show the race hits SHRIMP-2's bare pair but cannot hit the PAL call,
because the whole pair executes inside one uninterruptible step.
"""

from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation
from repro.os.scheduler import ScriptedPolicy
from repro.hw.dma.status import is_rejection


def race_setup(method):
    ws = Workstation(MachineConfig(method=method))
    procs, threads, buffers = [], [], []
    for name in ("one", "two"):
        proc = ws.kernel.spawn(name)
        ws.kernel.enable_user_dma(proc)
        src = ws.kernel.alloc_buffer(proc, 8192)
        dst = ws.kernel.alloc_buffer(proc, 8192)
        ws.ram.write(src.paddr, name.encode() * 8)
        chan = DmaChannel(ws, proc)
        program = chan.program(src.vaddr, dst.vaddr, 64)
        thread = proc.new_thread(program)
        procs.append(proc)
        threads.append(thread)
        buffers.append((src, dst))
    return ws, procs, threads, buffers


def audit(ws, procs, buffers):
    """Return started transfers that mix one process's source with the
    other's destination."""
    mixed = []
    for record in ws.engine.started_transfers():
        for index, (src, dst) in enumerate(buffers):
            g = ws.engine.global_address
            if record.psrc == g(src.paddr) and record.pdst != g(dst.paddr):
                mixed.append(record)
    return mixed


def test_shrimp2_mixes_under_adversarial_schedule():
    ws, procs, threads, buffers = race_setup("shrimp2")
    # Program: Store, Load, Halt.  P0 stores, P1's store overwrites the
    # latch, then P0's load pairs its source with P1's destination.
    script = [0, 1, 0, 0, 1, 1]
    scheduler = ws.make_scheduler(ScriptedPolicy(script + [0] * 6),
                                  with_required_hooks=False)
    for proc, thread in zip(procs, threads):
        scheduler.add(proc, thread)
    scheduler.run()
    ws.drain()
    assert audit(ws, procs, buffers)  # arguments mixed


def test_pal_cannot_be_split_by_the_same_schedule():
    ws, procs, threads, buffers = race_setup("pal")
    # The PAL program is Mov,Mov,Mov,CallPal,Halt: the scheduler can
    # interleave *around* the CALL_PAL but never inside it.
    script = [0, 0, 0, 1, 1, 1, 1, 0, 1, 0]
    scheduler = ws.make_scheduler(ScriptedPolicy(script + [0] * 10),
                                  with_required_hooks=False)
    for proc, thread in zip(procs, threads):
        scheduler.add(proc, thread)
    scheduler.run()
    ws.drain()
    assert audit(ws, procs, buffers) == []
    # Both DMAs started correctly.
    assert len(ws.engine.started_transfers()) == 2


def test_pal_under_random_preemption_never_mixes():
    from repro.os.scheduler import RandomPreemptionPolicy
    from repro.sim.rng import make_rng

    for seed in range(5):
        ws, procs, threads, buffers = race_setup("pal")
        policy = RandomPreemptionPolicy(0.7, make_rng(seed, "pal"))
        scheduler = ws.make_scheduler(policy, with_required_hooks=False)
        for proc, thread in zip(procs, threads):
            scheduler.add(proc, thread)
        scheduler.run()
        ws.drain()
        assert audit(ws, procs, buffers) == [], f"seed {seed}"
        for thread in threads:
            assert not is_rejection(thread.reg("v0"))


def test_shrimp2_with_hook_survives_the_same_schedules():
    from repro.os.scheduler import RandomPreemptionPolicy
    from repro.sim.rng import make_rng

    for seed in range(5):
        ws, procs, threads, buffers = race_setup("shrimp2")
        policy = RandomPreemptionPolicy(0.7, make_rng(seed, "s2"))
        scheduler = ws.make_scheduler(policy, with_required_hooks=True)
        for proc, thread in zip(procs, threads):
            scheduler.add(proc, thread)
        scheduler.run()
        ws.drain()
        assert audit(ws, procs, buffers) == [], f"seed {seed}"
