"""§3.5 under multiprogramming: atomic increments stay atomic.

Several processes bump one shared counter with user-level atomic_add
while a seeded scheduler preempts them between arbitrary instructions.
Every increment must land exactly once — lost updates would show up as a
final count below the number of operations.
"""

import pytest

from repro.core.atomics import AtomicChannel
from repro.core.machine import MachineConfig, Workstation
from repro.hw.pagetable import Perm
from repro.os.scheduler import RandomPreemptionPolicy
from repro.sim.rng import make_rng


def build_shared_counter(mode, n_processes):
    ws = Workstation(MachineConfig(method="keyed", atomic_mode=mode))
    owner = ws.kernel.spawn("owner")
    counter = ws.kernel.alloc_buffer(owner, 8192, shadow=False)
    participants = []
    for index in range(n_processes):
        proc = ws.kernel.spawn(f"adder{index}")
        ws.kernel.enable_user_atomics(proc)
        vaddr = ws.kernel.share_buffer(owner, counter, proc,
                                       perm=Perm.RW)
        participants.append((proc, vaddr))
    return ws, counter, participants


@pytest.mark.parametrize("mode", ["keyed", "extshadow"])
def test_no_lost_updates_under_preemption(mode):
    increments_each = 8
    ws, counter, participants = build_shared_counter(mode, 3)
    scheduler = ws.make_scheduler(
        RandomPreemptionPolicy(0.5, make_rng(13, mode)))
    for proc, vaddr in participants:
        chan = AtomicChannel(ws, proc)
        instructions = []
        for index in range(increments_each):
            from repro.hw.atomic_unit import OP_ADD

            instructions.extend(chan.sequence(OP_ADD, vaddr, 1))
        from repro.hw.isa import Halt, assemble

        instructions.append(Halt())
        thread = proc.new_thread(assemble(instructions))
        scheduler.add(proc, thread)
    scheduler.run(max_instructions=500_000)
    ws.drain()
    expected = len(participants) * increments_each
    assert ws.ram.read_word(counter.paddr) == expected
    assert len(ws.atomic_unit.operations) == expected


def test_cas_lock_handoff_under_preemption():
    """A CAS spinlock guarded increment: the lock serializes correctly
    even with heavy preemption (every acquire eventually succeeds)."""
    from repro.hw.atomic_unit import OP_ADD, OP_CAS, OP_FETCH_STORE
    from repro.hw.isa import Beq, Halt, Label, assemble
    from repro.hw.dma.status import STATUS_FAILURE

    ws, counter, participants = build_shared_counter("extshadow", 2)
    lock_off = 64  # a lock word inside the shared page
    scheduler = ws.make_scheduler(
        RandomPreemptionPolicy(0.4, make_rng(3, "cas")))
    rounds = 4
    for pid_index, (proc, vaddr) in enumerate(participants):
        chan = AtomicChannel(ws, proc)
        instructions = []
        for round_index in range(rounds):
            tag = f"{pid_index}_{round_index}"
            # acquire: CAS(lock, 0 -> pid) until the old value was 0
            instructions.append(Label(f"acq{tag}"))
            instructions.extend(
                chan.sequence(OP_CAS, vaddr + lock_off, 0,
                              proc.pid))
            instructions.append(Beq("v0", STATUS_FAILURE, f"acq{tag}"))
            # v0 holds the old value; retry unless it was 0 (free).
            from repro.hw.isa import Bne

            instructions.append(Bne("v0", 0, f"acq{tag}"))
            # critical section: unlocked atomic_add of 1
            instructions.extend(chan.sequence(OP_ADD, vaddr, 1))
            # release: store 0 with fetch_and_store
            instructions.extend(
                chan.sequence(OP_FETCH_STORE, vaddr + lock_off, 0))
        instructions.append(Halt())
        thread = proc.new_thread(assemble(instructions))
        scheduler.add(proc, thread)
    scheduler.run(max_instructions=2_000_000)
    ws.drain()
    assert ws.ram.read_word(counter.paddr) == 2 * rounds
    assert ws.ram.read_word(counter.paddr + lock_off) == 0  # released
