"""Table 1's shape, asserted as tests.

We reproduce the paper's measurement (1,000 initiations, different
addresses, warm steady state) in miniature and assert the *shape* of
Table 1: the ordering of the four rows, the ~10x kernel/user gap, and
closeness to the paper's absolute numbers (the timing model is calibrated
— see DESIGN.md §6 — so absolute agreement is expected within ~10%).
"""

import pytest

from repro.analysis.trends import measure_initiation_us

PAPER_US = {
    "kernel": 18.6,
    "extshadow": 1.1,
    "repeated5": 2.6,
    "keyed": 2.3,
}


@pytest.fixture(scope="module")
def measured():
    return {method: measure_initiation_us(method, iterations=10)
            for method in PAPER_US}


def test_ordering_matches_table1(measured):
    assert measured["extshadow"] < measured["keyed"]
    assert measured["keyed"] < measured["repeated5"]
    assert measured["repeated5"] < measured["kernel"]


def test_user_level_is_an_order_of_magnitude_faster(measured):
    for method in ("extshadow", "keyed", "repeated5"):
        assert measured["kernel"] / measured[method] > 6.0


@pytest.mark.parametrize("method", sorted(PAPER_US))
def test_absolute_value_within_tolerance(measured, method):
    ratio = measured[method] / PAPER_US[method]
    assert 0.85 < ratio < 1.15, (
        f"{method}: measured {measured[method]:.2f} us vs paper "
        f"{PAPER_US[method]} us")


def test_extshadow_close_to_1_1_us(measured):
    assert measured["extshadow"] == pytest.approx(1.1, abs=0.15)


def test_kernel_close_to_18_6_us(measured):
    assert measured["kernel"] == pytest.approx(18.6, rel=0.1)


def test_pci_buses_shrink_user_level_costs():
    """§3.4: 'user-level DMA can achieve quite better performance in
    modern systems, that use faster buses.'"""
    from repro.core.timing import ALPHA_PCI_33, ALPHA_PCI_66

    tc = measure_initiation_us("extshadow", iterations=5)
    pci33 = measure_initiation_us("extshadow", ALPHA_PCI_33,
                                  iterations=5)
    pci66 = measure_initiation_us("extshadow", ALPHA_PCI_66,
                                  iterations=5)
    assert pci66 < pci33 < tc
    # Kernel-level barely improves: its cost is CPU cycles, not bus.
    kernel_tc = measure_initiation_us("kernel", iterations=5)
    kernel_pci = measure_initiation_us("kernel", ALPHA_PCI_66,
                                       iterations=5)
    assert (kernel_tc - kernel_pci) / kernel_tc < 0.15
