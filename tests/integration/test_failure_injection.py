"""Failure injection: the system degrades safely, never silently.

Exhausted allocators, revoked contexts, killed processes mid-sequence,
overlapping transfers, and engine resets — each either raises a typed
error at the OS level or returns DMA_FAILURE at the hardware level;
nothing corrupts and nothing is misattributed.
"""

import pytest

from tests.conftest import build_workstation, ready_channel

from repro.errors import KernelError, MemoryError_
from repro.hw.dma.status import STATUS_FAILURE
from repro.units import kib, mib


def test_physical_memory_exhaustion_is_a_typed_error():
    ws = build_workstation("keyed", ram_size=kib(64))  # 8 frames
    proc = ws.kernel.spawn()
    ws.kernel.enable_user_dma(proc)
    with pytest.raises(MemoryError_):
        for _ in range(10):
            ws.kernel.alloc_buffer(proc, kib(16))


def test_released_context_rejects_stale_key():
    """A process's key dies with its context; replaying old stores is
    harmless for the next owner."""
    ws, proc, src, dst, chan = ready_channel("keyed")
    stale_key = proc.dma_binding.key
    stale_ctx = proc.dma_binding.ctx_id
    ws.kernel.release_user_dma(proc)

    victim = ws.kernel.spawn("victim")
    binding = ws.kernel.enable_user_dma(victim)
    assert binding.key != stale_key         # fresh key, whatever context
    assert stale_ctx not in ws.engine.key_table  # old key uninstalled

    # Replaying an access with the stale key is dropped by the engine.
    from repro.hw.device import AccessContext
    from repro.hw.dma.protocols.keyed import pack_key_word

    engine = ws.engine
    offset = engine.layout.shadow_offset + 0x100
    engine.mmio_write(offset, pack_key_word(stale_key, stale_ctx, 0),
                      AccessContext(issuer=proc.pid, kernel=False,
                                    when=ws.now))
    assert engine.contexts[stale_ctx].dst is None
    assert engine.protocol.key_rejections == 1


def test_context_reassignment_clears_half_started_state():
    """A process dies mid-sequence; the OS hands its context to someone
    else; the stale half-latched arguments must be gone."""
    ws, proc, src, dst, chan = ready_channel("keyed")
    # Latch only the destination argument, then "kill" the process.
    from repro.hw.device import AccessContext
    from repro.hw.dma.protocols.keyed import ARG_DESTINATION, pack_key_word

    binding = proc.dma_binding
    engine = ws.engine
    g = engine.global_address
    engine.mmio_write(
        engine.layout.shadow_offset + g(dst.paddr),
        pack_key_word(binding.key, binding.ctx_id, ARG_DESTINATION),
        AccessContext(issuer=proc.pid, kernel=False, when=ws.now))
    assert engine.contexts[binding.ctx_id].dst is not None
    ws.kernel.release_user_dma(proc)
    other = ws.kernel.spawn()
    new_binding = ws.kernel.enable_user_dma(other)
    assert engine.contexts[new_binding.ctx_id].dst is None


def test_overlapping_src_dst_transfer_is_well_defined():
    ws, proc, src, dst, chan = ready_channel("extshadow")
    payload = bytes(range(128))
    ws.ram.write(src.paddr, payload)
    result = chan.dma(src.vaddr, src.vaddr + 64, 64)
    assert result.ok
    # memmove semantics: the first 64 bytes land intact.
    assert ws.ram.read(src.paddr + 64, 64) == payload[:64]


def test_engine_reset_mid_sequence_fails_cleanly():
    ws, proc, src, dst, chan = ready_channel("repeated5")
    # Deliver the first two accesses, then power-cycle the engine.
    program = chan.program(src.vaddr, dst.vaddr, 64, with_retry=False)
    thread = proc.new_thread(program)
    ws.cpu.mmu.activate(thread.page_table, flush=False)
    for _ in range(3):
        ws.cpu.step(thread)
    ws.engine.reset()
    while not thread.done:
        ws.cpu.step(thread)
    assert ws.engine.started_transfers() == []
    # The retry loop recovers on the next full attempt.
    retry = chan.initiate(src.vaddr, dst.vaddr, 64, with_retry=True)
    assert retry.ok


def test_transfer_larger_than_ram_rejected_everywhere():
    ws, proc, src, dst, chan = ready_channel("extshadow")
    result = chan.initiate(src.vaddr, dst.vaddr, mib(64))
    assert not result.ok
    assert ws.engine.started_transfers() == []


def test_double_release_is_idempotent():
    ws, proc, src, dst, chan = ready_channel("keyed")
    ws.kernel.release_user_dma(proc)
    ws.kernel.release_user_dma(proc)  # no-op, no error


def test_alloc_shadow_without_binding_raises():
    ws = build_workstation("keyed")
    proc = ws.kernel.spawn()
    with pytest.raises(KernelError):
        ws.kernel.alloc_buffer(proc, 8192, shadow=True)


def test_status_failure_never_confused_with_huge_remaining():
    """A rejected initiation reads exactly -1, not a plausible count."""
    ws, proc, src, dst, chan = ready_channel("keyed")
    result = chan.initiate(src.vaddr, dst.vaddr, 1 << 40)
    assert result.status == STATUS_FAILURE
