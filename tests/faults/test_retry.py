"""Unit tests for RetryPolicy backoff arithmetic."""

import pytest

from repro.errors import ConfigError
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.units import us


class TestValidation:
    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ConfigError):
            RetryPolicy(completion_timeout=0)

    def test_multiplier_must_not_shrink(self):
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)

    def test_jitter_frac_range(self):
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_frac=1.0)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_backoff=us(2), multiplier=2.0,
                             jitter_frac=0.0)
        rng = policy.make_rng(0)
        assert policy.backoff(1, rng) == us(2)
        assert policy.backoff(2, rng) == us(4)
        assert policy.backoff(3, rng) == us(8)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_backoff=us(10), multiplier=1.0,
                             jitter_frac=0.25)
        rng = policy.make_rng(42)
        for _ in range(100):
            backoff = policy.backoff(1, rng)
            assert us(7.5) <= backoff <= us(12.5)

    def test_jitter_is_deterministic_per_seed(self):
        policy = DEFAULT_RETRY_POLICY
        a = [policy.backoff(i, policy.make_rng(5)) for i in range(1, 5)]
        b = [policy.backoff(i, policy.make_rng(5)) for i in range(1, 5)]
        assert a == b

    def test_attempt_must_be_positive(self):
        with pytest.raises(ConfigError):
            DEFAULT_RETRY_POLICY.backoff(0, DEFAULT_RETRY_POLICY.make_rng(0))
