"""Runtime fault injection on a live machine (Injector)."""

from repro.core.api import DmaChannel
from repro.faults.injector import Injector
from repro.faults.plan import DROP, DUPLICATE, BITFLIP, FaultPlan, FaultRule
from repro.units import us

from .conftest import TRANSFER_BYTES


def attach(rig, *rules, seed=0):
    plan = FaultPlan(rules=list(rules), seed=seed)
    return Injector(plan, rig.ws.sim, trace=rig.ws.trace).attach(rig.ws)


def test_dropped_store_fails_initiation(make_rig):
    rig = make_rig()
    injector = attach(rig, FaultRule(kind=DROP, target="store", nth=1,
                                     count=1))
    result = rig.chan.initiate(rig.src.vaddr, rig.dst.vaddr, TRANSFER_BYTES)
    assert not result.ok
    assert injector.stats.counter("store.drop").value == 1
    assert rig.dst_untouched()


def test_dropped_status_load_reads_bus_timeout(make_rig):
    rig = make_rig()
    injector = attach(rig, FaultRule(kind=DROP, target="load", nth=1,
                                     count=1))
    result = rig.chan.initiate(rig.src.vaddr, rig.dst.vaddr, TRANSFER_BYTES)
    # The all-ones timeout word decodes as STATUS_FAILURE (§3.1), so the
    # initiation reports failure even though the device accepted it.
    assert not result.ok
    assert injector.stats.counter("load.drop").value == 1


def test_dropped_completion_hangs_transfer(make_rig):
    rig = make_rig()
    attach(rig, FaultRule(kind=DROP, target="completion", probability=1.0))
    result = rig.chan.dma(rig.src.vaddr, rig.dst.vaddr, TRANSFER_BYTES,
                          wait=False)
    assert result.initiation.ok and result.transfer is not None
    completed = rig.ws.sim.wait_for(lambda: result.transfer.completed,
                                    timeout=us(5_000))
    assert not completed
    assert rig.dst_untouched()


def test_duplicate_completion_is_idempotent(make_rig):
    rig = make_rig()
    attach(rig, FaultRule(kind=DUPLICATE, target="completion", nth=1,
                          count=1))
    result = rig.chan.dma(rig.src.vaddr, rig.dst.vaddr, TRANSFER_BYTES)
    rig.ws.sim.advance(us(1_000))  # let the spurious second event fire
    assert result.ok
    assert rig.landed()
    # The re-run mover is visible as double-counted engine bytes.
    assert (rig.ws.engine.transfer_engine.bytes_moved
            == 2 * TRANSFER_BYTES)


def test_kernel_path_is_immune_by_default(make_rig):
    rig = make_rig()
    attach(rig,
           FaultRule(kind=DROP, target="store", probability=1.0),
           FaultRule(kind=DROP, target="completion", probability=1.0))
    kchan = DmaChannel(rig.ws, rig.proc, via="kernel")
    result = kchan.dma(rig.src.vaddr, rig.dst.vaddr, TRANSFER_BYTES)
    assert result.ok
    assert rig.landed()


def test_bitflip_store_is_counted_and_traced(make_rig):
    rig = make_rig()
    injector = attach(rig, FaultRule(kind=BITFLIP, target="store", nth=1,
                                     count=1, bit=0))
    rig.chan.initiate(rig.src.vaddr, rig.dst.vaddr, TRANSFER_BYTES)
    assert injector.stats.counter("store.bitflip").value == 1
    flips = rig.ws.trace.events(source="faults", kind="store-bitflip")
    assert len(flips) == 1


def test_detach_restores_the_machine(make_rig):
    rig = make_rig()
    injector = attach(rig,
                      FaultRule(kind=DROP, target="store", probability=1.0),
                      FaultRule(kind=DROP, target="completion",
                                probability=1.0))
    injector.detach()
    result = rig.chan.dma(rig.src.vaddr, rig.dst.vaddr, TRANSFER_BYTES)
    assert result.ok
    assert rig.landed()
    assert injector.plan.total_fired == 0


def test_injection_is_replayable(make_rig):
    def fired_pattern():
        rig = make_rig()
        plan = FaultPlan(rules=[
            FaultRule(kind=DROP, target="store", probability=0.3)], seed=11)
        Injector(plan, rig.ws.sim, trace=rig.ws.trace).attach(rig.ws)
        for _ in range(5):
            rig.chan.initiate(rig.src.vaddr, rig.dst.vaddr, TRANSFER_BYTES)
        return plan.total_fired

    assert fired_pattern() == fired_pattern()


def test_fault_records_carry_the_active_trace_context(make_rig):
    """Under an activated trace context, every injected fault's trace
    event and span inherit the victim request's trace_id."""
    from repro.obs.context import TraceContext

    rig = make_rig()
    rig.ws.spans.enabled = True
    attach(rig, FaultRule(kind=DROP, target="store", nth=1, count=1))
    ctx = TraceContext(trace_id="7-00000042", tenant="a", request_id=42)
    with rig.ws.spans.activate(ctx, process="shard0"):
        rig.chan.initiate(rig.src.vaddr, rig.dst.vaddr, TRANSFER_BYTES)
    events = rig.ws.trace.events(source="faults", kind="store-drop")
    assert len(events) == 1
    assert events[0].detail["trace_id"] == "7-00000042"
    fault_spans = [s for s in rig.ws.spans.finished()
                   if s.name == "fault.store.drop"]
    assert len(fault_spans) == 1
    assert fault_spans[0].attrs["trace_id"] == "7-00000042"
    assert fault_spans[0].attrs["process"] == "shard0"
