"""The hardened DMA paths: retry, backoff, timeout, kernel fallback."""

from repro.faults.injector import Injector
from repro.faults.plan import DROP, FaultPlan, FaultRule
from repro.faults.retry import RetryPolicy
from repro.units import us

from .conftest import TRANSFER_BYTES

POLICY = RetryPolicy(max_attempts=3, base_backoff=us(2),
                     completion_timeout=us(500))


def attach(rig, *rules, seed=0):
    plan = FaultPlan(rules=list(rules), seed=seed)
    return Injector(plan, rig.ws.sim, trace=rig.ws.trace).attach(rig.ws)


def test_fault_free_path_is_single_attempt(make_rig):
    rig = make_rig()
    result = rig.chan.dma_reliable(rig.src.vaddr, rig.dst.vaddr,
                                   TRANSFER_BYTES, policy=POLICY)
    assert result.ok and not result.recovered
    assert result.attempts == 1 and not result.fell_back
    assert rig.landed()
    assert rig.ws.stats.counter("dma.retries").value == 0


def test_retry_recovers_from_transient_store_drop(make_rig):
    rig = make_rig()
    attach(rig, FaultRule(kind=DROP, target="store", nth=1, count=1))
    result = rig.chan.initiate_reliable(rig.src.vaddr, rig.dst.vaddr,
                                        TRANSFER_BYTES, policy=POLICY)
    assert result.ok and result.recovered and not result.fell_back
    assert result.attempts == 2
    stats = rig.ws.stats
    assert stats.counter("dma.retries").value == 1
    assert stats.counter("dma.recoveries").value == 1
    assert stats.counter("dma.kernel_fallbacks").value == 0
    assert rig.ws.trace.events(source="api", kind="dma-retry")


def test_dma_reliable_recovers_lost_completion(make_rig):
    rig = make_rig()
    attach(rig, FaultRule(kind=DROP, target="completion", nth=1, count=1))
    result = rig.chan.dma_reliable(rig.src.vaddr, rig.dst.vaddr,
                                   TRANSFER_BYTES, policy=POLICY)
    assert result.ok and result.recovered
    assert rig.landed()
    assert result.attempts == 2
    assert rig.ws.stats.counter("dma.completion_timeouts").value == 1


def test_kernel_fallback_after_retry_exhaustion(make_rig):
    rig = make_rig()
    attach(rig, FaultRule(kind=DROP, target="store", probability=1.0))
    result = rig.chan.dma_reliable(rig.src.vaddr, rig.dst.vaddr,
                                   TRANSFER_BYTES, policy=POLICY)
    assert result.ok and result.fell_back
    assert result.attempts == POLICY.max_attempts + 1
    assert rig.landed()
    stats = rig.ws.stats
    assert stats.counter("dma.retry_exhausted").value == 1
    assert stats.counter("dma.kernel_fallbacks").value == 1
    assert rig.ws.trace.events(source="api", kind="dma-fallback")


def test_failure_reported_when_fallback_disabled(make_rig):
    rig = make_rig()
    attach(rig, FaultRule(kind=DROP, target="store", probability=1.0))
    policy = RetryPolicy(max_attempts=2, base_backoff=us(2),
                         completion_timeout=us(500), kernel_fallback=False)
    result = rig.chan.dma_reliable(rig.src.vaddr, rig.dst.vaddr,
                                   TRANSFER_BYTES, policy=policy)
    assert not result.ok and not result.fell_back
    assert result.attempts == 2
    assert rig.dst_untouched()
    assert rig.ws.stats.counter("dma.kernel_fallbacks").value == 0


def test_backoff_advances_simulated_time(make_rig):
    rig = make_rig()
    attach(rig, FaultRule(kind=DROP, target="store", probability=1.0))
    policy = RetryPolicy(max_attempts=3, base_backoff=us(100),
                         jitter_frac=0.0, completion_timeout=us(500),
                         kernel_fallback=False)
    t0 = rig.ws.sim.now
    rig.chan.initiate_reliable(rig.src.vaddr, rig.dst.vaddr,
                               TRANSFER_BYTES, policy=policy)
    # Two backoff sleeps happen between the three attempts: 100 + 200 µs.
    assert rig.ws.sim.now - t0 >= us(300)
