"""Shared rig for fault-injection tests: a hardened workstation."""

from dataclasses import dataclass

import pytest

from repro.core.api import DmaChannel
from repro.core.machine import MachineConfig, Workstation

TRANSFER_BYTES = 4096


@dataclass
class Rig:
    """A page-bounded workstation with one DMA-enabled process."""

    ws: object
    proc: object
    src: object
    dst: object
    chan: DmaChannel
    expected: bytes

    def landed(self) -> bool:
        """Did the payload arrive intact at the destination?"""
        return (self.ws.ram.read(self.dst.paddr, TRANSFER_BYTES)
                == self.expected)

    def dst_untouched(self) -> bool:
        return (self.ws.ram.read(self.dst.paddr, TRANSFER_BYTES)
                == b"\0" * TRANSFER_BYTES)


@pytest.fixture
def make_rig():
    def make(method: str = "keyed", seed: int = 7) -> Rig:
        ws = Workstation(MachineConfig(method=method, page_bounded=True,
                                       seed=seed, trace_enabled=True))
        proc = ws.kernel.spawn("t")
        ws.kernel.enable_user_dma(proc)
        src = ws.kernel.alloc_buffer(proc, 8192)
        dst = ws.kernel.alloc_buffer(proc, 8192)
        payload = bytes(range(256)) * (TRANSFER_BYTES // 256)
        ws.ram.write(src.paddr, payload)
        ws.ram.write(dst.paddr, b"\0" * TRANSFER_BYTES)
        return Rig(ws=ws, proc=proc, src=src, dst=dst,
                   chan=DmaChannel(ws, proc), expected=payload)
    return make
