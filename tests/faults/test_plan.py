"""Unit tests for fault schedules (FaultRule / FaultPlan)."""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import (
    BITFLIP,
    DELAY,
    DROP,
    DUPLICATE,
    FaultPlan,
    FaultRule,
    bernoulli_plan,
)


class TestFaultRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultRule(kind="melt", target="store")

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigError):
            FaultRule(kind=DROP, target="cache")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            FaultRule(kind=DROP, target="store", probability=1.5)

    def test_nth_must_be_positive(self):
        with pytest.raises(ConfigError):
            FaultRule(kind=DROP, target="store", nth=0)

    def test_bit_must_fit_a_word(self):
        with pytest.raises(ConfigError):
            FaultRule(kind=BITFLIP, target="store", bit=64)


class TestDeterminism:
    def test_same_seed_same_decision_stream(self):
        def decisions(seed):
            plan = FaultPlan(rules=[
                FaultRule(kind=DROP, target="store", probability=0.3),
                FaultRule(kind=BITFLIP, target="store", probability=0.3),
            ], seed=seed)
            return [plan.decide("store") is not None for _ in range(200)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_reset_replays_exactly(self):
        plan = FaultPlan(rules=[
            FaultRule(kind=DROP, target="store", probability=0.5)], seed=3)
        first = [plan.decide("store") is not None for _ in range(50)]
        plan.reset()
        second = [plan.decide("store") is not None for _ in range(50)]
        assert first == second

    def test_fixed_bit_honoured_and_random_bit_in_range(self):
        fixed = FaultRule(kind=BITFLIP, target="store", nth=1, bit=13)
        free = FaultRule(kind=BITFLIP, target="store", nth=2)
        plan = FaultPlan(rules=[fixed, free], seed=1)
        assert plan.pick_bit(fixed) == 13
        assert 0 <= plan.pick_bit(free) < 64


class TestTriggers:
    def test_nth_fires_exactly_once_on_the_nth_match(self):
        plan = FaultPlan(rules=[
            FaultRule(kind=DROP, target="store", nth=3, count=1)])
        hits = [plan.decide("store") for _ in range(6)]
        assert [h is not None for h in hits] == [
            False, False, True, False, False, False]
        assert plan.total_fired == 1

    def test_count_caps_probabilistic_rule(self):
        rule = FaultRule(kind=DROP, target="store", probability=1.0, count=2)
        plan = FaultPlan(rules=[rule])
        fired = sum(plan.decide("store") is not None for _ in range(10))
        assert fired == 2
        assert plan.fired(rule) == 2

    def test_first_matching_rule_wins(self):
        first = FaultRule(kind=DROP, target="store", probability=1.0)
        second = FaultRule(kind=DELAY, target="store", probability=1.0)
        plan = FaultPlan(rules=[first, second])
        chosen = plan.decide("store")
        assert chosen is first
        # At most one fault per operation: the shadowed rule never fires.
        assert plan.fired(second) == 0

    def test_target_mismatch_never_fires(self):
        plan = FaultPlan(rules=[
            FaultRule(kind=DROP, target="completion", probability=1.0)])
        assert plan.decide("store") is None
        assert plan.decide("completion") is not None

    def test_kernel_immune_by_default(self):
        plan = FaultPlan(rules=[
            FaultRule(kind=DROP, target="store", probability=1.0)])
        assert plan.decide("store", kernel=True) is None
        assert plan.decide("store", kernel=False) is not None

    def test_kernel_immunity_can_be_disabled(self):
        plan = FaultPlan(rules=[
            FaultRule(kind=DROP, target="store", probability=1.0,
                      kernel_immune=False)])
        assert plan.decide("store", kernel=True) is not None

    def test_issuer_filter(self):
        plan = FaultPlan(rules=[
            FaultRule(kind=DROP, target="store", probability=1.0, issuer=7)])
        assert plan.decide("store", issuer=8) is None
        assert plan.decide("store", issuer=7) is not None


class TestBernoulliPlan:
    def test_zero_rate_is_empty(self):
        assert bernoulli_plan(0.0).rules == []

    def test_rate_split_across_rules(self):
        plan = bernoulli_plan(0.2)
        assert len(plan.rules) == 4  # store: drop+bitflip; completion: drop+delay
        assert all(abs(r.probability - 0.05) < 1e-12 for r in plan.rules)
        targets = {r.target for r in plan.rules}
        assert targets == {"store", "completion"}

    def test_kind_selection(self):
        plan = bernoulli_plan(0.1, kinds=(DUPLICATE,), completion_kinds=())
        assert [r.kind for r in plan.rules] == [DUPLICATE]

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            bernoulli_plan(1.1)
