"""Tests for the experiment CLI."""

import pytest

from repro.cli import COMMAND_HELP, COMMANDS, build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


def test_parser_knows_all_commands():
    parser = build_parser()
    args = parser.parse_args(["table1"])
    assert args.command == "table1"
    assert args.iterations == 50


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_table1_command(capsys):
    out = run_cli(capsys, "table1", "--iterations", "10")
    assert "Kernel-level DMA" in out
    assert "18.6" in out  # the paper column


def test_races_command(capsys):
    out = run_cli(capsys, "races")
    assert "shrimp2" in out and "NO" in out
    assert "extshadow" in out and "yes" in out


def test_attacks_command(capsys):
    out = run_cli(capsys, "attacks")
    assert "fig5-repeated3" in out
    assert "fig6-repeated4" in out
    assert "authorized-start" in out


def test_fig8_command(capsys):
    out = run_cli(capsys, "fig8")
    assert out.count("SAFE") == 4


def test_prove_command(capsys):
    out = run_cli(capsys, "prove")
    assert out.count("VERIFIED") == 3
    assert "lemma1: HOLDS" in out


def test_atomics_command(capsys):
    out = run_cli(capsys, "atomics")
    assert "keyed" in out and "extshadow" in out and "kernel" in out


def test_bus_command(capsys):
    out = run_cli(capsys, "bus", "--iterations", "5")
    assert "PCI 66" in out


def test_stress_command(capsys):
    out = run_cli(capsys, "stress", "--seed", "3")
    assert "shrimp2" in out
    assert "repeated5" in out


def test_generations_command(capsys):
    out = run_cli(capsys, "generations")
    assert "1990" in out and "1999" in out
    assert "dominates" in out


def test_crossover_command(capsys):
    out = run_cli(capsys, "crossover", "--iterations", "5")
    assert "Crossover sizes" in out
    assert "gigabit" in out


def test_hunt_command_rediscovers_and_gates(capsys):
    out = run_cli(capsys, "hunt", "--seed", "7",
                  "--max-candidates", "60",
                  "--methods", "repeated3,repeated4,shrimp1")
    assert "FOUND" in out
    assert "broken variants rediscovered (repeated3, repeated4): yes" in out
    assert "hardened methods survived (shrimp1): yes" in out


def test_hunt_command_k_fault_campaign(capsys):
    out = run_cli(capsys, "hunt", "--seed", "7",
                  "--max-candidates", "30",
                  "--methods", "shrimp1,extshadow",
                  "--k-faults", "2", "--max-combos", "40")
    assert "k-fault campaign (k=2)" in out
    assert "SAFE" in out
    assert "all campaigned methods SAFE under k=2 faults: yes" in out


def test_hunt_command_writes_json_report(capsys, tmp_path):
    import json

    path = tmp_path / "hunt.json"
    out = run_cli(capsys, "hunt", "--seed", "7",
                  "--max-candidates", "40",
                  "--methods", "repeated3", "--output", str(path))
    assert f"wrote {path}" in out
    payload = json.loads(path.read_text())
    assert payload["seed"] == 7
    assert payload["hunts"][0]["method"] == "repeated3"
    assert payload["hunts"][0]["found"] is True
    assert payload["hunts"][0]["shrunk"]["length"] <= 4
    assert payload["spans"]  # obs spans were threaded through
    assert "check" in payload["phases"]


ALL_SUBCOMMANDS = sorted(COMMANDS) + ["all"]


@pytest.mark.parametrize("name", ALL_SUBCOMMANDS)
def test_help_smoke_every_subcommand(capsys, name):
    """`repro <cmd> --help` exits 0 and shows the shared option group."""
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args([name, "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--seed" in out
    assert "--json" in out


def test_top_level_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for name in ALL_SUBCOMMANDS:
        assert name in out


def test_every_subcommand_has_help_text():
    assert set(COMMAND_HELP) == set(COMMANDS) | {"all"}


@pytest.mark.parametrize("name", ALL_SUBCOMMANDS)
def test_shared_seed_and_json_options_parse(name):
    """--seed/--json (and the --output alias) parse on every subcommand."""
    args = build_parser().parse_args(
        [name, "--seed", "11", "--json", "out.json"])
    assert args.seed == 11
    assert args.output == "out.json"
    args = build_parser().parse_args([name, "--output", "alias.json"])
    assert args.output == "alias.json"


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_soak_command_defaults():
    args = build_parser().parse_args(["soak"])
    assert args.tenants == 200
    assert args.duration == 20
    assert args.skew == "zipf"
    assert args.fault_rate == 0.0
    assert args.shards == 4


def test_soak_command_runs_and_writes_report(capsys, tmp_path):
    import json

    out = tmp_path / "soak.json"
    trend = tmp_path / "trend.json"
    stdout = run_cli(capsys, "soak", "--tenants", "12", "--duration", "3",
                     "--shards", "2", "--seed", "3",
                     "--fault-rate", "0.1",
                     "--json", str(out), "--trend", str(trend))
    assert "verdict" in stdout
    report = json.loads(out.read_text())
    assert report["benchmark"] == "service_soak"
    assert report["requests"]["wrong_transfers"] == 0
    assert "_service" not in report
    trend_report = json.loads(trend.read_text())
    assert trend_report["kind"] == "service_trend"


def test_serve_command_serves_one_connection(capsys):
    """End-to-end: `repro serve` answers a request over TCP."""
    import asyncio
    import json
    import threading

    from repro.service.frontend import serve_forever, ServiceConfig

    async def scenario():
        ready = asyncio.Event()
        task = asyncio.get_running_loop().create_task(serve_forever(
            ServiceConfig(shards=1, seed=3), ready=ready,
            max_connections=1, tick_wall=True))
        await ready.wait()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", ready.port)
        writer.write(json.dumps({"tenant": "cli", "size": 256}).encode()
                     + b"\n")
        await writer.drain()
        response = json.loads(await reader.readline())
        writer.close()
        await task
        return response

    response = asyncio.run(scenario())
    assert response["ok"] is True
    assert response["bytes_moved"] == 256
    assert threading.active_count() >= 1  # smoke: no leaked loops


def test_hunt_command_missing_attack_fails_gate(capsys, monkeypatch):
    """If rediscovery fails, the command exits non-zero (the CI gate)."""
    def never_finds(methods=None, config=None, tracer=None, profiler=None):
        from repro.verify.synth.search import HuntReport

        return [HuntReport(method=m, seed=0)
                for m in (methods or ("repeated3",))]

    monkeypatch.setattr("repro.verify.synth.run_hunt", never_finds)
    with pytest.raises(SystemExit):
        main(["hunt", "--max-candidates", "5",
              "--methods", "repeated3"])
