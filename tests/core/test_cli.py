"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


def test_parser_knows_all_commands():
    parser = build_parser()
    args = parser.parse_args(["table1"])
    assert args.command == "table1"
    assert args.iterations == 50


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_table1_command(capsys):
    out = run_cli(capsys, "table1", "--iterations", "10")
    assert "Kernel-level DMA" in out
    assert "18.6" in out  # the paper column


def test_races_command(capsys):
    out = run_cli(capsys, "races")
    assert "shrimp2" in out and "NO" in out
    assert "extshadow" in out and "yes" in out


def test_attacks_command(capsys):
    out = run_cli(capsys, "attacks")
    assert "fig5-repeated3" in out
    assert "fig6-repeated4" in out
    assert "authorized-start" in out


def test_fig8_command(capsys):
    out = run_cli(capsys, "fig8")
    assert out.count("SAFE") == 4


def test_prove_command(capsys):
    out = run_cli(capsys, "prove")
    assert out.count("VERIFIED") == 3
    assert "lemma1: HOLDS" in out


def test_atomics_command(capsys):
    out = run_cli(capsys, "atomics")
    assert "keyed" in out and "extshadow" in out and "kernel" in out


def test_bus_command(capsys):
    out = run_cli(capsys, "bus", "--iterations", "5")
    assert "PCI 66" in out


def test_stress_command(capsys):
    out = run_cli(capsys, "stress", "--seed", "3")
    assert "shrimp2" in out
    assert "repeated5" in out


def test_generations_command(capsys):
    out = run_cli(capsys, "generations")
    assert "1990" in out and "1999" in out
    assert "dominates" in out


def test_crossover_command(capsys):
    out = run_cli(capsys, "crossover", "--iterations", "5")
    assert "Crossover sizes" in out
    assert "gigabit" in out


def test_hunt_command_rediscovers_and_gates(capsys):
    out = run_cli(capsys, "hunt", "--seed", "7",
                  "--max-candidates", "60",
                  "--methods", "repeated3,repeated4,shrimp1")
    assert "FOUND" in out
    assert "broken variants rediscovered (repeated3, repeated4): yes" in out
    assert "hardened methods survived (shrimp1): yes" in out


def test_hunt_command_k_fault_campaign(capsys):
    out = run_cli(capsys, "hunt", "--seed", "7",
                  "--max-candidates", "30",
                  "--methods", "shrimp1,extshadow",
                  "--k-faults", "2", "--max-combos", "40")
    assert "k-fault campaign (k=2)" in out
    assert "SAFE" in out
    assert "all campaigned methods SAFE under k=2 faults: yes" in out


def test_hunt_command_writes_json_report(capsys, tmp_path):
    import json

    path = tmp_path / "hunt.json"
    out = run_cli(capsys, "hunt", "--seed", "7",
                  "--max-candidates", "40",
                  "--methods", "repeated3", "--output", str(path))
    assert f"wrote {path}" in out
    payload = json.loads(path.read_text())
    assert payload["seed"] == 7
    assert payload["hunts"][0]["method"] == "repeated3"
    assert payload["hunts"][0]["found"] is True
    assert payload["hunts"][0]["shrunk"]["length"] <= 4
    assert payload["spans"]  # obs spans were threaded through
    assert "check" in payload["phases"]


def test_hunt_command_missing_attack_fails_gate(capsys, monkeypatch):
    """If rediscovery fails, the command exits non-zero (the CI gate)."""
    def never_finds(methods=None, config=None, tracer=None, profiler=None):
        from repro.verify.synth.search import HuntReport

        return [HuntReport(method=m, seed=0)
                for m in (methods or ("repeated3",))]

    monkeypatch.setattr("repro.verify.synth.run_hunt", never_finds)
    with pytest.raises(SystemExit):
        main(["hunt", "--max-candidates", "5",
              "--methods", "repeated3"])
