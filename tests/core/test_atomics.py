"""Integration tests for user-level atomic operations (§3.5)."""

import pytest

from repro.core.atomics import AtomicChannel
from repro.core.machine import MachineConfig, Workstation
from repro.errors import ConfigError


def atomic_setup(mode="keyed", method="keyed"):
    ws = Workstation(MachineConfig(method=method, atomic_mode=mode))
    proc = ws.kernel.spawn("app")
    ws.kernel.enable_user_atomics(proc)
    buf = ws.kernel.alloc_buffer(proc, 8192, shadow=False)
    ws.ram.write_word(buf.paddr, 100)
    return ws, proc, buf, AtomicChannel(ws, proc)


@pytest.mark.parametrize("mode", ["keyed", "extshadow"])
class TestUserLevelAtomics:
    def test_atomic_add(self, mode):
        ws, proc, buf, chan = atomic_setup(mode)
        result = chan.atomic_add(buf.vaddr, 5)
        assert result.ok
        assert result.old_value == 100
        assert ws.ram.read_word(buf.paddr) == 105

    def test_fetch_and_store(self, mode):
        ws, proc, buf, chan = atomic_setup(mode)
        result = chan.fetch_and_store(buf.vaddr, 77)
        assert result.old_value == 100
        assert ws.ram.read_word(buf.paddr) == 77

    def test_compare_and_swap_success(self, mode):
        ws, proc, buf, chan = atomic_setup(mode)
        result = chan.compare_and_swap(buf.vaddr, 100, 42)
        assert result.old_value == 100
        assert ws.ram.read_word(buf.paddr) == 42

    def test_compare_and_swap_failure_leaves_memory(self, mode):
        ws, proc, buf, chan = atomic_setup(mode)
        result = chan.compare_and_swap(buf.vaddr, 999, 42)
        assert result.old_value == 100  # old value returned either way
        assert ws.ram.read_word(buf.paddr) == 100

    def test_user_level_is_cheaper_than_kernel(self, mode):
        ws, proc, buf, chan = atomic_setup(mode)
        chan.atomic_add(buf.vaddr, 0)  # warm TLB
        user = chan.atomic_add(buf.vaddr, 1)
        kernel = chan.atomic_add(buf.vaddr, 1, via_kernel=True)
        assert user.ok and kernel.ok
        assert user.elapsed_us * 3 < kernel.elapsed_us

    def test_sequence_lengths(self, mode):
        """§3.5: simpler than DMA — one physical address only."""
        from repro.hw.atomic_unit import OP_ADD, OP_CAS

        ws, proc, buf, chan = atomic_setup(mode)
        add_len = len(chan.sequence(OP_ADD, buf.vaddr, 1))
        cas_len = len(chan.sequence(OP_CAS, buf.vaddr, 1, 2))
        if mode == "extshadow":
            assert add_len == 2
            assert cas_len == 3
        else:
            assert add_len == 3
            assert cas_len == 4


def test_kernel_atomics_work_without_user_binding():
    ws = Workstation(MachineConfig(method="keyed", atomic_mode="keyed"))
    proc = ws.kernel.spawn()
    buf = ws.kernel.alloc_buffer(proc, 8192, shadow=False)
    ws.ram.write_word(buf.paddr, 7)
    # Bind only so the channel can be constructed; use the kernel path.
    ws.kernel.enable_user_atomics(proc)
    chan = AtomicChannel(ws, proc)
    result = chan.atomic_add(buf.vaddr, 3, via_kernel=True)
    assert result.old_value == 7
    assert ws.ram.read_word(buf.paddr) == 10


def test_machine_without_atomic_unit_rejects_channel():
    ws = Workstation(MachineConfig(method="keyed"))
    proc = ws.kernel.spawn()
    with pytest.raises(ConfigError):
        AtomicChannel(ws, proc)


def test_counter_increments_accumulate():
    ws, proc, buf, chan = atomic_setup("extshadow")
    for _ in range(10):
        assert chan.atomic_add(buf.vaddr, 1).ok
    assert ws.ram.read_word(buf.paddr) == 110


def test_unauthorized_target_faults():
    ws, proc, buf, chan = atomic_setup("extshadow")
    result = chan.atomic_add(0xBAD0000, 1)
    assert not result.ok


def test_atomic_records_kept():
    ws, proc, buf, chan = atomic_setup("keyed")
    chan.atomic_add(buf.vaddr, 1)
    chan.compare_and_swap(buf.vaddr, 101, 7)
    assert len(ws.atomic_unit.operations) == 2
    assert ws.atomic_unit.operations[0].via == "keyed"


def test_two_processes_interleaved_atomics_keyed():
    """Each process's latches live in its own atomic context."""
    ws = Workstation(MachineConfig(method="keyed", atomic_mode="keyed"))
    first = ws.kernel.spawn("a")
    second = ws.kernel.spawn("b")
    ws.kernel.enable_user_atomics(first)
    ws.kernel.enable_user_atomics(second)
    buf_a = ws.kernel.alloc_buffer(first, 8192, shadow=False)
    buf_b = ws.kernel.alloc_buffer(second, 8192, shadow=False)
    ws.ram.write_word(buf_a.paddr, 1)
    ws.ram.write_word(buf_b.paddr, 2)
    chan_a = AtomicChannel(ws, first)
    chan_b = AtomicChannel(ws, second)
    assert chan_a.atomic_add(buf_a.vaddr, 10).old_value == 1
    assert chan_b.atomic_add(buf_b.vaddr, 10).old_value == 2
    assert ws.ram.read_word(buf_a.paddr) == 11
    assert ws.ram.read_word(buf_b.paddr) == 12
