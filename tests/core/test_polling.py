"""§3.1's status readout: polling a transfer to completion."""

import pytest

from tests.conftest import ready_channel

from repro.errors import ConfigError
from repro.units import to_us


@pytest.mark.parametrize("method", ["keyed", "extshadow"])
def test_poll_to_completion_moves_data(method):
    ws, proc, src, dst, chan = ready_channel(method)
    payload = bytes((i * 3) % 256 for i in range(4096))
    ws.ram.write(src.paddr, payload)
    result = chan.dma_and_poll(src.vaddr, dst.vaddr, 4096)
    assert result.ok
    assert result.status == 0  # "0 means completed DMA operation"
    assert ws.ram.read(dst.paddr, 4096) == payload


def test_polling_time_covers_the_transfer():
    ws, proc, src, dst, chan = ready_channel("keyed")
    small = chan.dma_and_poll(src.vaddr, dst.vaddr, 64)
    big = chan.dma_and_poll(src.vaddr + 64, dst.vaddr + 64, 8192)
    # 8 KiB at 400 Mb/s is ~164 us of wire time; the polling loop must
    # have spun through it.
    assert big.elapsed > small.elapsed
    assert to_us(big.elapsed) > 100


def test_intermediate_polls_see_decreasing_remaining():
    """Drive the machine step by step and sample the status register
    mid-transfer: the readout counts down, as §3.1 specifies."""
    ws, proc, src, dst, chan = ready_channel("keyed")
    program = chan.polling_program(src.vaddr, dst.vaddr, 8192)
    thread = proc.new_thread(program)
    ws.cpu.mmu.activate(thread.page_table, flush=False)
    readings = []
    from repro.hw.isa import Load

    guard = 0
    while not thread.done and guard < 100_000:
        instr = thread.program.instructions[min(
            thread.pc, len(thread.program) - 1)]
        ws.cpu.step(thread)
        if isinstance(instr, Load):
            readings.append(thread.reg("v0"))
        guard += 1
    assert thread.halted
    # The sampled statuses never increase, start at the full size
    # (right after initiation), and end at zero.
    meaningful = [r for r in readings if r <= 8192]
    assert meaningful[0] == 8192
    assert meaningful[-1] == 0
    assert all(b <= a for a, b in zip(meaningful, meaningful[1:]))


def test_failed_initiation_polls_to_failure():
    from repro.hw.dma.status import STATUS_FAILURE

    ws, proc, src, dst, chan = ready_channel("keyed")
    result = chan.dma_and_poll(src.vaddr, dst.vaddr, 1 << 30)
    assert not result.ok
    assert result.status == STATUS_FAILURE


def test_methods_without_context_cannot_poll():
    ws, proc, src, dst, chan = ready_channel("repeated5")
    with pytest.raises(ConfigError):
        chan.polling_program(src.vaddr, dst.vaddr, 64)
