"""Tests for the §3.2 kernel-fallback channel selection."""

import pytest

from repro.core.api import DmaChannel, open_channel
from repro.core.machine import MachineConfig, Workstation
from repro.errors import ConfigError


def test_open_channel_prefers_user_level():
    ws = Workstation(MachineConfig(method="keyed"))
    proc = ws.kernel.spawn()
    chan = open_channel(ws, proc)
    assert chan.via == "user"
    assert chan.method.name == "keyed"
    assert proc.dma is not None  # binding was created on demand


def test_open_channel_reuses_existing_binding():
    ws = Workstation(MachineConfig(method="extshadow"))
    proc = ws.kernel.spawn()
    binding = ws.kernel.enable_user_dma(proc)
    chan = open_channel(ws, proc)
    assert chan.via == "user"
    assert proc.dma is binding


def test_open_channel_falls_back_when_contexts_exhausted():
    ws = Workstation(MachineConfig(method="keyed", n_contexts=2))
    channels = [open_channel(ws, ws.kernel.spawn()) for _ in range(4)]
    vias = [c.via for c in channels]
    assert vias == ["user", "user", "kernel", "kernel"]


def test_fallback_channel_actually_transfers():
    ws = Workstation(MachineConfig(method="keyed", n_contexts=1))
    open_channel(ws, ws.kernel.spawn())  # takes the only context
    late = ws.kernel.spawn("late")
    chan = open_channel(ws, late)
    assert chan.via == "kernel"
    src = ws.kernel.alloc_buffer(late, 8192, shadow=False)
    dst = ws.kernel.alloc_buffer(late, 8192, shadow=False)
    ws.ram.write(src.paddr, b"through the kernel")
    result = chan.dma(src.vaddr, dst.vaddr, 18)
    assert result.ok
    assert ws.ram.read(dst.paddr, 18) == b"through the kernel"


def test_fallback_pays_the_kernel_price():
    ws = Workstation(MachineConfig(method="keyed", n_contexts=1))
    first = ws.kernel.spawn()
    fast = open_channel(ws, first)
    src1 = ws.kernel.alloc_buffer(first, 8192)
    dst1 = ws.kernel.alloc_buffer(first, 8192)
    late = ws.kernel.spawn()
    slow = open_channel(ws, late)
    src2 = ws.kernel.alloc_buffer(late, 8192, shadow=False)
    dst2 = ws.kernel.alloc_buffer(late, 8192, shadow=False)
    fast.initiate(src1.vaddr, dst1.vaddr, 64)  # warm
    slow.initiate(src2.vaddr, dst2.vaddr, 64)  # warm
    user_time = fast.initiate(src1.vaddr, dst1.vaddr, 64).elapsed
    kernel_time = slow.initiate(src2.vaddr, dst2.vaddr, 64).elapsed
    assert kernel_time > 5 * user_time


def test_kernel_machine_always_gets_kernel_channel():
    ws = Workstation(MachineConfig(method="kernel"))
    chan = open_channel(ws, ws.kernel.spawn())
    assert chan.via == "kernel"


def test_explicit_kernel_channel_on_user_machine():
    ws = Workstation(MachineConfig(method="repeated5"))
    proc = ws.kernel.spawn()
    chan = DmaChannel(ws, proc, via="kernel")
    src = ws.kernel.alloc_buffer(proc, 8192, shadow=False)
    dst = ws.kernel.alloc_buffer(proc, 8192, shadow=False)
    assert chan.initiate(src.vaddr, dst.vaddr, 64).ok


def test_bad_via_rejected():
    ws = Workstation(MachineConfig(method="keyed"))
    with pytest.raises(ConfigError):
        DmaChannel(ws, ws.kernel.spawn(), via="hypercall")
