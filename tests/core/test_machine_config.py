"""Workstation construction and configuration validation."""

import pytest

from repro.core.machine import MachineConfig, Workstation
from repro.core.timing import ALPHA_PCI_66
from repro.errors import ConfigError
from repro.units import mib


def test_default_config_builds():
    ws = Workstation()
    assert ws.method.name == "keyed"
    assert ws.ram.size == mib(16)
    assert ws.atomic_unit is None


def test_unknown_method_rejected():
    with pytest.raises(ConfigError):
        Workstation(MachineConfig(method="io_uring"))


def test_bad_atomic_mode_rejected():
    with pytest.raises(ConfigError):
        Workstation(MachineConfig(atomic_mode="quantum"))


def test_context_count_propagates():
    ws = Workstation(MachineConfig(n_contexts=8))
    assert len(ws.engine.contexts) == 8
    assert ws.engine.layout.n_contexts == 8


def test_timing_preset_propagates():
    ws = Workstation(MachineConfig(timing=ALPHA_PCI_66))
    assert ws.bus.timing.frequency_hz == 66e6
    assert ws.cpu_clock.frequency_hz == 150e6


def test_ram_size_propagates():
    ws = Workstation(MachineConfig(ram_size=mib(4)))
    assert ws.ram.size == mib(4)
    assert ws.allocator.total_frames == mib(4) // 8192


def test_too_much_ram_for_node_space_rejected():
    with pytest.raises(ConfigError):
        Workstation(MachineConfig(ram_size=1 << 29))  # > 2^28


def test_pal_function_installed_only_for_pal_method():
    pal_ws = Workstation(MachineConfig(method="pal"))
    assert "user_level_dma" in pal_ws.cpu.pal_function_names
    other = Workstation(MachineConfig(method="keyed"))
    assert other.cpu.pal_function_names == []


def test_engine_window_attached_to_bus():
    ws = Workstation()
    base = ws.engine.layout.window_base
    assert ws.bus.is_device(base)
    assert ws.bus.find_window(base)[0] is ws.nic


def test_atomic_unit_window_attached_when_enabled():
    ws = Workstation(MachineConfig(atomic_mode="keyed"))
    assert ws.bus.is_device(ws.atomic_unit.layout.window_base)


def test_two_workstations_are_isolated():
    a = Workstation(MachineConfig(seed=1))
    b = Workstation(MachineConfig(seed=1))
    a.ram.write(0, b"a only")
    assert b.ram.read(0, 6) == bytes(6)
    assert a.sim is not b.sim


def test_shared_sim_for_cluster_members():
    from repro.sim.engine import Simulator

    sim = Simulator()
    a = Workstation(MachineConfig(node_id=0), sim=sim)
    b = Workstation(MachineConfig(node_id=1), sim=sim)
    assert a.sim is b.sim is sim


def test_drain_with_timeout():
    ws = Workstation()
    ws.sim.schedule(10_000_000, lambda: None)
    ws.drain(timeout=1_000)
    assert ws.sim.pending == 1  # far-future event untouched
